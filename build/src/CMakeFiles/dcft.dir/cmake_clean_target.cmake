file(REMOVE_RECURSE
  "libdcft.a"
)
