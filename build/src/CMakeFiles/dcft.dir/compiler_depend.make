# Empty compiler generated dependencies file for dcft.
# This may be replaced when dependencies are built.
