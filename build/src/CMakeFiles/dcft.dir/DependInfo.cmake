
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/alternating_bit.cpp" "src/CMakeFiles/dcft.dir/apps/alternating_bit.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/alternating_bit.cpp.o.d"
  "/root/repo/src/apps/barrier.cpp" "src/CMakeFiles/dcft.dir/apps/barrier.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/barrier.cpp.o.d"
  "/root/repo/src/apps/byzantine.cpp" "src/CMakeFiles/dcft.dir/apps/byzantine.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/byzantine.cpp.o.d"
  "/root/repo/src/apps/distributed_reset.cpp" "src/CMakeFiles/dcft.dir/apps/distributed_reset.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/distributed_reset.cpp.o.d"
  "/root/repo/src/apps/leader_election.cpp" "src/CMakeFiles/dcft.dir/apps/leader_election.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/leader_election.cpp.o.d"
  "/root/repo/src/apps/memory_access.cpp" "src/CMakeFiles/dcft.dir/apps/memory_access.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/memory_access.cpp.o.d"
  "/root/repo/src/apps/spanning_tree.cpp" "src/CMakeFiles/dcft.dir/apps/spanning_tree.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/spanning_tree.cpp.o.d"
  "/root/repo/src/apps/termination_detection.cpp" "src/CMakeFiles/dcft.dir/apps/termination_detection.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/termination_detection.cpp.o.d"
  "/root/repo/src/apps/tmr.cpp" "src/CMakeFiles/dcft.dir/apps/tmr.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/tmr.cpp.o.d"
  "/root/repo/src/apps/token_ring.cpp" "src/CMakeFiles/dcft.dir/apps/token_ring.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/apps/token_ring.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/dcft.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/common/rng.cpp.o.d"
  "/root/repo/src/components/corrector.cpp" "src/CMakeFiles/dcft.dir/components/corrector.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/components/corrector.cpp.o.d"
  "/root/repo/src/components/detector.cpp" "src/CMakeFiles/dcft.dir/components/detector.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/components/detector.cpp.o.d"
  "/root/repo/src/gc/action.cpp" "src/CMakeFiles/dcft.dir/gc/action.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/gc/action.cpp.o.d"
  "/root/repo/src/gc/channel.cpp" "src/CMakeFiles/dcft.dir/gc/channel.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/gc/channel.cpp.o.d"
  "/root/repo/src/gc/composition.cpp" "src/CMakeFiles/dcft.dir/gc/composition.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/gc/composition.cpp.o.d"
  "/root/repo/src/gc/predicate.cpp" "src/CMakeFiles/dcft.dir/gc/predicate.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/gc/predicate.cpp.o.d"
  "/root/repo/src/gc/program.cpp" "src/CMakeFiles/dcft.dir/gc/program.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/gc/program.cpp.o.d"
  "/root/repo/src/gc/state_space.cpp" "src/CMakeFiles/dcft.dir/gc/state_space.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/gc/state_space.cpp.o.d"
  "/root/repo/src/runtime/experiment.cpp" "src/CMakeFiles/dcft.dir/runtime/experiment.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/runtime/experiment.cpp.o.d"
  "/root/repo/src/runtime/fault_injector.cpp" "src/CMakeFiles/dcft.dir/runtime/fault_injector.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/runtime/fault_injector.cpp.o.d"
  "/root/repo/src/runtime/metrics.cpp" "src/CMakeFiles/dcft.dir/runtime/metrics.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/runtime/metrics.cpp.o.d"
  "/root/repo/src/runtime/monitor.cpp" "src/CMakeFiles/dcft.dir/runtime/monitor.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/runtime/monitor.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/dcft.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/runtime/simulator.cpp" "src/CMakeFiles/dcft.dir/runtime/simulator.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/runtime/simulator.cpp.o.d"
  "/root/repo/src/runtime/trace_checker.cpp" "src/CMakeFiles/dcft.dir/runtime/trace_checker.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/runtime/trace_checker.cpp.o.d"
  "/root/repo/src/spec/corrects.cpp" "src/CMakeFiles/dcft.dir/spec/corrects.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/spec/corrects.cpp.o.d"
  "/root/repo/src/spec/detects.cpp" "src/CMakeFiles/dcft.dir/spec/detects.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/spec/detects.cpp.o.d"
  "/root/repo/src/spec/liveness.cpp" "src/CMakeFiles/dcft.dir/spec/liveness.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/spec/liveness.cpp.o.d"
  "/root/repo/src/spec/problem_spec.cpp" "src/CMakeFiles/dcft.dir/spec/problem_spec.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/spec/problem_spec.cpp.o.d"
  "/root/repo/src/spec/safety_spec.cpp" "src/CMakeFiles/dcft.dir/spec/safety_spec.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/spec/safety_spec.cpp.o.d"
  "/root/repo/src/synth/add_failsafe.cpp" "src/CMakeFiles/dcft.dir/synth/add_failsafe.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/synth/add_failsafe.cpp.o.d"
  "/root/repo/src/synth/add_masking.cpp" "src/CMakeFiles/dcft.dir/synth/add_masking.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/synth/add_masking.cpp.o.d"
  "/root/repo/src/synth/add_nonmasking.cpp" "src/CMakeFiles/dcft.dir/synth/add_nonmasking.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/synth/add_nonmasking.cpp.o.d"
  "/root/repo/src/verify/closure.cpp" "src/CMakeFiles/dcft.dir/verify/closure.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/closure.cpp.o.d"
  "/root/repo/src/verify/component_checker.cpp" "src/CMakeFiles/dcft.dir/verify/component_checker.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/component_checker.cpp.o.d"
  "/root/repo/src/verify/detection_predicate.cpp" "src/CMakeFiles/dcft.dir/verify/detection_predicate.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/detection_predicate.cpp.o.d"
  "/root/repo/src/verify/encapsulation.cpp" "src/CMakeFiles/dcft.dir/verify/encapsulation.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/encapsulation.cpp.o.d"
  "/root/repo/src/verify/fairness.cpp" "src/CMakeFiles/dcft.dir/verify/fairness.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/fairness.cpp.o.d"
  "/root/repo/src/verify/fault_span.cpp" "src/CMakeFiles/dcft.dir/verify/fault_span.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/fault_span.cpp.o.d"
  "/root/repo/src/verify/invariant.cpp" "src/CMakeFiles/dcft.dir/verify/invariant.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/invariant.cpp.o.d"
  "/root/repo/src/verify/reachability.cpp" "src/CMakeFiles/dcft.dir/verify/reachability.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/reachability.cpp.o.d"
  "/root/repo/src/verify/refinement.cpp" "src/CMakeFiles/dcft.dir/verify/refinement.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/refinement.cpp.o.d"
  "/root/repo/src/verify/tolerance_checker.cpp" "src/CMakeFiles/dcft.dir/verify/tolerance_checker.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/tolerance_checker.cpp.o.d"
  "/root/repo/src/verify/transition_system.cpp" "src/CMakeFiles/dcft.dir/verify/transition_system.cpp.o" "gcc" "src/CMakeFiles/dcft.dir/verify/transition_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
