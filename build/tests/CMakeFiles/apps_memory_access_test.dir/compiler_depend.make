# Empty compiler generated dependencies file for apps_memory_access_test.
# This may be replaced when dependencies are built.
