file(REMOVE_RECURSE
  "CMakeFiles/apps_memory_access_test.dir/apps/memory_access_test.cpp.o"
  "CMakeFiles/apps_memory_access_test.dir/apps/memory_access_test.cpp.o.d"
  "apps_memory_access_test"
  "apps_memory_access_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_memory_access_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
