# Empty dependencies file for runtime_scheduler_test.
# This may be replaced when dependencies are built.
