file(REMOVE_RECURSE
  "CMakeFiles/runtime_scheduler_test.dir/runtime/scheduler_test.cpp.o"
  "CMakeFiles/runtime_scheduler_test.dir/runtime/scheduler_test.cpp.o.d"
  "runtime_scheduler_test"
  "runtime_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
