file(REMOVE_RECURSE
  "CMakeFiles/verify_fault_span_test.dir/verify/fault_span_test.cpp.o"
  "CMakeFiles/verify_fault_span_test.dir/verify/fault_span_test.cpp.o.d"
  "verify_fault_span_test"
  "verify_fault_span_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_fault_span_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
