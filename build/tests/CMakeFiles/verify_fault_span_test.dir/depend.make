# Empty dependencies file for verify_fault_span_test.
# This may be replaced when dependencies are built.
