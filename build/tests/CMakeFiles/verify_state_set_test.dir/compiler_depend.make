# Empty compiler generated dependencies file for verify_state_set_test.
# This may be replaced when dependencies are built.
