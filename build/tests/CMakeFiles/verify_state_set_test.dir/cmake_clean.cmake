file(REMOVE_RECURSE
  "CMakeFiles/verify_state_set_test.dir/verify/state_set_test.cpp.o"
  "CMakeFiles/verify_state_set_test.dir/verify/state_set_test.cpp.o.d"
  "verify_state_set_test"
  "verify_state_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_state_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
