file(REMOVE_RECURSE
  "CMakeFiles/verify_closure_test.dir/verify/closure_test.cpp.o"
  "CMakeFiles/verify_closure_test.dir/verify/closure_test.cpp.o.d"
  "verify_closure_test"
  "verify_closure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
