file(REMOVE_RECURSE
  "CMakeFiles/runtime_trace_checker_test.dir/runtime/trace_checker_test.cpp.o"
  "CMakeFiles/runtime_trace_checker_test.dir/runtime/trace_checker_test.cpp.o.d"
  "runtime_trace_checker_test"
  "runtime_trace_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_trace_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
