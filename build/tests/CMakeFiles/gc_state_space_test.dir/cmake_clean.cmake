file(REMOVE_RECURSE
  "CMakeFiles/gc_state_space_test.dir/gc/state_space_test.cpp.o"
  "CMakeFiles/gc_state_space_test.dir/gc/state_space_test.cpp.o.d"
  "gc_state_space_test"
  "gc_state_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_state_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
