file(REMOVE_RECURSE
  "CMakeFiles/runtime_simulator_test.dir/runtime/simulator_test.cpp.o"
  "CMakeFiles/runtime_simulator_test.dir/runtime/simulator_test.cpp.o.d"
  "runtime_simulator_test"
  "runtime_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
