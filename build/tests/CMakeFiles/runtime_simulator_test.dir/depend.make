# Empty dependencies file for runtime_simulator_test.
# This may be replaced when dependencies are built.
