file(REMOVE_RECURSE
  "CMakeFiles/gc_predicate_test.dir/gc/predicate_test.cpp.o"
  "CMakeFiles/gc_predicate_test.dir/gc/predicate_test.cpp.o.d"
  "gc_predicate_test"
  "gc_predicate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
