# Empty compiler generated dependencies file for gc_predicate_test.
# This may be replaced when dependencies are built.
