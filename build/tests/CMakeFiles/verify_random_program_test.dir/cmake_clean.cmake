file(REMOVE_RECURSE
  "CMakeFiles/verify_random_program_test.dir/verify/random_program_test.cpp.o"
  "CMakeFiles/verify_random_program_test.dir/verify/random_program_test.cpp.o.d"
  "verify_random_program_test"
  "verify_random_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_random_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
