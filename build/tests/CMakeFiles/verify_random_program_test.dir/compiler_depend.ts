# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for verify_random_program_test.
