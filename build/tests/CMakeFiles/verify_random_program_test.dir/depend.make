# Empty dependencies file for verify_random_program_test.
# This may be replaced when dependencies are built.
