file(REMOVE_RECURSE
  "CMakeFiles/theory_multitolerance_test.dir/theory/multitolerance_test.cpp.o"
  "CMakeFiles/theory_multitolerance_test.dir/theory/multitolerance_test.cpp.o.d"
  "theory_multitolerance_test"
  "theory_multitolerance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_multitolerance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
