# Empty compiler generated dependencies file for components_corrector_component_test.
# This may be replaced when dependencies are built.
