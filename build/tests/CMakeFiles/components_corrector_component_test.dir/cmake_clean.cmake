file(REMOVE_RECURSE
  "CMakeFiles/components_corrector_component_test.dir/components/corrector_component_test.cpp.o"
  "CMakeFiles/components_corrector_component_test.dir/components/corrector_component_test.cpp.o.d"
  "components_corrector_component_test"
  "components_corrector_component_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components_corrector_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
