# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for components_corrector_component_test.
