file(REMOVE_RECURSE
  "CMakeFiles/verify_detection_predicate_test.dir/verify/detection_predicate_test.cpp.o"
  "CMakeFiles/verify_detection_predicate_test.dir/verify/detection_predicate_test.cpp.o.d"
  "verify_detection_predicate_test"
  "verify_detection_predicate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_detection_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
