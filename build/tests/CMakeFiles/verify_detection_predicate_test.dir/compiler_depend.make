# Empty compiler generated dependencies file for verify_detection_predicate_test.
# This may be replaced when dependencies are built.
