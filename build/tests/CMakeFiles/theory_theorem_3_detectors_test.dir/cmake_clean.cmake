file(REMOVE_RECURSE
  "CMakeFiles/theory_theorem_3_detectors_test.dir/theory/theorem_3_detectors_test.cpp.o"
  "CMakeFiles/theory_theorem_3_detectors_test.dir/theory/theorem_3_detectors_test.cpp.o.d"
  "theory_theorem_3_detectors_test"
  "theory_theorem_3_detectors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_theorem_3_detectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
