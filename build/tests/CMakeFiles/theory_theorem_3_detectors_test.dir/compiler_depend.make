# Empty compiler generated dependencies file for theory_theorem_3_detectors_test.
# This may be replaced when dependencies are built.
