file(REMOVE_RECURSE
  "CMakeFiles/verify_cross_validation_test.dir/verify/cross_validation_test.cpp.o"
  "CMakeFiles/verify_cross_validation_test.dir/verify/cross_validation_test.cpp.o.d"
  "verify_cross_validation_test"
  "verify_cross_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_cross_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
