# Empty dependencies file for verify_cross_validation_test.
# This may be replaced when dependencies are built.
