file(REMOVE_RECURSE
  "CMakeFiles/theory_theorem_5_masking_test.dir/theory/theorem_5_masking_test.cpp.o"
  "CMakeFiles/theory_theorem_5_masking_test.dir/theory/theorem_5_masking_test.cpp.o.d"
  "theory_theorem_5_masking_test"
  "theory_theorem_5_masking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_theorem_5_masking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
