# Empty compiler generated dependencies file for theory_theorem_5_masking_test.
# This may be replaced when dependencies are built.
