# Empty dependencies file for verify_component_checker_test.
# This may be replaced when dependencies are built.
