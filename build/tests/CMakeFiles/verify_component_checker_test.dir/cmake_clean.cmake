file(REMOVE_RECURSE
  "CMakeFiles/verify_component_checker_test.dir/verify/component_checker_test.cpp.o"
  "CMakeFiles/verify_component_checker_test.dir/verify/component_checker_test.cpp.o.d"
  "verify_component_checker_test"
  "verify_component_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_component_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
