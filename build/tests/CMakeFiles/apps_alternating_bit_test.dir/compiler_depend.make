# Empty compiler generated dependencies file for apps_alternating_bit_test.
# This may be replaced when dependencies are built.
