file(REMOVE_RECURSE
  "CMakeFiles/apps_alternating_bit_test.dir/apps/alternating_bit_test.cpp.o"
  "CMakeFiles/apps_alternating_bit_test.dir/apps/alternating_bit_test.cpp.o.d"
  "apps_alternating_bit_test"
  "apps_alternating_bit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_alternating_bit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
