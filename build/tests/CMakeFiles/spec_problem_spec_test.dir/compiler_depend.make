# Empty compiler generated dependencies file for spec_problem_spec_test.
# This may be replaced when dependencies are built.
