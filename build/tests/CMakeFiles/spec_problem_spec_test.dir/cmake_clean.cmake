file(REMOVE_RECURSE
  "CMakeFiles/spec_problem_spec_test.dir/spec/problem_spec_test.cpp.o"
  "CMakeFiles/spec_problem_spec_test.dir/spec/problem_spec_test.cpp.o.d"
  "spec_problem_spec_test"
  "spec_problem_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_problem_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
