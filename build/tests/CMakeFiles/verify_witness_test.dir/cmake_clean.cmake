file(REMOVE_RECURSE
  "CMakeFiles/verify_witness_test.dir/verify/witness_test.cpp.o"
  "CMakeFiles/verify_witness_test.dir/verify/witness_test.cpp.o.d"
  "verify_witness_test"
  "verify_witness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_witness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
