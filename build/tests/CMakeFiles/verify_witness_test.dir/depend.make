# Empty dependencies file for verify_witness_test.
# This may be replaced when dependencies are built.
