# Empty compiler generated dependencies file for verify_tolerance_checker_test.
# This may be replaced when dependencies are built.
