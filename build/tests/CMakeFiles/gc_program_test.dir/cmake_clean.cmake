file(REMOVE_RECURSE
  "CMakeFiles/gc_program_test.dir/gc/program_test.cpp.o"
  "CMakeFiles/gc_program_test.dir/gc/program_test.cpp.o.d"
  "gc_program_test"
  "gc_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
