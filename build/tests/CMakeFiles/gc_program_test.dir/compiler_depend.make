# Empty compiler generated dependencies file for gc_program_test.
# This may be replaced when dependencies are built.
