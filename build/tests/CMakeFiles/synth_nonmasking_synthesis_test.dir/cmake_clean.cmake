file(REMOVE_RECURSE
  "CMakeFiles/synth_nonmasking_synthesis_test.dir/synth/nonmasking_synthesis_test.cpp.o"
  "CMakeFiles/synth_nonmasking_synthesis_test.dir/synth/nonmasking_synthesis_test.cpp.o.d"
  "synth_nonmasking_synthesis_test"
  "synth_nonmasking_synthesis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_nonmasking_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
