# Empty dependencies file for synth_nonmasking_synthesis_test.
# This may be replaced when dependencies are built.
