file(REMOVE_RECURSE
  "CMakeFiles/gc_channel_test.dir/gc/channel_test.cpp.o"
  "CMakeFiles/gc_channel_test.dir/gc/channel_test.cpp.o.d"
  "gc_channel_test"
  "gc_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
