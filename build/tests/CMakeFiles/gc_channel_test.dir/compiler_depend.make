# Empty compiler generated dependencies file for gc_channel_test.
# This may be replaced when dependencies are built.
