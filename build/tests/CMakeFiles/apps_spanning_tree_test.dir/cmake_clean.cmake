file(REMOVE_RECURSE
  "CMakeFiles/apps_spanning_tree_test.dir/apps/spanning_tree_test.cpp.o"
  "CMakeFiles/apps_spanning_tree_test.dir/apps/spanning_tree_test.cpp.o.d"
  "apps_spanning_tree_test"
  "apps_spanning_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_spanning_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
