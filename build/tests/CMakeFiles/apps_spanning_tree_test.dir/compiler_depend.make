# Empty compiler generated dependencies file for apps_spanning_tree_test.
# This may be replaced when dependencies are built.
