file(REMOVE_RECURSE
  "CMakeFiles/components_detector_component_test.dir/components/detector_component_test.cpp.o"
  "CMakeFiles/components_detector_component_test.dir/components/detector_component_test.cpp.o.d"
  "components_detector_component_test"
  "components_detector_component_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components_detector_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
