# Empty dependencies file for components_detector_component_test.
# This may be replaced when dependencies are built.
