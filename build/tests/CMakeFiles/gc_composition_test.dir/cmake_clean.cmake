file(REMOVE_RECURSE
  "CMakeFiles/gc_composition_test.dir/gc/composition_test.cpp.o"
  "CMakeFiles/gc_composition_test.dir/gc/composition_test.cpp.o.d"
  "gc_composition_test"
  "gc_composition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_composition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
