# Empty compiler generated dependencies file for gc_composition_test.
# This may be replaced when dependencies are built.
