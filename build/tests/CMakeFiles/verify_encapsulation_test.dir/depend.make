# Empty dependencies file for verify_encapsulation_test.
# This may be replaced when dependencies are built.
