file(REMOVE_RECURSE
  "CMakeFiles/verify_encapsulation_test.dir/verify/encapsulation_test.cpp.o"
  "CMakeFiles/verify_encapsulation_test.dir/verify/encapsulation_test.cpp.o.d"
  "verify_encapsulation_test"
  "verify_encapsulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_encapsulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
