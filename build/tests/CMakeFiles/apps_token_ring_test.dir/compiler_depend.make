# Empty compiler generated dependencies file for apps_token_ring_test.
# This may be replaced when dependencies are built.
