file(REMOVE_RECURSE
  "CMakeFiles/apps_token_ring_test.dir/apps/token_ring_test.cpp.o"
  "CMakeFiles/apps_token_ring_test.dir/apps/token_ring_test.cpp.o.d"
  "apps_token_ring_test"
  "apps_token_ring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_token_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
