file(REMOVE_RECURSE
  "CMakeFiles/runtime_fault_injector_test.dir/runtime/fault_injector_test.cpp.o"
  "CMakeFiles/runtime_fault_injector_test.dir/runtime/fault_injector_test.cpp.o.d"
  "runtime_fault_injector_test"
  "runtime_fault_injector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_fault_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
