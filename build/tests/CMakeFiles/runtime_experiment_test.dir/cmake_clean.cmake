file(REMOVE_RECURSE
  "CMakeFiles/runtime_experiment_test.dir/runtime/experiment_test.cpp.o"
  "CMakeFiles/runtime_experiment_test.dir/runtime/experiment_test.cpp.o.d"
  "runtime_experiment_test"
  "runtime_experiment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
