# Empty dependencies file for apps_byzantine_test.
# This may be replaced when dependencies are built.
