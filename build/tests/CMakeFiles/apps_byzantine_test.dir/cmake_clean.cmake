file(REMOVE_RECURSE
  "CMakeFiles/apps_byzantine_test.dir/apps/byzantine_test.cpp.o"
  "CMakeFiles/apps_byzantine_test.dir/apps/byzantine_test.cpp.o.d"
  "apps_byzantine_test"
  "apps_byzantine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_byzantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
