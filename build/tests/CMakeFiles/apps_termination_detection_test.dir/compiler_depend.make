# Empty compiler generated dependencies file for apps_termination_detection_test.
# This may be replaced when dependencies are built.
