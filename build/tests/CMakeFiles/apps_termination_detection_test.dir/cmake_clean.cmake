file(REMOVE_RECURSE
  "CMakeFiles/apps_termination_detection_test.dir/apps/termination_detection_test.cpp.o"
  "CMakeFiles/apps_termination_detection_test.dir/apps/termination_detection_test.cpp.o.d"
  "apps_termination_detection_test"
  "apps_termination_detection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_termination_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
