file(REMOVE_RECURSE
  "CMakeFiles/gc_action_test.dir/gc/action_test.cpp.o"
  "CMakeFiles/gc_action_test.dir/gc/action_test.cpp.o.d"
  "gc_action_test"
  "gc_action_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_action_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
