# Empty dependencies file for gc_action_test.
# This may be replaced when dependencies are built.
