file(REMOVE_RECURSE
  "CMakeFiles/apps_leader_election_test.dir/apps/leader_election_test.cpp.o"
  "CMakeFiles/apps_leader_election_test.dir/apps/leader_election_test.cpp.o.d"
  "apps_leader_election_test"
  "apps_leader_election_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_leader_election_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
