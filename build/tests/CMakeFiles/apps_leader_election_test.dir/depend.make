# Empty dependencies file for apps_leader_election_test.
# This may be replaced when dependencies are built.
