# Empty compiler generated dependencies file for verify_reachability_test.
# This may be replaced when dependencies are built.
