file(REMOVE_RECURSE
  "CMakeFiles/verify_reachability_test.dir/verify/reachability_test.cpp.o"
  "CMakeFiles/verify_reachability_test.dir/verify/reachability_test.cpp.o.d"
  "verify_reachability_test"
  "verify_reachability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_reachability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
