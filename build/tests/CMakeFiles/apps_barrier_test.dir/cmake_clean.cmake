file(REMOVE_RECURSE
  "CMakeFiles/apps_barrier_test.dir/apps/barrier_test.cpp.o"
  "CMakeFiles/apps_barrier_test.dir/apps/barrier_test.cpp.o.d"
  "apps_barrier_test"
  "apps_barrier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
