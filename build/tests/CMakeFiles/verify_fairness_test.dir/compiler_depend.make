# Empty compiler generated dependencies file for verify_fairness_test.
# This may be replaced when dependencies are built.
