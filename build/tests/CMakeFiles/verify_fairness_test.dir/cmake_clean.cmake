file(REMOVE_RECURSE
  "CMakeFiles/verify_fairness_test.dir/verify/fairness_test.cpp.o"
  "CMakeFiles/verify_fairness_test.dir/verify/fairness_test.cpp.o.d"
  "verify_fairness_test"
  "verify_fairness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
