file(REMOVE_RECURSE
  "CMakeFiles/verify_fairness_oracle_test.dir/verify/fairness_oracle_test.cpp.o"
  "CMakeFiles/verify_fairness_oracle_test.dir/verify/fairness_oracle_test.cpp.o.d"
  "verify_fairness_oracle_test"
  "verify_fairness_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_fairness_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
