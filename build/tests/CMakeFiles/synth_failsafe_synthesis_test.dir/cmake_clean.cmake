file(REMOVE_RECURSE
  "CMakeFiles/synth_failsafe_synthesis_test.dir/synth/failsafe_synthesis_test.cpp.o"
  "CMakeFiles/synth_failsafe_synthesis_test.dir/synth/failsafe_synthesis_test.cpp.o.d"
  "synth_failsafe_synthesis_test"
  "synth_failsafe_synthesis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_failsafe_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
