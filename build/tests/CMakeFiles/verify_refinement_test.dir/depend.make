# Empty dependencies file for verify_refinement_test.
# This may be replaced when dependencies are built.
