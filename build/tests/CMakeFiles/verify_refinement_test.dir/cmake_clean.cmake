file(REMOVE_RECURSE
  "CMakeFiles/verify_refinement_test.dir/verify/refinement_test.cpp.o"
  "CMakeFiles/verify_refinement_test.dir/verify/refinement_test.cpp.o.d"
  "verify_refinement_test"
  "verify_refinement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
