file(REMOVE_RECURSE
  "CMakeFiles/verify_invariant_test.dir/verify/invariant_test.cpp.o"
  "CMakeFiles/verify_invariant_test.dir/verify/invariant_test.cpp.o.d"
  "verify_invariant_test"
  "verify_invariant_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_invariant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
