# Empty dependencies file for verify_invariant_test.
# This may be replaced when dependencies are built.
