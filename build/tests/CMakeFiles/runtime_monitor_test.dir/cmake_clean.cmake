file(REMOVE_RECURSE
  "CMakeFiles/runtime_monitor_test.dir/runtime/monitor_test.cpp.o"
  "CMakeFiles/runtime_monitor_test.dir/runtime/monitor_test.cpp.o.d"
  "runtime_monitor_test"
  "runtime_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
