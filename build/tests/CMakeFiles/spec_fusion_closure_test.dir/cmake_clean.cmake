file(REMOVE_RECURSE
  "CMakeFiles/spec_fusion_closure_test.dir/spec/fusion_closure_test.cpp.o"
  "CMakeFiles/spec_fusion_closure_test.dir/spec/fusion_closure_test.cpp.o.d"
  "spec_fusion_closure_test"
  "spec_fusion_closure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_fusion_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
