# Empty dependencies file for spec_fusion_closure_test.
# This may be replaced when dependencies are built.
