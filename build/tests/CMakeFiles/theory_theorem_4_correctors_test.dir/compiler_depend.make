# Empty compiler generated dependencies file for theory_theorem_4_correctors_test.
# This may be replaced when dependencies are built.
