file(REMOVE_RECURSE
  "CMakeFiles/apps_distributed_reset_test.dir/apps/distributed_reset_test.cpp.o"
  "CMakeFiles/apps_distributed_reset_test.dir/apps/distributed_reset_test.cpp.o.d"
  "apps_distributed_reset_test"
  "apps_distributed_reset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_distributed_reset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
