# Empty dependencies file for apps_distributed_reset_test.
# This may be replaced when dependencies are built.
