# Empty dependencies file for spec_safety_spec_test.
# This may be replaced when dependencies are built.
