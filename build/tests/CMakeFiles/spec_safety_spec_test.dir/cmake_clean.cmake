file(REMOVE_RECURSE
  "CMakeFiles/spec_safety_spec_test.dir/spec/safety_spec_test.cpp.o"
  "CMakeFiles/spec_safety_spec_test.dir/spec/safety_spec_test.cpp.o.d"
  "spec_safety_spec_test"
  "spec_safety_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_safety_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
