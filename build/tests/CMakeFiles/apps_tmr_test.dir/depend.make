# Empty dependencies file for apps_tmr_test.
# This may be replaced when dependencies are built.
