file(REMOVE_RECURSE
  "CMakeFiles/apps_tmr_test.dir/apps/tmr_test.cpp.o"
  "CMakeFiles/apps_tmr_test.dir/apps/tmr_test.cpp.o.d"
  "apps_tmr_test"
  "apps_tmr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_tmr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
