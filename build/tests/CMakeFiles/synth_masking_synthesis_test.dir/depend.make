# Empty dependencies file for synth_masking_synthesis_test.
# This may be replaced when dependencies are built.
