file(REMOVE_RECURSE
  "CMakeFiles/synth_masking_synthesis_test.dir/synth/masking_synthesis_test.cpp.o"
  "CMakeFiles/synth_masking_synthesis_test.dir/synth/masking_synthesis_test.cpp.o.d"
  "synth_masking_synthesis_test"
  "synth_masking_synthesis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_masking_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
