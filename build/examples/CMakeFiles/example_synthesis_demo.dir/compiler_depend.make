# Empty compiler generated dependencies file for example_synthesis_demo.
# This may be replaced when dependencies are built.
