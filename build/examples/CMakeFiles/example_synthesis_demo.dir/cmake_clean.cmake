file(REMOVE_RECURSE
  "CMakeFiles/example_synthesis_demo.dir/synthesis_demo.cpp.o"
  "CMakeFiles/example_synthesis_demo.dir/synthesis_demo.cpp.o.d"
  "example_synthesis_demo"
  "example_synthesis_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_synthesis_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
