# Empty dependencies file for example_byzantine_demo.
# This may be replaced when dependencies are built.
