file(REMOVE_RECURSE
  "CMakeFiles/example_byzantine_demo.dir/byzantine_demo.cpp.o"
  "CMakeFiles/example_byzantine_demo.dir/byzantine_demo.cpp.o.d"
  "example_byzantine_demo"
  "example_byzantine_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_byzantine_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
