# Empty dependencies file for example_self_stabilization_demo.
# This may be replaced when dependencies are built.
