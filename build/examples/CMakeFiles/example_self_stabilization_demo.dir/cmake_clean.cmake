file(REMOVE_RECURSE
  "CMakeFiles/example_self_stabilization_demo.dir/self_stabilization_demo.cpp.o"
  "CMakeFiles/example_self_stabilization_demo.dir/self_stabilization_demo.cpp.o.d"
  "example_self_stabilization_demo"
  "example_self_stabilization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_self_stabilization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
