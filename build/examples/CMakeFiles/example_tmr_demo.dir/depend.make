# Empty dependencies file for example_tmr_demo.
# This may be replaced when dependencies are built.
