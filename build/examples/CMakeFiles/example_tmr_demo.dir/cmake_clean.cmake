file(REMOVE_RECURSE
  "CMakeFiles/example_tmr_demo.dir/tmr_demo.cpp.o"
  "CMakeFiles/example_tmr_demo.dir/tmr_demo.cpp.o.d"
  "example_tmr_demo"
  "example_tmr_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tmr_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
