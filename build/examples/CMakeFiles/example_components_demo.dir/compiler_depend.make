# Empty compiler generated dependencies file for example_components_demo.
# This may be replaced when dependencies are built.
