file(REMOVE_RECURSE
  "CMakeFiles/example_components_demo.dir/components_demo.cpp.o"
  "CMakeFiles/example_components_demo.dir/components_demo.cpp.o.d"
  "example_components_demo"
  "example_components_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_components_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
