# Empty compiler generated dependencies file for example_memory_access_demo.
# This may be replaced when dependencies are built.
