file(REMOVE_RECURSE
  "CMakeFiles/bench_stabilization.dir/bench_stabilization.cpp.o"
  "CMakeFiles/bench_stabilization.dir/bench_stabilization.cpp.o.d"
  "bench_stabilization"
  "bench_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
