file(REMOVE_RECURSE
  "CMakeFiles/bench_token_ring.dir/bench_token_ring.cpp.o"
  "CMakeFiles/bench_token_ring.dir/bench_token_ring.cpp.o.d"
  "bench_token_ring"
  "bench_token_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_token_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
