# Empty compiler generated dependencies file for bench_channels.
# This may be replaced when dependencies are built.
