# Empty compiler generated dependencies file for bench_memory_access.
# This may be replaced when dependencies are built.
