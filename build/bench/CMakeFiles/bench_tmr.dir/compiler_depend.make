# Empty compiler generated dependencies file for bench_tmr.
# This may be replaced when dependencies are built.
