file(REMOVE_RECURSE
  "CMakeFiles/bench_tmr.dir/bench_tmr.cpp.o"
  "CMakeFiles/bench_tmr.dir/bench_tmr.cpp.o.d"
  "bench_tmr"
  "bench_tmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
