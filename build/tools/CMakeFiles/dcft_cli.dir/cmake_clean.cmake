file(REMOVE_RECURSE
  "CMakeFiles/dcft_cli.dir/dcft_cli.cpp.o"
  "CMakeFiles/dcft_cli.dir/dcft_cli.cpp.o.d"
  "dcft"
  "dcft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcft_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
