# Empty compiler generated dependencies file for dcft_cli.
# This may be replaced when dependencies are built.
