// Fault injection for simulation runs.
//
// Mirrors the paper's fault model (Section 2.3): faults are actions that
// perturb the state, interleaved with program execution, occurring
// finitely often (Assumption 2 — enforced here by `max_faults`). Faults
// can fire probabilistically per step, or at scripted steps for
// reproducible worst-case scenarios.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "gc/program.hpp"

namespace dcft {

/// Injects fault actions into a simulation run.
class FaultInjector {
public:
    /// Probabilistic injection: each step, with probability `per_step_p`,
    /// one enabled fault action fires (uniformly chosen); at most
    /// `max_faults` faults fire in a run.
    FaultInjector(const FaultClass& faults, double per_step_p,
                  std::size_t max_faults);

    /// Additionally force the fault action with index `fault_action` to
    /// fire at simulation step `step` (if enabled there).
    void schedule(std::size_t step, std::size_t fault_action);

    /// Called by the simulator before each program step. Returns the
    /// post-fault state if a fault fires, nullopt otherwise.
    std::optional<StateIndex> maybe_inject(const StateSpace& space,
                                           StateIndex s, std::size_t step,
                                           Rng& rng);

    std::size_t faults_injected() const { return injected_; }
    void reset() { injected_ = 0; }

private:
    const FaultClass* faults_;
    double per_step_p_;
    std::size_t max_faults_;
    std::size_t injected_ = 0;
    std::vector<std::pair<std::size_t, std::size_t>> scripted_;  // (step, action)
};

}  // namespace dcft
