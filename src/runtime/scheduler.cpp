#include "runtime/scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dcft {

std::size_t RandomScheduler::pick(std::span<const std::size_t> enabled,
                                  Rng& rng) {
    DCFT_EXPECTS(!enabled.empty(), "pick on empty enabled set");
    return enabled[rng.below(enabled.size())];
}

std::size_t RoundRobinScheduler::pick(std::span<const std::size_t> enabled,
                                      Rng&) {
    DCFT_EXPECTS(!enabled.empty(), "pick on empty enabled set");
    // First enabled action with index >= cursor, else wrap around.
    auto it = std::lower_bound(enabled.begin(), enabled.end(), cursor_);
    const std::size_t chosen = (it != enabled.end()) ? *it : enabled.front();
    cursor_ = chosen + 1;
    return chosen;
}

AdversarialScheduler::AdversarialScheduler(std::vector<std::size_t> starved)
    : starved_(std::move(starved)) {
    std::sort(starved_.begin(), starved_.end());
}

std::size_t AdversarialScheduler::pick(std::span<const std::size_t> enabled,
                                       Rng& rng) {
    DCFT_EXPECTS(!enabled.empty(), "pick on empty enabled set");
    std::vector<std::size_t> preferred;
    preferred.reserve(enabled.size());
    for (std::size_t a : enabled)
        if (!std::binary_search(starved_.begin(), starved_.end(), a))
            preferred.push_back(a);
    const auto& pool = preferred.empty() ? std::vector<std::size_t>(
                                               enabled.begin(), enabled.end())
                                         : preferred;
    return pool[rng.below(pool.size())];
}

WeightedScheduler::WeightedScheduler(std::vector<double> weights)
    : weights_(std::move(weights)) {}

std::size_t WeightedScheduler::pick(std::span<const std::size_t> enabled,
                                    Rng& rng) {
    DCFT_EXPECTS(!enabled.empty(), "pick on empty enabled set");
    double total = 0;
    for (std::size_t a : enabled)
        total += (a < weights_.size()) ? weights_[a] : 1.0;
    if (total <= 0) return enabled[rng.below(enabled.size())];
    double roll = rng.uniform01() * total;
    for (std::size_t a : enabled) {
        roll -= (a < weights_.size()) ? weights_[a] : 1.0;
        if (roll <= 0) return a;
    }
    return enabled.back();
}

}  // namespace dcft
