#include "runtime/simulator.hpp"

#include <memory>

#include "common/check.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "verify/action_kernel.hpp"

namespace dcft {

Simulator::Simulator(const Program& program, Scheduler& scheduler,
                     std::uint64_t seed)
    : program_(&program), scheduler_(&scheduler), rng_(seed) {}

void Simulator::add_monitor(Monitor* monitor) {
    DCFT_EXPECTS(monitor != nullptr, "add_monitor(nullptr)");
    monitors_.push_back(monitor);
}

void Simulator::set_fault_injector(FaultInjector* injector) {
    injector_ = injector;
}

RunResult Simulator::run(StateIndex initial, const RunOptions& options) {
    const StateSpace& space = program_->space();
    DCFT_EXPECTS(initial < space.num_states(), "initial state out of range");

    // Telemetry is sampled once per run; monitor hook time is accumulated
    // locally and flushed at the end, so the per-step path never touches
    // the registry. With telemetry off the only cost is one bool.
    const bool telemetry = obs::enabled();
    const obs::ScopedSpan run_span("sim/run");
    static const std::uint32_t trace_id = obs::trace_name("sim/run");
    const obs::TraceSpan run_tspan(trace_id);
    std::uint64_t monitor_ns = 0;
    std::uint64_t monitor_calls = 0;
    const auto notify_step = [&](StateIndex from, StateIndex to, bool fault,
                                 std::size_t step) {
        if (telemetry && !monitors_.empty()) {
            const std::uint64_t t0 = obs::now_ns();
            for (Monitor* m : monitors_)
                m->on_step(space, from, to, fault, step);
            monitor_ns += obs::now_ns() - t0;
            monitor_calls += monitors_.size();
        } else {
            for (Monitor* m : monitors_)
                m->on_step(space, from, to, fault, step);
        }
    };

    scheduler_->reset();
    if (injector_ != nullptr) injector_->reset();

    // Compile the program's guards and effects once per run (interpreted
    // under DCFT_NO_COMPILE). The per-step enabled scan probes bytecode
    // guards instead of virtual Predicate::eval; enabled-index order and
    // successor order match the interpreted path exactly, so schedulers
    // and the RNG see identical streams.
    std::unique_ptr<CompiledActionSet> compiled;
    if (!compile_disabled())
        compiled = std::make_unique<CompiledActionSet>(program_->space_ptr(),
                                                       program_->actions());

    RunResult result;
    result.initial = initial;
    StateIndex s = initial;
    for (Monitor* m : monitors_) m->on_start(space, s);

    std::vector<std::size_t> enabled;
    std::vector<StateIndex> succ;
    while (result.steps < options.max_steps) {
        if (options.stop_when && options.stop_when->eval(space, s)) {
            result.stopped_early = true;
            break;
        }

        // Fault steps interleave with program steps; the injector bounds
        // their number (Assumption 2).
        if (injector_ != nullptr) {
            if (auto t = injector_->maybe_inject(space, s, result.steps,
                                                 rng_)) {
                notify_step(s, *t, /*fault=*/true, result.steps);
                if (options.record_trace)
                    result.trace.push_back(
                        TraceStep{*t, TraceStep::kFaultStep});
                s = *t;
                ++result.steps;
                ++result.fault_steps;
                continue;
            }
        }

        enabled.clear();
        if (compiled != nullptr) {
            for (std::size_t a = 0; a < program_->num_actions(); ++a)
                if ((*compiled)[a].enabled(s)) enabled.push_back(a);
        } else {
            for (std::size_t a = 0; a < program_->num_actions(); ++a)
                if (program_->action(a).enabled(space, s))
                    enabled.push_back(a);
        }
        if (enabled.empty()) {
            result.deadlocked = true;
            break;
        }
        const std::size_t a = scheduler_->pick(enabled, rng_);
        succ.clear();
        if (compiled != nullptr)
            (*compiled)[a].successors(s, succ);
        else
            program_->action(a).successors(space, s, succ);
        const StateIndex t = succ[rng_.below(succ.size())];
        notify_step(s, t, /*fault=*/false, result.steps);
        if (options.record_trace) result.trace.push_back(TraceStep{t, a});
        s = t;
        ++result.steps;
        ++result.program_steps;
    }

    result.final_state = s;
    for (Monitor* m : monitors_) m->on_finish(space, s, result.steps);

    if (telemetry) {
        auto& reg = obs::Registry::global();
        reg.counter("sim/runs").add(1);
        reg.counter("sim/steps").add(result.steps);
        reg.counter("sim/program_steps").add(result.program_steps);
        reg.counter("sim/fault_steps").add(result.fault_steps);
        if (result.deadlocked) reg.counter("sim/deadlocks").add(1);
        if (result.stopped_early) reg.counter("sim/stopped_early").add(1);
        if (monitor_calls > 0)
            reg.timer("sim/run/monitor_hooks").add(monitor_ns, monitor_calls);
    }
    return result;
}

}  // namespace dcft
