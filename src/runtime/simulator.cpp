#include "runtime/simulator.hpp"

#include "common/check.hpp"

namespace dcft {

Simulator::Simulator(const Program& program, Scheduler& scheduler,
                     std::uint64_t seed)
    : program_(&program), scheduler_(&scheduler), rng_(seed) {}

void Simulator::add_monitor(Monitor* monitor) {
    DCFT_EXPECTS(monitor != nullptr, "add_monitor(nullptr)");
    monitors_.push_back(monitor);
}

void Simulator::set_fault_injector(FaultInjector* injector) {
    injector_ = injector;
}

RunResult Simulator::run(StateIndex initial, const RunOptions& options) {
    const StateSpace& space = program_->space();
    DCFT_EXPECTS(initial < space.num_states(), "initial state out of range");

    scheduler_->reset();
    if (injector_ != nullptr) injector_->reset();

    RunResult result;
    result.initial = initial;
    StateIndex s = initial;
    for (Monitor* m : monitors_) m->on_start(space, s);

    std::vector<std::size_t> enabled;
    std::vector<StateIndex> succ;
    while (result.steps < options.max_steps) {
        if (options.stop_when && options.stop_when->eval(space, s)) {
            result.stopped_early = true;
            break;
        }

        // Fault steps interleave with program steps; the injector bounds
        // their number (Assumption 2).
        if (injector_ != nullptr) {
            if (auto t = injector_->maybe_inject(space, s, result.steps,
                                                 rng_)) {
                for (Monitor* m : monitors_)
                    m->on_step(space, s, *t, /*fault=*/true, result.steps);
                if (options.record_trace)
                    result.trace.push_back(
                        TraceStep{*t, TraceStep::kFaultStep});
                s = *t;
                ++result.steps;
                ++result.fault_steps;
                continue;
            }
        }

        enabled.clear();
        for (std::size_t a = 0; a < program_->num_actions(); ++a)
            if (program_->action(a).enabled(space, s)) enabled.push_back(a);
        if (enabled.empty()) {
            result.deadlocked = true;
            break;
        }
        const std::size_t a = scheduler_->pick(enabled, rng_);
        succ.clear();
        program_->action(a).successors(space, s, succ);
        const StateIndex t = succ[rng_.below(succ.size())];
        for (Monitor* m : monitors_)
            m->on_step(space, s, t, /*fault=*/false, result.steps);
        if (options.record_trace) result.trace.push_back(TraceStep{t, a});
        s = t;
        ++result.steps;
        ++result.program_steps;
    }

    result.final_state = s;
    for (Monitor* m : monitors_) m->on_finish(space, s, result.steps);
    return result;
}

}  // namespace dcft
