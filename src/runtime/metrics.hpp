// Small statistics helpers for monitors and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace dcft {

/// Accumulates samples; reports count/mean/min/max/percentiles.
class SummaryStats {
public:
    void add(double sample);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    /// mean/min/max of empty stats yield a quiet NaN (reports print it as
    /// null), matching percentile's empty-stats contract.
    double mean() const;
    double min() const;
    double max() const;
    /// q in [0,1] (non-finite q, including NaN, is a contract violation);
    /// nearest-rank percentile: rank ceil(q*n), so q=0 and q=1 select the
    /// min and max even for a single sample. Empty stats yield a quiet NaN
    /// (reports print it as null) instead of indexing out of range.
    double percentile(double q) const;
    /// Common percentiles for run reports and experiment tables.
    double p50() const { return percentile(0.50); }
    double p90() const { return percentile(0.90); }
    double p99() const { return percentile(0.99); }

    const std::vector<double>& samples() const { return samples_; }

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    void ensure_sorted() const;
};

}  // namespace dcft
