#include "runtime/estimate.hpp"

#include <limits>

#include "common/check.hpp"
#include "obs/telemetry.hpp"

namespace dcft {

ToleranceEstimate estimate_tolerance(const Program& p, const FaultClass& f,
                                     const ProblemSpec& spec,
                                     const Predicate& invariant,
                                     StateIndex initial,
                                     const ToleranceEstimateOptions& options) {
    const obs::ScopedSpan span("runtime/estimate_tolerance");
    obs::count("runtime/estimate_tolerance_queries");
    DCFT_EXPECTS(options.runs > 0,
                 "estimate_tolerance requires at least one run");

    Experiment ex;
    ex.program = &p;
    ex.initial = initial;
    ex.options.max_steps = options.max_steps;
    ex.base_seed = options.base_seed;
    ex.runs = options.runs;
    ex.threads = options.threads;
    ex.faults = &f;
    ex.fault_probability = options.fault_probability;
    // The injector's max_faults is a hard cap (0 = inject nothing); this
    // layer's 0 means "no cap" — the per-run step budget already bounds
    // fault counts, keeping Assumption 2's finiteness.
    ex.max_faults = options.max_faults == 0
                        ? std::numeric_limits<std::size_t>::max()
                        : options.max_faults;
    ex.safety = spec.safety();
    ex.corrector = invariant;

    ToleranceEstimate estimate;
    estimate.options = options;
    estimate.batch = run_experiment(ex);
    return estimate;
}

}  // namespace dcft
