// Monte Carlo tolerance estimation: the statistical companion to the
// masking-distance game (src/verify/masking_distance.hpp).
//
// The game answers "how many faults can an adversary spend to break
// safety?"; estimate_tolerance answers "how long does the system actually
// survive under a random fault process?". It drives run_experiment over
// p with F injected per-step, monitors the safety part of SPEC and the
// invariant as a corrector predicate, and reports three distributions:
//
//   time_to_violation  — steps until safety first broke (violated runs)
//   time_to_recovery   — correction-latency episodes of the invariant
//                        (steps outside the invariant until re-entry)
//   faults_absorbed    — fault steps survived without breaking safety
//                        (one sample per run)
//
// Determinism contract: run i is seeded base_seed + i and run_experiment
// merges per-slice accumulators in slice order, so the estimate — every
// sample, in order — is bit-identical for every `threads` value (pinned by
// the experiment regression test and graded_smoke).
#pragma once

#include <cstdint>

#include "runtime/experiment.hpp"
#include "spec/problem_spec.hpp"

namespace dcft {

/// Knobs for one Monte Carlo estimate.
struct ToleranceEstimateOptions {
    std::size_t runs = 200;
    unsigned threads = 1;  ///< 0 = hardware concurrency
    std::uint64_t base_seed = 1;
    std::size_t max_steps = 500;       ///< per-run step budget
    double fault_probability = 0.1;    ///< per-step injection probability
    std::size_t max_faults = 0;        ///< 0 = unbounded (Assumption 2 off)
};

/// One Monte Carlo estimate: the batch aggregates plus the configuration
/// that produced them (so reports are reproducible from the block alone).
struct ToleranceEstimate {
    ToleranceEstimateOptions options;
    BatchResult batch;

    /// Fraction of runs where safety broke at least once.
    double violation_rate() const {
        return batch.runs == 0
                   ? 0.0
                   : static_cast<double>(batch.violated_runs) /
                         static_cast<double>(batch.runs);
    }
    const SummaryStats& time_to_violation() const {
        return batch.time_to_violation;
    }
    const SummaryStats& time_to_recovery() const {
        return batch.correction_latency;
    }
    const SummaryStats& faults_absorbed() const {
        return batch.faults_absorbed;
    }
};

/// Estimates the graded tolerance of p under f against SPEC's safety part
/// by seeded simulation from `initial` (a state inside the invariant).
/// The invariant doubles as the corrector predicate, so time_to_recovery
/// measures how long runs stay outside it after a disruption.
ToleranceEstimate estimate_tolerance(const Program& p, const FaultClass& f,
                                     const ProblemSpec& spec,
                                     const Predicate& invariant,
                                     StateIndex initial,
                                     const ToleranceEstimateOptions& options);

}  // namespace dcft
