// The discrete-step execution engine (the paper's SIEFAST sketch, Section
// 7): runs a guarded-command program under a scheduler, optionally
// injecting faults, notifying monitors, and recording traces.
#pragma once

#include <optional>
#include <vector>

#include "gc/program.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/monitor.hpp"
#include "runtime/scheduler.hpp"

namespace dcft {

/// One executed step of a run.
struct TraceStep {
    StateIndex to;
    /// Index of the executed program action, or npos for a fault step.
    std::size_t action;
    static constexpr std::size_t kFaultStep = ~std::size_t{0};
    bool is_fault() const { return action == kFaultStep; }
};

struct RunOptions {
    std::size_t max_steps = 100000;
    bool record_trace = false;
    /// If set, the run stops as soon as this predicate holds.
    std::optional<Predicate> stop_when;
};

struct RunResult {
    StateIndex initial = 0;
    StateIndex final_state = 0;
    std::size_t steps = 0;           ///< program + fault steps executed
    std::size_t program_steps = 0;
    std::size_t fault_steps = 0;
    bool deadlocked = false;         ///< ended in a p-maximal state
    bool stopped_early = false;      ///< stop_when fired
    std::vector<TraceStep> trace;    ///< only if record_trace
};

/// Executes programs step by step. Not thread-safe; one Simulator per
/// thread. Monitors and the injector are borrowed (caller keeps ownership
/// and must keep them alive during run()).
class Simulator {
public:
    Simulator(const Program& program, Scheduler& scheduler,
              std::uint64_t seed = 1);

    /// Registers an observer (borrowed).
    void add_monitor(Monitor* monitor);

    /// Attaches a fault injector (borrowed); nullptr detaches.
    void set_fault_injector(FaultInjector* injector);

    /// Runs from `initial` until deadlock, stop_when, or max_steps.
    RunResult run(StateIndex initial, const RunOptions& options = {});

    Rng& rng() { return rng_; }

private:
    const Program* program_;
    Scheduler* scheduler_;
    Rng rng_;
    std::vector<Monitor*> monitors_;
    FaultInjector* injector_ = nullptr;
};

}  // namespace dcft
