// Offline trace checking: validate a recorded simulation trace against
// specifications after the fact.
//
// This is the other half of the paper's hybrid-simulation story (Section
// 7): a run produced by the simulator — possibly of a partially
// implemented system — is checked against the same safety specifications
// and detector/corrector conditions the verifier proves exhaustively.
// Monitors (runtime/monitor.hpp) do this online; the trace checker does it
// post-hoc on a RunResult with a recorded trace, and reports *where* in
// the trace each condition failed.
#pragma once

#include <optional>
#include <vector>

#include "runtime/simulator.hpp"
#include "spec/corrects.hpp"
#include "spec/detects.hpp"
#include "spec/safety_spec.hpp"

namespace dcft {

/// One violation found in a trace.
struct TraceViolation {
    std::size_t step;  ///< index into the reconstructed state sequence
    std::string what;  ///< which condition, and how it failed
};

/// Result of checking one trace.
struct TraceReport {
    std::vector<TraceViolation> violations;
    bool ok() const { return violations.empty(); }
};

/// The full state sequence of a run: initial state plus one state per
/// trace step. Precondition: the run was recorded with record_trace.
std::vector<StateIndex> trace_states(const RunResult& run);

/// Checks every state and step of the trace against a safety
/// specification. Fault steps are included — the paper's computations in
/// the presence of faults contain them.
TraceReport check_trace_safety(const StateSpace& space, const RunResult& run,
                               const SafetySpec& safety);

/// Checks the safety half of 'Z detects X' (Safeness + Stability) along
/// the trace, and reports detection episodes X held to the end without
/// being witnessed (a finite-trace approximation of Progress).
TraceReport check_trace_detector(const StateSpace& space,
                                 const RunResult& run,
                                 const DetectorClaim& claim);

/// Checks the safety half of 'Z corrects X' along the trace and reports a
/// final unconverged suffix (finite-trace approximation of Convergence).
/// Fault steps are exempt from the cl(X) clause, mirroring Theorem 5.5's
/// observation that faults may violate corrector closure.
TraceReport check_trace_corrector(const StateSpace& space,
                                  const RunResult& run,
                                  const CorrectorClaim& claim);

}  // namespace dcft
