#include "runtime/fault_injector.hpp"

#include "common/check.hpp"
#include "obs/telemetry.hpp"

namespace dcft {

FaultInjector::FaultInjector(const FaultClass& faults, double per_step_p,
                             std::size_t max_faults)
    : faults_(&faults), per_step_p_(per_step_p), max_faults_(max_faults) {}

void FaultInjector::schedule(std::size_t step, std::size_t fault_action) {
    DCFT_EXPECTS(fault_action < faults_->actions().size(),
                 "scheduled fault action out of range");
    scripted_.emplace_back(step, fault_action);
}

std::optional<StateIndex> FaultInjector::maybe_inject(const StateSpace& space,
                                                      StateIndex s,
                                                      std::size_t step,
                                                      Rng& rng) {
    if (injected_ >= max_faults_) return std::nullopt;

    std::vector<StateIndex> succ;
    for (const auto& [at, action] : scripted_) {
        if (at != step) continue;
        const Action& fac = faults_->actions()[action];
        if (!fac.enabled(space, s)) continue;
        fac.successors(space, s, succ);
        ++injected_;
        obs::count("sim/faults_injected");
        obs::count("sim/faults_injected/scripted");
        return succ[rng.below(succ.size())];
    }

    if (per_step_p_ <= 0 || !rng.chance(per_step_p_)) return std::nullopt;

    // Pick uniformly among enabled fault actions, then among that action's
    // successors (demonic nondeterminism resolved randomly).
    std::vector<std::size_t> enabled;
    for (std::size_t a = 0; a < faults_->actions().size(); ++a)
        if (faults_->actions()[a].enabled(space, s)) enabled.push_back(a);
    if (enabled.empty()) return std::nullopt;
    const auto& fac = faults_->actions()[enabled[rng.below(enabled.size())]];
    fac.successors(space, s, succ);
    ++injected_;
    obs::count("sim/faults_injected");
    obs::count("sim/faults_injected/random");
    return succ[rng.below(succ.size())];
}

}  // namespace dcft
