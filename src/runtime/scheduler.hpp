// Schedulers: which enabled action executes next.
//
// The paper's computations are fair — every continuously enabled action is
// eventually executed. RoundRobinScheduler realizes that guarantee
// deterministically; RandomScheduler realizes it with probability 1;
// AdversarialScheduler deliberately starves chosen actions for as long as
// possible, which is useful for stress-testing detector/corrector latency
// bounds in benches.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace dcft {

/// Strategy interface for picking the next action to execute.
class Scheduler {
public:
    virtual ~Scheduler() = default;

    /// Picks one element of `enabled` (indices of enabled actions, strictly
    /// increasing). Precondition: enabled is nonempty.
    virtual std::size_t pick(std::span<const std::size_t> enabled,
                             Rng& rng) = 0;

    /// Resets internal state between runs.
    virtual void reset() {}

    virtual std::string name() const = 0;
};

/// Uniformly random among the enabled actions (fair with probability 1).
class RandomScheduler final : public Scheduler {
public:
    std::size_t pick(std::span<const std::size_t> enabled, Rng& rng) override;
    std::string name() const override { return "random"; }
};

/// Cycles through action indices; picks the first enabled action at or
/// after the cursor. Deterministically weakly fair.
class RoundRobinScheduler final : public Scheduler {
public:
    std::size_t pick(std::span<const std::size_t> enabled, Rng& rng) override;
    void reset() override { cursor_ = 0; }
    std::string name() const override { return "round-robin"; }

private:
    std::size_t cursor_ = 0;
};

/// Avoids the actions in `starved` whenever any other action is enabled.
/// Useful to measure worst-case detection/correction latency.
class AdversarialScheduler final : public Scheduler {
public:
    explicit AdversarialScheduler(std::vector<std::size_t> starved);
    std::size_t pick(std::span<const std::size_t> enabled, Rng& rng) override;
    std::string name() const override { return "adversarial"; }

private:
    std::vector<std::size_t> starved_;
};

/// Picks proportionally to per-action weights (default weight 1).
class WeightedScheduler final : public Scheduler {
public:
    explicit WeightedScheduler(std::vector<double> weights);
    std::size_t pick(std::span<const std::size_t> enabled, Rng& rng) override;
    std::string name() const override { return "weighted"; }

private:
    std::vector<double> weights_;
};

}  // namespace dcft
