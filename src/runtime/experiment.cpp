#include "runtime/experiment.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "obs/progress.hpp"

namespace dcft {
namespace {

/// Runs the slice [begin, end) of the experiment's runs and merges into
/// `total` under `mutex`.
void run_slice(const Experiment& ex, std::size_t begin, std::size_t end,
               BatchResult& total, std::mutex& mutex,
               std::atomic<std::size_t>& done) {
    std::unique_ptr<Scheduler> scheduler =
        ex.make_scheduler ? ex.make_scheduler()
                          : std::make_unique<RandomScheduler>();
    const bool progress_on = obs::progress_enabled();
    BatchResult local;
    for (std::size_t i = begin; i < end; ++i) {
        if (progress_on)
            obs::progress_items(
                "experiment",
                done.fetch_add(1, std::memory_order_relaxed) + 1, ex.runs);
        Simulator sim(*ex.program, *scheduler, ex.base_seed + i);
        std::optional<FaultInjector> injector;
        if (ex.faults != nullptr) {
            injector.emplace(*ex.faults, ex.fault_probability,
                             ex.max_faults);
            sim.set_fault_injector(&*injector);
        }
        std::optional<SafetyMonitor> safety;
        if (ex.safety) {
            safety.emplace(*ex.safety);
            sim.add_monitor(&*safety);
        }
        std::optional<DetectorMonitor> detector;
        if (ex.detector) {
            detector.emplace(ex.detector->first, ex.detector->second);
            sim.add_monitor(&*detector);
        }
        std::optional<CorrectorMonitor> corrector;
        if (ex.corrector) {
            corrector.emplace(*ex.corrector);
            sim.add_monitor(&*corrector);
        }

        const RunResult run = sim.run(ex.initial, ex.options);
        ++local.runs;
        if (run.deadlocked) ++local.deadlocked;
        if (run.stopped_early) ++local.stopped_early;
        local.steps.add(static_cast<double>(run.steps));
        local.fault_steps.add(static_cast<double>(run.fault_steps));
        if (safety) local.safety_violations += safety->program_violations();
        if (detector) {
            for (double sample : detector->detection_latency().samples())
                local.detection_latency.add(sample);
        }
        if (corrector) {
            for (double sample :
                 corrector->correction_latency().samples())
                local.correction_latency.add(sample);
            local.availability.add(corrector->availability());
        }
    }

    const std::lock_guard<std::mutex> lock(mutex);
    total.runs += local.runs;
    total.deadlocked += local.deadlocked;
    total.stopped_early += local.stopped_early;
    total.safety_violations += local.safety_violations;
    for (double x : local.steps.samples()) total.steps.add(x);
    for (double x : local.fault_steps.samples()) total.fault_steps.add(x);
    for (double x : local.detection_latency.samples())
        total.detection_latency.add(x);
    for (double x : local.correction_latency.samples())
        total.correction_latency.add(x);
    for (double x : local.availability.samples())
        total.availability.add(x);
}

}  // namespace

BatchResult run_experiment(const Experiment& ex) {
    DCFT_EXPECTS(ex.program != nullptr, "Experiment requires a program");
    DCFT_EXPECTS(ex.runs > 0, "Experiment requires at least one run");

    unsigned threads = ex.threads == 0
                           ? std::max(1u, std::thread::hardware_concurrency())
                           : ex.threads;
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(ex.runs));

    BatchResult total;
    std::mutex mutex;
    std::atomic<std::size_t> done{0};
    if (threads <= 1) {
        run_slice(ex, 0, ex.runs, total, mutex, done);
        return total;
    }

    std::vector<std::thread> pool;
    const std::size_t chunk = (ex.runs + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(ex.runs, begin + chunk);
        if (begin >= end) break;
        pool.emplace_back([&ex, begin, end, &total, &mutex, &done] {
            run_slice(ex, begin, end, total, mutex, done);
        });
    }
    for (auto& worker : pool) worker.join();
    return total;
}

}  // namespace dcft
