#include "runtime/experiment.hpp"

#include <atomic>
#include <memory>
#include <thread>

#include "common/check.hpp"
#include "obs/progress.hpp"

namespace dcft {
namespace {

/// Runs the slice [begin, end) of the experiment's runs into a local
/// accumulator. No shared mutable state beyond the progress counter: the
/// caller merges the returned slices in slice-index order so pooled sample
/// order never depends on thread completion order.
BatchResult run_slice(const Experiment& ex, std::size_t begin,
                      std::size_t end, std::atomic<std::size_t>& done) {
    std::unique_ptr<Scheduler> scheduler =
        ex.make_scheduler ? ex.make_scheduler()
                          : std::make_unique<RandomScheduler>();
    const bool progress_on = obs::progress_enabled();
    BatchResult local;
    for (std::size_t i = begin; i < end; ++i) {
        if (progress_on)
            obs::progress_items(
                "experiment",
                done.fetch_add(1, std::memory_order_relaxed) + 1, ex.runs);
        Simulator sim(*ex.program, *scheduler, ex.base_seed + i);
        std::optional<FaultInjector> injector;
        if (ex.faults != nullptr) {
            injector.emplace(*ex.faults, ex.fault_probability,
                             ex.max_faults);
            sim.set_fault_injector(&*injector);
        }
        std::optional<SafetyMonitor> safety;
        if (ex.safety) {
            safety.emplace(*ex.safety);
            sim.add_monitor(&*safety);
        }
        std::optional<DetectorMonitor> detector;
        if (ex.detector) {
            detector.emplace(ex.detector->first, ex.detector->second);
            sim.add_monitor(&*detector);
        }
        std::optional<CorrectorMonitor> corrector;
        if (ex.corrector) {
            corrector.emplace(*ex.corrector);
            sim.add_monitor(&*corrector);
        }

        const RunResult run = sim.run(ex.initial, ex.options);
        ++local.runs;
        if (run.deadlocked) ++local.deadlocked;
        if (run.stopped_early) ++local.stopped_early;
        local.steps.add(static_cast<double>(run.steps));
        local.fault_steps.add(static_cast<double>(run.fault_steps));
        if (safety) {
            local.safety_violations += safety->program_violations();
            if (const auto first = safety->first_violation_step()) {
                ++local.violated_runs;
                local.time_to_violation.add(static_cast<double>(*first));
            }
            local.faults_absorbed.add(
                static_cast<double>(safety->faults_absorbed()));
        }
        if (detector) {
            for (double sample : detector->detection_latency().samples())
                local.detection_latency.add(sample);
        }
        if (corrector) {
            for (double sample :
                 corrector->correction_latency().samples())
                local.correction_latency.add(sample);
            local.availability.add(corrector->availability());
        }
    }
    return local;
}

/// Appends `slice` onto `total`, preserving sample order.
void merge_slice(BatchResult& total, const BatchResult& slice) {
    total.runs += slice.runs;
    total.deadlocked += slice.deadlocked;
    total.stopped_early += slice.stopped_early;
    total.safety_violations += slice.safety_violations;
    total.violated_runs += slice.violated_runs;
    for (double x : slice.steps.samples()) total.steps.add(x);
    for (double x : slice.fault_steps.samples()) total.fault_steps.add(x);
    for (double x : slice.detection_latency.samples())
        total.detection_latency.add(x);
    for (double x : slice.correction_latency.samples())
        total.correction_latency.add(x);
    for (double x : slice.availability.samples())
        total.availability.add(x);
    for (double x : slice.time_to_violation.samples())
        total.time_to_violation.add(x);
    for (double x : slice.faults_absorbed.samples())
        total.faults_absorbed.add(x);
}

}  // namespace

BatchResult run_experiment(const Experiment& ex) {
    DCFT_EXPECTS(ex.program != nullptr, "Experiment requires a program");
    DCFT_EXPECTS(ex.runs > 0, "Experiment requires at least one run");

    unsigned threads = ex.threads == 0
                           ? std::max(1u, std::thread::hardware_concurrency())
                           : ex.threads;
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(ex.runs));

    std::atomic<std::size_t> done{0};
    if (threads <= 1) return run_slice(ex, 0, ex.runs, done);

    // Contiguous ascending slices, one accumulator per slice. Merging in
    // slice-index order after the join reproduces run order 0..runs-1
    // exactly, so the pooled stats are bit-identical to a 1-thread run.
    const std::size_t chunk = (ex.runs + threads - 1) / threads;
    std::vector<BatchResult> slices;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(ex.runs, begin + chunk);
        if (begin >= end) break;
        slices.emplace_back();
    }
    for (std::size_t t = 0; t < slices.size(); ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(ex.runs, begin + chunk);
        pool.emplace_back([&ex, begin, end, &slices, t, &done] {
            slices[t] = run_slice(ex, begin, end, done);
        });
    }
    for (auto& worker : pool) worker.join();

    BatchResult total;
    for (const BatchResult& slice : slices) merge_slice(total, slice);
    return total;
}

}  // namespace dcft
