#include "runtime/trace_checker.hpp"

#include "common/check.hpp"

namespace dcft {

std::vector<StateIndex> trace_states(const RunResult& run) {
    DCFT_EXPECTS(run.trace.size() == run.steps || run.steps == 0,
                 "trace_states requires a run recorded with record_trace");
    std::vector<StateIndex> states;
    states.reserve(run.trace.size() + 1);
    states.push_back(run.initial);
    for (const TraceStep& step : run.trace) states.push_back(step.to);
    return states;
}

TraceReport check_trace_safety(const StateSpace& space, const RunResult& run,
                               const SafetySpec& safety) {
    const std::vector<StateIndex> states = trace_states(run);
    TraceReport report;
    for (std::size_t i = 0; i < states.size(); ++i) {
        if (!safety.state_allowed(space, states[i])) {
            report.violations.push_back(TraceViolation{
                i, "state " + space.format(states[i]) + " excluded by " +
                       safety.name()});
        }
        if (i + 1 < states.size() &&
            !safety.transition_allowed(space, states[i], states[i + 1])) {
            const bool fault = run.trace[i].is_fault();
            report.violations.push_back(TraceViolation{
                i + 1, std::string(fault ? "fault step " : "step ") +
                           space.format(states[i]) + " -> " +
                           space.format(states[i + 1]) + " excluded by " +
                           safety.name()});
        }
    }
    return report;
}

TraceReport check_trace_detector(const StateSpace& space,
                                 const RunResult& run,
                                 const DetectorClaim& claim) {
    const std::vector<StateIndex> states = trace_states(run);
    TraceReport report;
    for (std::size_t i = 0; i < states.size(); ++i) {
        const bool z = claim.witness.eval(space, states[i]);
        const bool x = claim.detection.eval(space, states[i]);
        if (z && !x) {
            report.violations.push_back(TraceViolation{
                i, "Safeness: witness raised at " +
                       space.format(states[i]) +
                       " although the detection predicate is false"});
        }
        if (i + 1 < states.size() && z) {
            const bool z2 = claim.witness.eval(space, states[i + 1]);
            const bool x2 = claim.detection.eval(space, states[i + 1]);
            if (!z2 && x2) {
                report.violations.push_back(TraceViolation{
                    i + 1,
                    "Stability: witness retracted at " +
                        space.format(states[i + 1]) +
                        " while the detection predicate still holds"});
            }
        }
    }
    // Progress approximation: X held from some point to the end of the
    // finite trace without ever being witnessed.
    std::optional<std::size_t> x_since;
    for (std::size_t i = 0; i < states.size(); ++i) {
        const bool x = claim.detection.eval(space, states[i]);
        const bool z = claim.witness.eval(space, states[i]);
        if (!x || z)
            x_since.reset();
        else if (!x_since)
            x_since = i;
    }
    if (x_since) {
        report.violations.push_back(TraceViolation{
            *x_since,
            "Progress (finite-trace): detection predicate holds from step " +
                std::to_string(*x_since) +
                " to the end without being witnessed"});
    }
    return report;
}

TraceReport check_trace_corrector(const StateSpace& space,
                                  const RunResult& run,
                                  const CorrectorClaim& claim) {
    const std::vector<StateIndex> states = trace_states(run);
    TraceReport report;
    for (std::size_t i = 0; i < states.size(); ++i) {
        const bool z = claim.witness.eval(space, states[i]);
        const bool x = claim.correction.eval(space, states[i]);
        if (z && !x) {
            report.violations.push_back(TraceViolation{
                i, "Safeness: witness raised at " +
                       space.format(states[i]) +
                       " although the correction predicate is false"});
        }
        if (i + 1 < states.size()) {
            const bool fault = run.trace[i].is_fault();
            const bool x2 = claim.correction.eval(space, states[i + 1]);
            const bool z2 = claim.witness.eval(space, states[i + 1]);
            // cl(X): program steps never falsify the correction predicate
            // (fault steps may — Theorem 5.5's asymmetry).
            if (x && !x2 && !fault) {
                report.violations.push_back(TraceViolation{
                    i + 1, "Convergence closure: program step falsified "
                           "the correction predicate at " +
                               space.format(states[i + 1])});
            }
            if (z && !z2 && x2 && !fault) {
                report.violations.push_back(TraceViolation{
                    i + 1, "Stability: witness retracted at " +
                               space.format(states[i + 1]) +
                               " while the correction predicate holds"});
            }
        }
    }
    // Convergence approximation: the trace must not end unconverged.
    if (!states.empty() &&
        !claim.correction.eval(space, states.back())) {
        report.violations.push_back(TraceViolation{
            states.size() - 1,
            "Convergence (finite-trace): trace ends with the correction "
            "predicate false"});
    }
    return report;
}

}  // namespace dcft
