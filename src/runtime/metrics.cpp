#include "runtime/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace dcft {

void SummaryStats::add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
}

void SummaryStats::ensure_sorted() const {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double SummaryStats::mean() const {
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    double total = 0;
    for (double x : samples_) total += x;
    return total / static_cast<double>(samples_.size());
}

double SummaryStats::min() const {
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    ensure_sorted();
    return samples_.front();
}

double SummaryStats::max() const {
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    ensure_sorted();
    return samples_.back();
}

double SummaryStats::percentile(double q) const {
    DCFT_EXPECTS(q >= 0.0 && q <= 1.0, "percentile requires q in [0,1]");
    // An empty accumulator has no ranks; a quiet NaN lets callers emit the
    // "no data" case without a pre-check (JSON writers render it as null).
    if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
    ensure_sorted();
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples_.size())));
    return samples_[rank == 0 ? 0 : rank - 1];
}

}  // namespace dcft
