// Online monitors: detectors and correctors observed at runtime.
//
// The verifier (src/verify) proves detector/corrector judgments over whole
// state spaces; monitors measure the same components on individual
// simulation runs — detection latency, correction latency, availability,
// and safety-violation counts. This is the hybrid-validation role the
// paper sketches for SIEFAST in Section 7.
#pragma once

#include <cstddef>
#include <optional>

#include "gc/predicate.hpp"
#include "runtime/metrics.hpp"
#include "spec/safety_spec.hpp"

namespace dcft {

/// Observer interface; the simulator invokes the hooks in order.
class Monitor {
public:
    virtual ~Monitor() = default;
    virtual void on_start(const StateSpace& space, StateIndex initial);
    /// One executed step; `fault` marks fault-injector steps.
    virtual void on_step(const StateSpace& space, StateIndex from,
                         StateIndex to, bool fault, std::size_t step);
    virtual void on_finish(const StateSpace& space, StateIndex last,
                           std::size_t steps);
};

/// Counts violations of a safety specification along the run, separately
/// for program steps and fault steps.
class SafetyMonitor final : public Monitor {
public:
    explicit SafetyMonitor(SafetySpec spec);

    void on_start(const StateSpace& space, StateIndex initial) override;
    void on_step(const StateSpace& space, StateIndex from, StateIndex to,
                 bool fault, std::size_t step) override;

    std::size_t program_violations() const { return program_violations_; }
    std::size_t fault_violations() const { return fault_violations_; }
    std::size_t bad_states() const { return bad_states_; }

    /// Steps executed up to and including the first violating step (0 when
    /// the initial state is already bad); empty if the run never violated.
    std::optional<std::size_t> first_violation_step() const {
        return first_violation_;
    }
    /// Fault steps absorbed strictly before the first violation (the
    /// violating step itself, fault or not, is not "absorbed"). Counts all
    /// faults seen when the run never violated.
    std::size_t faults_absorbed() const;

private:
    SafetySpec spec_;
    std::size_t program_violations_ = 0;
    std::size_t fault_violations_ = 0;
    std::size_t bad_states_ = 0;
    std::optional<std::size_t> first_violation_;
    std::size_t faults_seen_ = 0;
    std::size_t faults_before_violation_ = 0;
};

/// Measures a detector 'Z detects X': detection latency (steps from X
/// becoming true until Z witnesses it) and Safeness/Stability violations.
class DetectorMonitor final : public Monitor {
public:
    DetectorMonitor(Predicate witness, Predicate detection);

    void on_start(const StateSpace& space, StateIndex initial) override;
    void on_step(const StateSpace& space, StateIndex from, StateIndex to,
                 bool fault, std::size_t step) override;

    const SummaryStats& detection_latency() const { return latency_; }
    std::size_t safeness_violations() const { return safeness_violations_; }
    std::size_t stability_violations() const { return stability_violations_; }
    /// X held at the end of the run but Z never witnessed it.
    std::size_t pending_detections() const { return pending_; }

private:
    void observe(const StateSpace& space, StateIndex s, std::size_t step,
                 bool entering);

    Predicate z_, x_;
    std::optional<std::size_t> x_since_;  ///< step X became (and stayed) true
    bool z_prev_ = false;
    SummaryStats latency_;
    std::size_t safeness_violations_ = 0;
    std::size_t stability_violations_ = 0;
    std::size_t pending_ = 0;
};

/// Measures a corrector 'Z corrects X': availability (fraction of steps
/// where X holds), correction latency per disruption episode, and the
/// number of disruptions.
class CorrectorMonitor final : public Monitor {
public:
    explicit CorrectorMonitor(Predicate correction);

    void on_start(const StateSpace& space, StateIndex initial) override;
    void on_step(const StateSpace& space, StateIndex from, StateIndex to,
                 bool fault, std::size_t step) override;
    void on_finish(const StateSpace& space, StateIndex last,
                   std::size_t steps) override;

    const SummaryStats& correction_latency() const { return latency_; }
    std::size_t disruptions() const { return disruptions_; }
    /// Fraction of observed states satisfying X.
    double availability() const;
    /// The run ended while X was still false.
    bool unrecovered_at_end() const { return broken_since_.has_value(); }

private:
    Predicate x_;
    std::optional<std::size_t> broken_since_;
    SummaryStats latency_;
    std::size_t disruptions_ = 0;
    std::size_t steps_true_ = 0;
    std::size_t steps_total_ = 0;
};

}  // namespace dcft
