#include "runtime/monitor.hpp"

namespace dcft {

void Monitor::on_start(const StateSpace&, StateIndex) {}
void Monitor::on_step(const StateSpace&, StateIndex, StateIndex, bool,
                      std::size_t) {}
void Monitor::on_finish(const StateSpace&, StateIndex, std::size_t) {}

SafetyMonitor::SafetyMonitor(SafetySpec spec) : spec_(std::move(spec)) {}

void SafetyMonitor::on_start(const StateSpace& space, StateIndex initial) {
    if (!spec_.state_allowed(space, initial)) {
        ++bad_states_;
        if (!first_violation_) first_violation_ = 0;
    }
}

void SafetyMonitor::on_step(const StateSpace& space, StateIndex from,
                            StateIndex to, bool fault, std::size_t step) {
    const bool bad_transition = !spec_.transition_allowed(space, from, to);
    const bool bad_state = !spec_.state_allowed(space, to);
    if (bad_state) ++bad_states_;
    if (bad_transition || bad_state) {
        if (fault)
            ++fault_violations_;
        else
            ++program_violations_;
        if (!first_violation_) {
            // `step` is the 0-based index of this step; the violation
            // happened after step + 1 executed steps.
            first_violation_ = step + 1;
            faults_before_violation_ = faults_seen_;
        }
    }
    if (fault) ++faults_seen_;
}

std::size_t SafetyMonitor::faults_absorbed() const {
    return first_violation_ ? faults_before_violation_ : faults_seen_;
}

DetectorMonitor::DetectorMonitor(Predicate witness, Predicate detection)
    : z_(std::move(witness)), x_(std::move(detection)) {}

void DetectorMonitor::on_start(const StateSpace& space, StateIndex initial) {
    observe(space, initial, 0, /*entering=*/true);
}

void DetectorMonitor::on_step(const StateSpace& space, StateIndex from,
                              StateIndex to, bool, std::size_t step) {
    (void)from;
    observe(space, to, step, /*entering=*/false);
}

void DetectorMonitor::observe(const StateSpace& space, StateIndex s,
                              std::size_t step, bool entering) {
    const bool z = z_.eval(space, s);
    const bool x = x_.eval(space, s);

    if (z && !x) ++safeness_violations_;
    if (!entering && z_prev_ && !z && x) ++stability_violations_;

    if (x) {
        if (!x_since_) x_since_ = step;
        if (z && x_since_) {
            latency_.add(static_cast<double>(step - *x_since_));
            // Witnessed; a later !X resets the episode.
            x_since_.reset();
        }
    } else {
        if (x_since_) x_since_.reset();
    }
    z_prev_ = z;
}

CorrectorMonitor::CorrectorMonitor(Predicate correction)
    : x_(std::move(correction)) {}

void CorrectorMonitor::on_start(const StateSpace& space, StateIndex initial) {
    ++steps_total_;
    if (x_.eval(space, initial)) {
        ++steps_true_;
    } else {
        broken_since_ = 0;
        ++disruptions_;
    }
}

void CorrectorMonitor::on_step(const StateSpace& space, StateIndex,
                               StateIndex to, bool, std::size_t step) {
    ++steps_total_;
    const bool x = x_.eval(space, to);
    if (x) {
        ++steps_true_;
        if (broken_since_) {
            latency_.add(static_cast<double>(step - *broken_since_));
            broken_since_.reset();
        }
    } else if (!broken_since_) {
        broken_since_ = step;
        ++disruptions_;
    }
}

void CorrectorMonitor::on_finish(const StateSpace&, StateIndex, std::size_t) {}

double CorrectorMonitor::availability() const {
    if (steps_total_ == 0) return 1.0;
    return static_cast<double>(steps_true_) /
           static_cast<double>(steps_total_);
}

}  // namespace dcft
