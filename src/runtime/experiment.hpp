// Batch experiment runner: many seeded simulation runs, aggregated.
//
// The benchmark harness and downstream users all need the same loop —
// N runs with distinct seeds, per-run monitors, aggregate statistics.
// Experiment packages it once, with optional multi-threading (each thread
// gets its own Simulator/monitors; programs and predicates are immutable
// and safely shared).
#pragma once

#include <functional>
#include <optional>

#include "runtime/simulator.hpp"

namespace dcft {

/// Aggregated outcome of a batch of runs.
struct BatchResult {
    std::size_t runs = 0;
    std::size_t deadlocked = 0;
    std::size_t stopped_early = 0;  ///< stop_when fired
    SummaryStats steps;             ///< total steps per run
    SummaryStats fault_steps;       ///< fault steps per run

    // Aggregates from per-run monitors (present when the experiment
    // configured the corresponding monitor):
    std::size_t safety_violations = 0;     ///< program-step violations
    SummaryStats detection_latency;        ///< pooled across runs
    SummaryStats correction_latency;       ///< pooled across runs
    SummaryStats availability;             ///< one sample per run
};

/// Configuration for a batch of simulation runs.
struct Experiment {
    const Program* program = nullptr;  ///< required
    StateIndex initial = 0;
    RunOptions options;
    std::uint64_t base_seed = 1;
    std::size_t runs = 100;
    unsigned threads = 1;  ///< 0 = hardware concurrency

    /// Optional fault model (copied per thread).
    const FaultClass* faults = nullptr;
    double fault_probability = 0.0;
    std::size_t max_faults = 0;

    /// Optional monitored conditions.
    std::optional<SafetySpec> safety;
    std::optional<std::pair<Predicate, Predicate>> detector;  ///< (Z, X)
    std::optional<Predicate> corrector;                       ///< X

    /// Scheduler factory (defaults to RandomScheduler). Called once per
    /// thread.
    std::function<std::unique_ptr<Scheduler>()> make_scheduler;
};

/// Runs the experiment and aggregates the results.
BatchResult run_experiment(const Experiment& experiment);

}  // namespace dcft
