// Batch experiment runner: many seeded simulation runs, aggregated.
//
// The benchmark harness and downstream users all need the same loop —
// N runs with distinct seeds, per-run monitors, aggregate statistics.
// Experiment packages it once, with optional multi-threading (each thread
// gets its own Simulator/monitors; programs and predicates are immutable
// and safely shared).
#pragma once

#include <functional>
#include <optional>

#include "runtime/simulator.hpp"

namespace dcft {

/// Aggregated outcome of a batch of runs.
struct BatchResult {
    std::size_t runs = 0;
    std::size_t deadlocked = 0;
    std::size_t stopped_early = 0;  ///< stop_when fired
    SummaryStats steps;             ///< total steps per run
    SummaryStats fault_steps;       ///< fault steps per run

    // Aggregates from per-run monitors (present when the experiment
    // configured the corresponding monitor):
    std::size_t safety_violations = 0;     ///< program-step violations
    SummaryStats detection_latency;        ///< pooled across runs
    SummaryStats correction_latency;       ///< pooled across runs
    SummaryStats availability;             ///< one sample per run

    // Graded-tolerance aggregates (require the safety monitor):
    std::size_t violated_runs = 0;  ///< runs where safety broke at least once
    /// Steps until safety first broke; one sample per violated run.
    SummaryStats time_to_violation;
    /// Fault steps absorbed without breaking safety (all injected faults on
    /// clean runs, faults before the first violation otherwise); one sample
    /// per run.
    SummaryStats faults_absorbed;
};

/// Configuration for a batch of simulation runs.
struct Experiment {
    const Program* program = nullptr;  ///< required
    StateIndex initial = 0;
    RunOptions options;
    std::uint64_t base_seed = 1;
    std::size_t runs = 100;
    unsigned threads = 1;  ///< 0 = hardware concurrency

    /// Optional fault model (copied per thread).
    const FaultClass* faults = nullptr;
    double fault_probability = 0.0;
    std::size_t max_faults = 0;

    /// Optional monitored conditions.
    std::optional<SafetySpec> safety;
    std::optional<std::pair<Predicate, Predicate>> detector;  ///< (Z, X)
    std::optional<Predicate> corrector;                       ///< X

    /// Scheduler factory (defaults to RandomScheduler). Called once per
    /// thread.
    std::function<std::unique_ptr<Scheduler>()> make_scheduler;
};

/// Runs the experiment and aggregates the results. Bit-identical for every
/// `threads` value: run i is always seeded base_seed + i, and per-slice
/// accumulators are merged in slice-index order after all workers join, so
/// pooled samples appear in run order regardless of completion order.
BatchResult run_experiment(const Experiment& experiment);

}  // namespace dcft
