// Shared parsing of DCFT_* environment variables.
//
// Every boolean toggle the library reads from the environment
// (DCFT_TELEMETRY, DCFT_NO_COMPILE, DCFT_NO_EXPLORE_CACHE, ...) goes
// through env_flag_enabled so they all agree on what "off" means. The
// historical per-site parsers disagreed: one treated "00" as enabled,
// another treated "false" as enabled — a user exporting
// DCFT_NO_COMPILE=false got the compile path *disabled*. The shared rule:
//
//   unset, "", "0", "00", "false", "off", "no"  (case-insensitive, any
//   number of leading zeros)                    -> disabled
//   anything else ("1", "true", "yes", "on", "2", "x", ...) -> enabled
//
// Numeric knobs (DCFT_VERIFIER_THREADS, DCFT_EXPLORE_CACHE_CAP) go through
// env_positive_u64: a strictly positive decimal integer, anything else
// (unset, empty, junk, zero, negative) yields the caller's fallback.
#pragma once

#include <cstdint>
#include <optional>

namespace dcft {

/// True iff the environment variable `name` is set to a truthy value (see
/// file comment for the exact falsy set). Re-reads the environment on
/// every call; callers that need a cached answer cache it themselves.
bool env_flag_enabled(const char* name);

/// The truthiness rule applied to an already-fetched value (nullptr means
/// unset). Exposed separately so tests can table-drive it without mutating
/// the process environment.
bool env_value_truthy(const char* value);

/// Three-way read of a boolean toggle: nullopt when `name` is unset,
/// otherwise the truthiness rule applied to its value. Lets callers tell
/// "the user never said" apart from "the user explicitly said off" — dcft
/// rejects --trace/--report when DCFT_TELEMETRY is explicitly falsy
/// instead of silently overriding the environment.
std::optional<bool> env_flag_state(const char* name);

/// Parses `name` as a strictly positive decimal integer; returns nullopt
/// when unset, empty, malformed, zero, or negative.
std::optional<std::uint64_t> env_positive_u64(const char* name);

}  // namespace dcft
