#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/env.hpp"
#include "obs/telemetry.hpp"

namespace dcft {
namespace {

/// Minimum work per chunk; ranges smaller than this run inline so the
/// frequent tiny BFS levels never pay a thread spawn.
constexpr std::uint64_t kMinGrain = 4096;

unsigned env_threads() {
    if (const auto v = env_positive_u64("DCFT_VERIFIER_THREADS"))
        return static_cast<unsigned>(*v);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

}  // namespace

unsigned default_verifier_threads() {
    // Re-read the environment on every call (the lookup is trivially cheap
    // next to any bulk pass) so harnesses can sweep thread counts by
    // adjusting DCFT_VERIFIER_THREADS between measurements — bench_verifier
    // does exactly that for its BENCH_verifier.json series.
    const unsigned t = env_threads();
    // Audit trail: record the first resolution once per process (gauge
    // `config/verifier_threads`), plus the sweep's high-water mark, so run
    // reports show which thread counts a measurement actually used.
    static std::once_flag logged;
    std::call_once(logged, [t] {
        auto& reg = obs::Registry::global();
        reg.counter("config/verifier_threads").set(t);
        const unsigned hw = std::thread::hardware_concurrency();
        reg.counter("config/hardware_concurrency").set(hw == 0 ? 1 : hw);
    });
    obs::count_max("config/verifier_threads_peak", t);
    return t;
}

unsigned resolve_verifier_threads(unsigned requested) {
    return requested == 0 ? default_verifier_threads()
                          : std::max(requested, 1u);
}

unsigned parallel_chunk_count(std::uint64_t total, unsigned n_threads,
                              std::uint64_t align) {
    DCFT_EXPECTS(align > 0, "parallel_chunks: align must be positive");
    n_threads = std::max(n_threads, 1u);
    if (total == 0) return 1;
    const std::uint64_t by_grain = (total + kMinGrain - 1) / kMinGrain;
    const std::uint64_t chunks =
        std::min<std::uint64_t>(n_threads, std::max<std::uint64_t>(by_grain, 1));
    return static_cast<unsigned>(std::max<std::uint64_t>(chunks, 1));
}

void parallel_chunks(
    std::uint64_t total, unsigned n_threads, std::uint64_t align,
    const std::function<void(unsigned, std::uint64_t, std::uint64_t)>& fn) {
    const unsigned chunks = parallel_chunk_count(total, n_threads, align);
    if (chunks <= 1) {
        fn(0, 0, total);
        return;
    }
    // Chunk length: even split, rounded up to a multiple of `align` so two
    // chunks never share a word when writing into bit vectors.
    std::uint64_t len = (total + chunks - 1) / chunks;
    len = ((len + align - 1) / align) * align;

    std::vector<std::exception_ptr> errors(chunks);
    std::vector<std::thread> workers;
    workers.reserve(chunks);
    for (unsigned c = 0; c < chunks; ++c) {
        const std::uint64_t begin = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(c) * len, total);
        const std::uint64_t end =
            std::min<std::uint64_t>(begin + len, total);
        workers.emplace_back([&, c, begin, end] {
            try {
                fn(c, begin, end);
            } catch (...) {
                errors[c] = std::current_exception();
            }
        });
    }
    for (auto& t : workers) t.join();
    for (const auto& err : errors)
        if (err) std::rethrow_exception(err);
}

}  // namespace dcft
