// Deterministic fork-join helpers for the verifier's data plane.
//
// The parallel checkers never race on shared state: every parallel pass
// splits an index range [0, total) into contiguous chunks, lets each worker
// fill a private buffer for its chunk, and then merges the buffers *in
// chunk order* on the calling thread. Results are therefore bit-for-bit
// identical for every thread count (including 1), which is the determinism
// contract the verifier advertises (see DESIGN.md, "Performance
// architecture").
#pragma once

#include <cstdint>
#include <functional>

namespace dcft {

/// Number of worker threads the verifier uses when a caller passes
/// n_threads == 0: the DCFT_VERIFIER_THREADS environment variable if set
/// and positive, otherwise std::thread::hardware_concurrency() (min 1).
/// The environment is re-read on every call, so a harness may change the
/// variable between measurements (thread sweeps in bench_verifier).
unsigned default_verifier_threads();

/// Resolves a requested thread count: 0 -> default_verifier_threads(),
/// anything else is returned as-is (min 1).
unsigned resolve_verifier_threads(unsigned requested);

/// Splits [0, total) into up to `n_threads` contiguous chunks, each a
/// multiple of `align` long (except possibly the last), and invokes
/// fn(chunk_index, begin, end) for each — concurrently when more than one
/// chunk is used, inline on the calling thread otherwise. Small ranges run
/// as a single inline chunk so tiny BFS levels never pay thread spawn.
///
/// fn must confine its writes to chunk-private storage indexed by
/// chunk_index; the caller merges after this returns. Exceptions thrown by
/// fn are rethrown on the calling thread (first chunk's first).
void parallel_chunks(
    std::uint64_t total, unsigned n_threads, std::uint64_t align,
    const std::function<void(unsigned chunk, std::uint64_t begin,
                             std::uint64_t end)>& fn);

/// Number of chunks parallel_chunks() will use for the given arguments —
/// callers size their per-chunk buffer arrays with this.
unsigned parallel_chunk_count(std::uint64_t total, unsigned n_threads,
                              std::uint64_t align);

}  // namespace dcft
