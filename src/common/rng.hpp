// Deterministic pseudo-random number generation for simulation and tests.
//
// A small, fast, splittable generator (SplitMix64 seeding a xoshiro256**
// core) so that every experiment in the benchmark harness is reproducible
// from a printed seed.
#pragma once

#include <array>
#include <cstdint>

namespace dcft {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions, but the helpers below are preferred inside
/// the library to keep streams identical across standard libraries.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type operator()();

    /// Uniform integer in [0, bound). Precondition: bound > 0.
    std::uint64_t below(std::uint64_t bound);

    /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
    std::int64_t between(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [0, 1).
    double uniform01();

    /// Bernoulli trial with success probability p (clamped to [0,1]).
    bool chance(double p);

    /// A statistically independent child generator (for parallel streams).
    Rng split();

private:
    std::array<std::uint64_t, 4> s_;
};

}  // namespace dcft
