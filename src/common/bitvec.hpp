// Word-packed bit vectors — the shared dense-set substrate of the verifier.
//
// BitVec is the raw 64-bit-word representation used by StateSet (sets of
// states) and by set-backed Predicates (gc/predicate.hpp). It provides the
// word-level set algebra the bulk-evaluation paths compose with: once a
// predicate has been evaluated into a BitVec, conjunction, disjunction,
// complement, difference and containment are O(|space|/64) word operations
// instead of per-state std::function calls.
//
// Invariant: bits beyond size_bits() in the last word (the "padding bits")
// are always zero. Every mutating operation restores this invariant, so
// popcount(), none(), operator== and friends never see stray bits.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace dcft {

class BitVec {
public:
    using Word = std::uint64_t;
    static constexpr std::uint64_t kWordBits = 64;

    BitVec() = default;
    explicit BitVec(std::uint64_t size_bits)
        : size_bits_(size_bits),
          words_((size_bits + kWordBits - 1) / kWordBits, 0) {}

    std::uint64_t size_bits() const { return size_bits_; }
    std::size_t num_words() const { return words_.size(); }

    Word* data() { return words_.data(); }
    const Word* data() const { return words_.data(); }
    Word word(std::size_t w) const { return words_[w]; }

    bool test(std::uint64_t i) const {
        DCFT_EXPECTS(i < size_bits_, "BitVec: index out of range");
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    void set(std::uint64_t i) {
        DCFT_EXPECTS(i < size_bits_, "BitVec: index out of range");
        words_[i >> 6] |= Word{1} << (i & 63);
    }

    void reset(std::uint64_t i) {
        DCFT_EXPECTS(i < size_bits_, "BitVec: index out of range");
        words_[i >> 6] &= ~(Word{1} << (i & 63));
    }

    /// Sets bit i; returns true iff it was previously clear.
    bool test_and_set(std::uint64_t i) {
        DCFT_EXPECTS(i < size_bits_, "BitVec: index out of range");
        const Word mask = Word{1} << (i & 63);
        Word& w = words_[i >> 6];
        if (w & mask) return false;
        w |= mask;
        return true;
    }

    /// Number of set bits (padding bits are provably zero).
    std::uint64_t popcount() const {
        std::uint64_t n = 0;
        for (const Word w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
        return n;
    }

    bool none() const {
        for (const Word w : words_)
            if (w != 0) return false;
        return true;
    }
    bool any() const { return !none(); }

    void clear_all() {
        for (Word& w : words_) w = 0;
    }

    void set_all() {
        for (Word& w : words_) w = ~Word{0};
        mask_padding();
    }

    BitVec& operator&=(const BitVec& o) {
        check_same(o);
        for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
        return *this;
    }

    BitVec& operator|=(const BitVec& o) {
        check_same(o);
        for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
        return *this;
    }

    BitVec& operator^=(const BitVec& o) {
        check_same(o);
        for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= o.words_[w];
        return *this;
    }

    /// this &= ~o (set difference).
    BitVec& subtract(const BitVec& o) {
        check_same(o);
        for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~o.words_[w];
        return *this;
    }

    /// Complement within the universe; padding bits stay zero.
    void complement() {
        for (Word& w : words_) w = ~w;
        mask_padding();
    }

    BitVec complemented() const {
        BitVec out = *this;
        out.complement();
        return out;
    }

    bool intersects(const BitVec& o) const {
        check_same(o);
        for (std::size_t w = 0; w < words_.size(); ++w)
            if (words_[w] & o.words_[w]) return true;
        return false;
    }

    /// True iff every set bit of *this is also set in o.
    bool is_subset_of(const BitVec& o) const {
        check_same(o);
        for (std::size_t w = 0; w < words_.size(); ++w)
            if (words_[w] & ~o.words_[w]) return false;
        return true;
    }

    friend bool operator==(const BitVec& a, const BitVec& b) {
        return a.size_bits_ == b.size_bits_ && a.words_ == b.words_;
    }

    /// Calls fn(i) for every set bit, in increasing order.
    template <typename Fn>
    void for_each_set(Fn&& fn) const {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            Word word = words_[w];
            while (word != 0) {
                const int bit = std::countr_zero(word);
                fn(static_cast<std::uint64_t>(w) * kWordBits +
                   static_cast<std::uint64_t>(bit));
                word &= word - 1;
            }
        }
    }

private:
    void check_same(const BitVec& o) const {
        DCFT_EXPECTS(size_bits_ == o.size_bits_,
                     "BitVec: universe size mismatch");
    }

    /// Zeroes the bits of the last word beyond size_bits_.
    void mask_padding() {
        const std::uint64_t tail = size_bits_ & 63;
        if (tail != 0 && !words_.empty())
            words_.back() &= (Word{1} << tail) - 1;
    }

    std::uint64_t size_bits_ = 0;
    std::vector<Word> words_;
};

}  // namespace dcft
