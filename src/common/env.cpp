#include "common/env.hpp"

#include <cctype>
#include <cstdlib>
#include <string_view>

namespace dcft {

namespace {

/// Case-insensitive comparison against an all-lowercase literal.
bool iequals(std::string_view value, std::string_view lower_literal) {
    if (value.size() != lower_literal.size()) return false;
    for (std::size_t i = 0; i < value.size(); ++i) {
        const char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(value[i])));
        if (c != lower_literal[i]) return false;
    }
    return true;
}

}  // namespace

bool env_value_truthy(const char* value) {
    if (value == nullptr) return false;
    const std::string_view v(value);
    if (v.empty()) return false;
    if (iequals(v, "false") || iequals(v, "off") || iequals(v, "no"))
        return false;
    // "0", "00", "000", ... are all falsy; "0x", "01" are truthy (we only
    // fold strings that are *entirely* zeros).
    bool all_zero = true;
    for (const char c : v)
        if (c != '0') {
            all_zero = false;
            break;
        }
    return !all_zero;
}

bool env_flag_enabled(const char* name) {
    return env_value_truthy(std::getenv(name));
}

std::optional<bool> env_flag_state(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr) return std::nullopt;
    return env_value_truthy(v);
}

std::optional<std::uint64_t> env_positive_u64(const char* name) {
    const char* v = std::getenv(name);
    if (v == nullptr || v[0] == '\0') return std::nullopt;
    char* end = nullptr;
    const long long n = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || n <= 0) return std::nullopt;
    return static_cast<std::uint64_t>(n);
}

}  // namespace dcft
