#include "common/rng.hpp"

#include "common/check.hpp"

namespace dcft {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
    // A xoshiro state of all zeros is a fixed point; SplitMix64 cannot
    // produce four zero outputs from any seed, but keep the guard explicit.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
    DCFT_EXPECTS(bound > 0, "Rng::below requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold) return r % bound;
    }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
    DCFT_EXPECTS(lo <= hi, "Rng::between requires lo <= hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
    // 53 random bits into the mantissa.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
}

Rng Rng::split() { return Rng((*this)() ^ 0xA5A5A5A55A5A5A5AULL); }

}  // namespace dcft
