// Lightweight contract checking for the dcft library.
//
// All public API entry points validate their preconditions with
// DCFT_EXPECTS; internal consistency conditions use DCFT_ASSERT. Violations
// throw dcft::ContractError so that misuse is caught early (P.6/P.7 of the
// C++ Core Guidelines) and is testable.
#pragma once

#include <stdexcept>
#include <string>

namespace dcft {

/// Thrown when a precondition or internal invariant of the library is
/// violated. Carries the failing expression and a human-readable message.
class ContractError : public std::logic_error {
public:
    explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
    throw ContractError(std::string(kind) + " failed: (" + expr + ") at " +
                        file + ":" + std::to_string(line) +
                        (msg.empty() ? "" : ": " + msg));
}

}  // namespace dcft

#define DCFT_EXPECTS(cond, msg)                                               \
    do {                                                                      \
        if (!(cond))                                                          \
            ::dcft::contract_failure("precondition", #cond, __FILE__,         \
                                     __LINE__, (msg));                        \
    } while (0)

#define DCFT_ASSERT(cond, msg)                                                \
    do {                                                                      \
        if (!(cond))                                                          \
            ::dcft::contract_failure("invariant", #cond, __FILE__, __LINE__,  \
                                     (msg));                                  \
    } while (0)
