#include "synth/add_nonmasking.hpp"

#include <deque>
#include <unordered_map>

#include "common/check.hpp"
#include "gc/composition.hpp"
#include "gc/compiled.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "verify/action_kernel.hpp"
#include "verify/fault_span.hpp"

namespace dcft {
namespace {

constexpr std::size_t kMaxReportedUnrecoverable = 16;

/// Enumerates the candidate-recovery neighbours of `u` in the *reverse*
/// direction: states s (differing from u in exactly one writable variable)
/// such that the recovery transition s -> u is admissible. When a
/// CompiledSpace is supplied the digit extraction and substitution run on
/// the divmod-free fast path (set_digit is a single stride-delta add); the
/// enumeration order is identical either way.
template <typename Fn>
void for_each_recovery_pred(const StateSpace& space, const CompiledSpace* cs,
                            const std::vector<VarId>& writable,
                            const SafetySpec* safety, StateIndex u, Fn&& fn) {
    for (VarId v : writable) {
        const Value current = cs != nullptr ? cs->get(u, v) : space.get(u, v);
        const Value domain = space.variable(v).domain_size;
        for (Value c = 0; c < domain; ++c) {
            if (c == current) continue;
            const StateIndex s = cs != nullptr ? cs->set_digit(u, v, current, c)
                                               : space.set(u, v, c);
            if (safety != nullptr &&
                (!safety->transition_allowed(space, s, u) ||
                 !safety->state_allowed(space, u)))
                continue;
            fn(s);
        }
    }
}

}  // namespace

NonmaskingSynthesis add_nonmasking(const Program& p, const FaultClass& f,
                                   const Predicate& invariant,
                                   const NonmaskingOptions& opts) {
    const obs::ScopedSpan synth_span("synth/fixpoint");
    static const std::uint32_t trace_id = obs::trace_name("synth/fixpoint");
    const obs::TraceSpan tspan(trace_id);
    if (obs::progress_enabled()) obs::progress_phase("synth/fixpoint");
    obs::count("synth/fixpoint/syntheses");
    const StateSpace& space = p.space();
    const FaultSpan span =
        compute_fault_span(p, f, opts.span_from.value_or(invariant));

    std::vector<VarId> writable;
    if (opts.writable.empty()) {
        writable = p.vars().members();
    } else {
        for (const auto& name : opts.writable) writable.push_back(space.find(name));
    }

    // Compile the space once per synthesis (interpreted under
    // DCFT_NO_COMPILE); the ranking fixpoint below does one get/set_digit
    // pair per (state, writable var, value) triple.
    std::shared_ptr<const CompiledSpace> cspace;
    if (!compile_disabled()) cspace = compile_space(p.space_ptr());
    const CompiledSpace* cs = cspace.get();

    // Multi-source backward BFS from the invariant along admissible
    // recovery transitions, restricted to the fault span. next_hop[s] is
    // the chosen recovery successor of s (one rank closer to S). The seed
    // membership test is bulk-evaluated once instead of calling the
    // invariant's eval per span state.
    auto next_hop = std::make_shared<std::unordered_map<StateIndex, StateIndex>>();
    StateSet ranked(space.num_states());
    std::deque<StateIndex> frontier;
    const BitVec inv_bits = eval_bits(space, invariant);
    span.states->for_each([&](StateIndex s) {
        if (inv_bits.test(s)) {
            ranked.insert(s);
            frontier.push_back(s);
        }
    });
    while (!frontier.empty()) {
        const StateIndex u = frontier.front();
        frontier.pop_front();
        for_each_recovery_pred(space, cs, writable, opts.safety, u,
                               [&](StateIndex s) {
                                   if (!span.states->contains(s)) return;
                                   if (ranked.contains(s)) return;
                                   ranked.insert(s);
                                   next_hop->emplace(s, u);
                                   frontier.push_back(s);
                               });
    }

    NonmaskingSynthesis result{
        Program(p.space_ptr(), p.vars(), ""),
        Program(p.space_ptr(), p.vars(), "corrector(" + p.name() + ")"),
        span.predicate,
        true,
        {}};

    std::uint64_t unrecoverable_total = 0;
    span.states->for_each([&](StateIndex s) {
        if (ranked.contains(s)) return;
        result.complete = false;
        ++unrecoverable_total;
        if (result.unrecoverable.size() < kMaxReportedUnrecoverable)
            result.unrecoverable.push_back(s);
    });
    obs::count("synth/fixpoint/ranked_states", ranked.count());
    obs::count("synth/fixpoint/unrecoverable_states", unrecoverable_total);

    // The corrector: guard = span /\ !S /\ has-a-hop; statement follows one
    // hop (single_step) or the whole path to S (atomic reset).
    const bool single_step = opts.single_step;
    Predicate guard(
        "span&&!(" + invariant.name() + ")",
        [span_states = span.states, invariant, next_hop](
            const StateSpace& sp, StateIndex s) {
            return span_states->contains(s) && !invariant.eval(sp, s) &&
                   next_hop->count(s) != 0;
        });
    Action correct(
        "CR:" + p.name(), std::move(guard),
        [next_hop, invariant, single_step](const StateSpace& sp,
                                           StateIndex s) -> StateIndex {
            StateIndex cur = s;
            for (;;) {
                auto it = next_hop->find(cur);
                DCFT_ASSERT(it != next_hop->end(),
                            "corrector fired without a recovery hop");
                cur = it->second;
                if (single_step || invariant.eval(sp, cur)) return cur;
            }
        });
    result.corrector.add_action(correct);

    Program base = opts.freeze_program_outside_invariant
                       ? restrict_program(invariant, p)
                       : p;
    result.program = parallel(base, result.corrector);
    result.program =
        result.program.renamed("nonmasking(" + p.name() + ")");
    return result;
}

}  // namespace dcft
