// Fail-safe synthesis (the paper's Question 2, per its companion method
// [Arora-Kulkarni, TSE 1998]): a fault-intolerant program is made fail-safe
// tolerant by composing each action with a detector that witnesses the
// action's detection predicate — concretely, by restricting every action
// `g --> st` to `g /\ wdp --> st`, where wdp is the action's weakest
// detection predicate for the safety specification (Theorem 3.3 guarantees
// wdp exists; restriction to it preserves every safe behaviour, so the
// result is the least-restrictive fail-safe transformation of this shape).
//
// The transformed program may deadlock in perturbed states — the paper
// notes the same for DR;IR in Section 6.1; that is what the corrector
// (add_nonmasking / add_masking) repairs.
#pragma once

#include <vector>

#include "gc/program.hpp"
#include "spec/safety_spec.hpp"

namespace dcft {

struct FailsafeSynthesis {
    /// The transformed program: every action gated by its detector.
    Program program;
    /// The detection predicate used for each action (parallel to
    /// p.actions()); these are the witnesses the added detectors watch.
    std::vector<Predicate> detection_predicates;
};

/// Gates every action of p with its weakest detection predicate for
/// `safety`. The result encapsulates p by construction.
FailsafeSynthesis add_failsafe(const Program& p, const SafetySpec& safety);

}  // namespace dcft
