#include "synth/add_masking.hpp"

#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace dcft {

MaskingSynthesis add_masking(const Program& p, const FaultClass& f,
                             const SafetySpec& safety,
                             const Predicate& invariant,
                             std::vector<std::string> writable) {
    const obs::ScopedSpan span("synth/masking");
    static const std::uint32_t trace_id = obs::trace_name("synth/masking");
    const obs::TraceSpan tspan(trace_id);
    if (obs::progress_enabled()) obs::progress_phase("synth/masking");
    obs::count("synth/masking/syntheses");
    FailsafeSynthesis fs = add_failsafe(p, safety);

    NonmaskingOptions opts;
    opts.single_step = true;
    opts.freeze_program_outside_invariant = true;
    opts.safety = &safety;
    opts.writable = std::move(writable);
    NonmaskingSynthesis nm = add_nonmasking(fs.program, f, invariant, opts);

    MaskingSynthesis out{nm.program.renamed("masking(" + p.name() + ")"),
                         std::move(nm.corrector),
                         std::move(nm.fault_span),
                         std::move(fs.detection_predicates),
                         nm.complete,
                         std::move(nm.unrecoverable)};
    return out;
}

}  // namespace dcft
