#include "synth/add_masking.hpp"

#include "obs/telemetry.hpp"

namespace dcft {

MaskingSynthesis add_masking(const Program& p, const FaultClass& f,
                             const SafetySpec& safety,
                             const Predicate& invariant,
                             std::vector<std::string> writable) {
    const obs::ScopedSpan span("synth/masking");
    obs::count("synth/masking/syntheses");
    FailsafeSynthesis fs = add_failsafe(p, safety);

    NonmaskingOptions opts;
    opts.single_step = true;
    opts.freeze_program_outside_invariant = true;
    opts.safety = &safety;
    opts.writable = std::move(writable);
    NonmaskingSynthesis nm = add_nonmasking(fs.program, f, invariant, opts);

    MaskingSynthesis out{nm.program.renamed("masking(" + p.name() + ")"),
                         std::move(nm.corrector),
                         std::move(nm.fault_span),
                         std::move(fs.detection_predicates),
                         nm.complete,
                         std::move(nm.unrecoverable)};
    return out;
}

}  // namespace dcft
