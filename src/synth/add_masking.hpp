// Masking synthesis: fail-safe + nonmasking composed (the paper's Section
// 5, mirroring Theorem 5.2's decomposition: a program that satisfies the
// safety specification from the fault span *and* converges back to its
// invariant is masking tolerant).
//
// Construction:
//   1. add_failsafe gates every action of p with its weakest detection
//      predicate, so no program step violates safety anywhere in the span;
//   2. the gated program is additionally frozen outside the invariant, so
//      recovery is interference-free;
//   3. add_nonmasking synthesizes a corrector whose recovery transitions
//      are themselves restricted to safety-allowed steps.
//
// If some span state admits no safe recovery path, masking tolerance of
// this shape is unachievable and the result reports `complete == false`.
#pragma once

#include "synth/add_failsafe.hpp"
#include "synth/add_nonmasking.hpp"

namespace dcft {

struct MaskingSynthesis {
    Program program;
    Program corrector;
    Predicate fault_span;
    std::vector<Predicate> detection_predicates;
    bool complete = true;
    std::vector<StateIndex> unrecoverable;
};

/// Builds a masking F-tolerant version of p for the given safety
/// specification and invariant. `writable` restricts the corrector's
/// variables (empty = all).
MaskingSynthesis add_masking(const Program& p, const FaultClass& f,
                             const SafetySpec& safety,
                             const Predicate& invariant,
                             std::vector<std::string> writable = {});

}  // namespace dcft
