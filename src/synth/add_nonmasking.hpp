// Nonmasking synthesis: composing a corrector with a fault-intolerant
// program so that, after faults stop, every computation converges to the
// invariant (the paper's Section 4; the construction follows the companion
// method [Arora-Kulkarni, TSE 1998]).
//
// The corrector is synthesized explicitly over the canonical fault span T:
// rank every state of T by BFS distance to the invariant S along candidate
// recovery transitions (single-variable writes by default, optionally
// filtered by a safety specification so recovery itself stays safe), then
// emit one corrector action whose guard is T /\ !S and whose statement
// moves strictly down the ranking. With `single_step=false` the statement
// follows the whole recovery path atomically — a reset-procedure-style
// corrector whose convergence is interference-free by construction.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gc/program.hpp"
#include "spec/safety_spec.hpp"
#include "verify/state_set.hpp"

namespace dcft {

struct NonmaskingOptions {
    /// One recovery hop per corrector firing (true) or an atomic jump along
    /// the whole recovery path (false). Single-step correctors are the
    /// realistic shape but their convergence can be foiled by program
    /// interference — verify the result; atomic correctors always converge.
    bool single_step = true;

    /// Gate every program action by the invariant, so that outside S only
    /// the corrector moves. Used by masking synthesis to rule out
    /// interference during recovery.
    bool freeze_program_outside_invariant = false;

    /// When set, only recovery transitions allowed by this safety
    /// specification are used (and only to spec-allowed states).
    const SafetySpec* safety = nullptr;

    /// Variables the corrector may write; empty = all variables of p.
    std::vector<std::string> writable;

    /// Where the fault span is computed from. Defaults to the correction
    /// target itself (invariant-restoration synthesis). Set it to the
    /// system's initial/good region when the correction target is a *goal*
    /// predicate the system establishes rather than starts in — e.g. the
    /// paper's TMR corrector corrects 'out = uncorrupted value' starting
    /// from states where out is still unassigned (Section 6.1).
    std::optional<Predicate> span_from;
};

struct NonmaskingSynthesis {
    /// The composed program (possibly gated p) || corrector.
    Program program;
    /// The corrector alone, for component-level verification.
    Program corrector;
    /// The canonical fault span the corrector was built over.
    Predicate fault_span;
    /// False if some span state has no recovery path under the options;
    /// such states are listed (up to a small cap) in `unrecoverable`.
    bool complete = true;
    std::vector<StateIndex> unrecoverable;
};

/// Builds (p || corrector) such that computations of the composition in the
/// presence of f converge to `invariant` once faults stop.
NonmaskingSynthesis add_nonmasking(const Program& p, const FaultClass& f,
                                   const Predicate& invariant,
                                   const NonmaskingOptions& opts = {});

}  // namespace dcft
