#include "synth/add_failsafe.hpp"

#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "verify/detection_predicate.hpp"

namespace dcft {

FailsafeSynthesis add_failsafe(const Program& p, const SafetySpec& safety) {
    const obs::ScopedSpan span("synth/failsafe");
    static const std::uint32_t trace_id = obs::trace_name("synth/failsafe");
    const obs::TraceSpan tspan(trace_id);
    if (obs::progress_enabled()) obs::progress_phase("synth/failsafe");
    obs::count("synth/failsafe/syntheses");
    obs::count("synth/failsafe/detection_predicates", p.num_actions());
    Program out(p.space_ptr(), p.vars(), "failsafe(" + p.name() + ")");
    std::vector<Predicate> predicates;
    predicates.reserve(p.num_actions());
    for (const auto& ac : p.actions()) {
        Predicate wdp = weakest_detection_predicate(p.space(), ac, safety);
        out.add_action(ac.restricted(wdp));
        predicates.push_back(std::move(wdp));
    }
    return FailsafeSynthesis{std::move(out), std::move(predicates)};
}

}  // namespace dcft
