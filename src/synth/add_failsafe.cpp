#include "synth/add_failsafe.hpp"

#include "verify/detection_predicate.hpp"

namespace dcft {

FailsafeSynthesis add_failsafe(const Program& p, const SafetySpec& safety) {
    Program out(p.space_ptr(), p.vars(), "failsafe(" + p.name() + ")");
    std::vector<Predicate> predicates;
    predicates.reserve(p.num_actions());
    for (const auto& ac : p.actions()) {
        Predicate wdp = weakest_detection_predicate(p.space(), ac, safety);
        out.add_action(ac.restricted(wdp));
        predicates.push_back(std::move(wdp));
    }
    return FailsafeSynthesis{std::move(out), std::move(predicates)};
}

}  // namespace dcft
