#include "components/corrector.hpp"

#include "common/check.hpp"
#include "verify/component_checker.hpp"

namespace dcft {

CheckResult Corrector::verify() const { return check_corrector(program, claim); }

CheckResult Corrector::verify_within(const Program& composition) const {
    return check_corrector(composition, claim);
}

Corrector make_reset(std::shared_ptr<const StateSpace> space,
                     Predicate correction,
                     std::vector<std::pair<std::string, Value>> reset_values,
                     std::string name) {
    DCFT_EXPECTS(!reset_values.empty(), "reset needs target values");
    std::vector<std::pair<VarId, Value>> assignments;
    VarSet written(space->num_vars());
    for (const auto& [var, value] : reset_values) {
        const VarId id = space->find(var);
        DCFT_EXPECTS(value >= 0 && value < space->variable(id).domain_size,
                     "reset value out of domain for " + var);
        assignments.emplace_back(id, value);
        written.add(id);
    }
    Program p(space, written, name);
    p.add_action(Action(
        name + ":reset", !correction,
        [assignments](const StateSpace& sp, StateIndex s) {
            StateIndex t = s;
            for (const auto& [id, value] : assignments)
                t = sp.set(t, id, value);
            return t;
        }));
    return Corrector{std::move(p),
                     CorrectorClaim{correction, correction,
                                    Predicate::top()}};
}

Corrector make_constraint_satisfier(
    std::shared_ptr<const StateSpace> space, Predicate correction,
    std::function<StateIndex(const StateSpace&, StateIndex)> repair,
    std::string name) {
    DCFT_EXPECTS(repair != nullptr, "satisfier needs a repair statement");
    Program p(space, name);
    p.add_action(Action(name + ":repair", !correction, std::move(repair)));
    return Corrector{std::move(p),
                     CorrectorClaim{correction, correction,
                                    Predicate::top()}};
}

Corrector add_witness(Corrector base,
                      std::shared_ptr<const StateSpace> space,
                      std::string_view witness_var) {
    DCFT_EXPECTS(space->variable(space->find(witness_var)).domain_size == 2,
                 "witness variable must be boolean (domain 2)");
    const Predicate z = Predicate::var_eq(*space, witness_var, 1)
                            .renamed("Z(" + std::string(witness_var) + ")");
    const Predicate x = base.claim.correction;
    base.program.add_action(Action::assign_const(
        *space, base.program.name() + ":witness", x && !z, witness_var, 1));
    base.program.add_action(Action::assign_const(
        *space, base.program.name() + ":unwitness", !x && z, witness_var,
        0));
    base.claim.witness = z;
    // The context must rule out a lying witness.
    base.claim.context =
        implies(z, x).renamed("U(" + z.name() + "=>" + x.name() + ")");
    return base;
}

}  // namespace dcft
