#include "components/detector.hpp"

#include "common/check.hpp"
#include "verify/component_checker.hpp"

namespace dcft {

CheckResult Detector::verify() const { return check_detector(program, claim); }

CheckResult Detector::verify_within(const Program& composition) const {
    return check_detector(composition, claim);
}

namespace {

Predicate witness_of(const StateSpace& space, std::string_view var) {
    DCFT_EXPECTS(space.variable(space.find(var)).domain_size == 2,
                 "witness variable must be boolean (domain 2)");
    return Predicate::var_eq(space, var, 1).renamed("Z(" +
                                                    std::string(var) + ")");
}

}  // namespace

Detector make_watchdog(std::shared_ptr<const StateSpace> space,
                       std::string_view witness_var, Predicate detection,
                       std::string name) {
    const Predicate z = witness_of(*space, witness_var);
    Program p(space, space->varset({witness_var}), name);
    p.add_action(Action::assign_const(*space, name + ":raise",
                                      detection && !z, witness_var, 1));
    const Predicate context =
        implies(z, detection).renamed("U(" + z.name() + "=>" +
                                      detection.name() + ")");
    return Detector{std::move(p),
                    DetectorClaim{z, std::move(detection), context}};
}

Detector make_resetting_watchdog(std::shared_ptr<const StateSpace> space,
                                 std::string_view witness_var,
                                 Predicate detection, std::string name) {
    Detector d = make_watchdog(space, witness_var, detection, name);
    d.program.add_action(Action::assign_const(
        *space, name + ":lower", !d.claim.detection && d.claim.witness,
        witness_var, 0));
    return d;
}

Detector make_comparator(std::shared_ptr<const StateSpace> space,
                         std::string_view var_a, std::string_view var_b,
                         Predicate detection, Predicate context,
                         std::string name) {
    const VarId a = space->find(var_a);
    const VarId b = space->find(var_b);
    Predicate z("Z(" + std::string(var_a) + "==" + std::string(var_b) + ")",
                [a, b](const StateSpace& sp, StateIndex s) {
                    return sp.get(s, a) == sp.get(s, b);
                });
    Program p(space, space->empty_varset(), std::move(name));
    return Detector{std::move(p),
                    DetectorClaim{std::move(z), std::move(detection),
                                  std::move(context)}};
}

Detector make_threshold(std::shared_ptr<const StateSpace> space,
                        std::vector<Predicate> conditions, int threshold,
                        Predicate detection, Predicate context,
                        std::string name) {
    DCFT_EXPECTS(!conditions.empty(), "threshold needs conditions");
    DCFT_EXPECTS(threshold >= 1 &&
                     threshold <= static_cast<int>(conditions.size()),
                 "threshold out of range");
    Predicate z("Z(>=" + std::to_string(threshold) + "-of-" +
                    std::to_string(conditions.size()) + ")",
                [conditions, threshold](const StateSpace& sp, StateIndex s) {
                    int hits = 0;
                    for (const auto& c : conditions)
                        if (c.eval(sp, s)) ++hits;
                    return hits >= threshold;
                });
    Program p(space, space->empty_varset(), std::move(name));
    return Detector{std::move(p),
                    DetectorClaim{std::move(z), std::move(detection),
                                  std::move(context)}};
}

}  // namespace dcft
