// Reusable detector components (the "framework of such components" the
// paper announces in Section 7: detectors required in one program and
// across programs are often similar, so dcft ships the recurring shapes
// as builders).
//
// Every builder returns a Detector: a program fragment plus the claim
// ('Z detects X' from U) it is built to satisfy, ready to be composed with
// a base program via `gate` (the paper's ;_Z composition) and verified
// with check_detector.
#pragma once

#include <string>

#include "gc/composition.hpp"
#include "gc/program.hpp"
#include "spec/detects.hpp"
#include "verify/check_result.hpp"

namespace dcft {

/// A detector component: its actions, its claim, and how to compose it.
struct Detector {
    Program program;     ///< the detector's own actions
    DetectorClaim claim; ///< Z detects X from U

    /// The paper's detector-gating composition: this ;_Z base — the base
    /// program runs only once the witness holds.
    Program gate(const Program& base) const {
        return sequence(program, claim.witness, base);
    }

    /// Verifies the claim against this component alone.
    CheckResult verify() const;

    /// Interference freedom (Section 7): verifies the claim against a
    /// larger composition this component is part of — the other
    /// components must not invalidate it.
    CheckResult verify_within(const Program& composition) const;
};

/// A *watchdog*: raises a fresh boolean witness variable once the
/// detection predicate holds, and holds it as long as X does. The witness
/// variable `witness_var` must exist in the space (domain 2) and be
/// written by nothing else.
///
///   raise :: X /\ !z --> z := true
///
/// Claim: z detects X from (z => X).
Detector make_watchdog(std::shared_ptr<const StateSpace> space,
                       std::string_view witness_var, Predicate detection,
                       std::string name = "watchdog");

/// A *snapshot detector* with explicit reset: like the watchdog, but also
/// lowers the witness when the detection predicate has been falsified —
/// the shape needed when X is a transient condition (the paper's Remark in
/// Section 3.1 on non-closed detection predicates).
///
///   raise :: X /\ !z --> z := true
///   lower :: !X /\ z --> z := false
Detector make_resetting_watchdog(std::shared_ptr<const StateSpace> space,
                                 std::string_view witness_var,
                                 Predicate detection,
                                 std::string name = "resetting-watchdog");

/// A *comparator*: stateless detector whose witness IS the predicate
/// "replica a equals replica b" — no actions, pure gating (the DR shape of
/// Section 6.1). The claim's detection predicate is supplied by the
/// caller (e.g. "a is uncorrupted").
Detector make_comparator(std::shared_ptr<const StateSpace> space,
                         std::string_view var_a, std::string_view var_b,
                         Predicate detection, Predicate context,
                         std::string name = "comparator");

/// A *threshold detector* over a family of boolean-ish conditions: the
/// witness holds when at least `threshold` of the conditions hold (the
/// majority-voting DB shape of Section 6.2). Stateless.
Detector make_threshold(std::shared_ptr<const StateSpace> space,
                        std::vector<Predicate> conditions, int threshold,
                        Predicate detection, Predicate context,
                        std::string name = "threshold");

}  // namespace dcft
