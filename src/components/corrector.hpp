// Reusable corrector components (the framework counterpart of
// components/detector.hpp; see Section 7 of the paper).
//
// Each builder returns a Corrector: a program fragment plus the claim
// ('Z corrects X' from U) it is built to satisfy, composable with a base
// program via `attach` (plain parallel composition — correctors run
// alongside, they do not gate).
#pragma once

#include <functional>
#include <string>

#include "gc/composition.hpp"
#include "gc/program.hpp"
#include "spec/corrects.hpp"
#include "verify/check_result.hpp"

namespace dcft {

/// A corrector component.
struct Corrector {
    Program program;
    CorrectorClaim claim;

    /// Compose alongside a base program (the CR / pn1 shape).
    Program attach(const Program& base) const {
        return parallel(base, program);
    }

    /// Verifies the claim against this component alone.
    CheckResult verify() const;

    /// Interference freedom (Section 7): verifies the claim against a
    /// larger composition this component is part of.
    CheckResult verify_within(const Program& composition) const;
};

/// A *reset procedure*: whenever the correction predicate is false, one
/// atomic action rewrites the given variables to fixed reset values that
/// satisfy it. The canonical corrector (the paper lists "reset procedures"
/// first among corrector examples).
Corrector make_reset(std::shared_ptr<const StateSpace> space,
                     Predicate correction,
                     std::vector<std::pair<std::string, Value>> reset_values,
                     std::string name = "reset");

/// A *constraint satisfier*: while the correction predicate is false,
/// repeatedly applies a caller-supplied repair statement (one step at a
/// time — the rollforward-recovery shape). The caller is responsible for
/// the statement actually converging; check_corrector verifies it.
Corrector make_constraint_satisfier(
    std::shared_ptr<const StateSpace> space, Predicate correction,
    std::function<StateIndex(const StateSpace&, StateIndex)> repair,
    std::string name = "satisfy");

/// A *witnessed corrector*: wraps any corrector with a separate boolean
/// witness variable that is raised once the correction predicate holds
/// (and lowered if it is falsified again) — the general Z != X shape the
/// Remark in Section 4.1 motivates for masking designs.
Corrector add_witness(Corrector base,
                      std::shared_ptr<const StateSpace> space,
                      std::string_view witness_var);

}  // namespace dcft
