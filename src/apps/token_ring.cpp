#include "apps/token_ring.hpp"

#include "common/check.hpp"

namespace dcft::apps {
namespace {

/// Whether process i's action is enabled at s.
bool privileged(const StateSpace& sp, StateIndex s,
                const std::vector<VarId>& x, int i) {
    const int n = static_cast<int>(x.size());
    if (i == 0)
        return sp.get(s, x[0]) == sp.get(s, x[static_cast<std::size_t>(n - 1)]);
    return sp.get(s, x[static_cast<std::size_t>(i)]) !=
           sp.get(s, x[static_cast<std::size_t>(i - 1)]);
}

int count_privileges(const StateSpace& sp, StateIndex s,
                     const std::vector<VarId>& x) {
    int count = 0;
    for (int i = 0; i < static_cast<int>(x.size()); ++i)
        if (privileged(sp, s, x, i)) ++count;
    return count;
}

}  // namespace

Predicate TokenRingSystem::privilege(int i) const {
    DCFT_EXPECTS(i >= 0 && i < n, "privilege: bad process index");
    const auto xv = x;
    return Predicate("privilege." + std::to_string(i),
                     [xv, i](const StateSpace& sp, StateIndex s) {
                         return privileged(sp, s, xv, i);
                     });
}

StateIndex TokenRingSystem::initial_state() const {
    return 0;  // all counters 0: only the bottom process is privileged
}

TokenRingSystem make_token_ring(int n, Value k) {
    DCFT_EXPECTS(n >= 2, "token ring needs >= 2 processes");
    DCFT_EXPECTS(k >= 2, "token ring needs K >= 2");

    auto builder = std::make_shared<StateSpace>();
    std::vector<VarId> x;
    for (int i = 0; i < n; ++i)
        x.push_back(builder->add_variable("x." + std::to_string(i), k));
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;

    // Structured guards (vars_eq/vars_ne) and effects (assign_add_mod /
    // assign_var / corrupt_any): the verifier's action-kernel compiler
    // lowers these to word-level guard bitsets and stride arithmetic. The
    // display names and successor orders are exactly those of the previous
    // lambda formulation, so diagnostics and traces are unchanged.
    Program ring(space, "token-ring(n=" + std::to_string(n) +
                            ",K=" + std::to_string(k) + ")");
    {
        const VarId x0 = x[0], xl = x[static_cast<std::size_t>(n - 1)];
        ring.add_action(Action::assign_add_mod(
            *space, "move.0",
            Predicate::vars_eq(*space, x0, xl).renamed("x.0==x.last"), x0, x0,
            1, k));
    }
    for (int i = 1; i < n; ++i) {
        const VarId xi = x[static_cast<std::size_t>(i)];
        const VarId xp = x[static_cast<std::size_t>(i - 1)];
        ring.add_action(Action::assign_var(
            *space, "move." + std::to_string(i),
            Predicate::vars_ne(*space, xi, xp)
                .renamed("x." + std::to_string(i) + "!=pred"),
            xi, xp));
    }

    // Transient faults: any counter is corrupted to any value.
    FaultClass fault(space, "corrupt-counter");
    fault.add_action(
        Action::corrupt_any(*space, "corrupt", Predicate::top(), x));

    Predicate legitimate("one-privilege",
                         [x](const StateSpace& sp, StateIndex s) {
                             return count_privileges(sp, s, x) == 1;
                         });

    SafetySpec safety = SafetySpec::never(
        Predicate("not-one-privilege",
                  [x](const StateSpace& sp, StateIndex s) {
                      return count_privileges(sp, s, x) != 1;
                  }));
    LivenessSpec live;
    for (int i = 0; i < n; ++i) {
        const auto xv = x;
        live.add(LeadsTo{Predicate::top(),
                         Predicate("privilege." + std::to_string(i),
                                   [xv, i](const StateSpace& sp,
                                           StateIndex s) {
                                       return privileged(sp, s, xv, i);
                                   })});
    }
    ProblemSpec spec("SPEC_token(mutual-exclusion)", std::move(safety),
                     std::move(live));

    return TokenRingSystem{space,
                           n,
                           k,
                           std::move(ring),
                           std::move(fault),
                           std::move(spec),
                           std::move(legitimate),
                           std::move(x)};
}

}  // namespace dcft::apps
