#include "apps/distributed_reset.hpp"

#include "common/check.hpp"

namespace dcft::apps {

StateIndex DistributedResetSystem::initial_state() const {
    StateIndex s = 0;
    s = space->set(s, wc_var, 1);
    return s;  // sessions 0, req 0
}

DistributedResetSystem make_distributed_reset(std::vector<int> parent) {
    const int n = static_cast<int>(parent.size());
    DCFT_EXPECTS(n >= 2, "need at least two processes");
    DCFT_EXPECTS(parent[0] == 0, "node 0 must be the root");
    for (int i = 1; i < n; ++i)
        DCFT_EXPECTS(parent[static_cast<std::size_t>(i)] >= 0 &&
                         parent[static_cast<std::size_t>(i)] < i,
                     "parent[] must define a tree (parent[i] < i)");

    auto builder = std::make_shared<StateSpace>();
    std::vector<VarId> sn;
    for (int i = 0; i < n; ++i)
        sn.push_back(builder->add_variable("sn." + std::to_string(i), 3));
    const VarId wc = builder->add_variable("wc", 2);
    const VarId req = builder->add_variable("req", 2);
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;

    Predicate all_equal("all-sessions-equal",
                        [sn](const StateSpace& sp, StateIndex s) {
                            const Value root = sp.get(s, sn[0]);
                            for (VarId v : sn)
                                if (sp.get(s, v) != root) return false;
                            return true;
                        });
    const Predicate wc_set =
        Predicate::var_eq(*space, "wc", 1).renamed("wc");
    const Predicate req_set =
        Predicate::var_eq(*space, "req", 1).renamed("req");

    Program system(space, "distributed-reset(n=" + std::to_string(n) + ")");
    system.add_action(
        Action::assign_const(*space, "request", !req_set, "req", 1));
    system.add_action(Action(
        "start.0", req_set && wc_set,
        [sn, wc, req](const StateSpace& sp, StateIndex s) {
            StateIndex t = sp.set(s, sn[0], (sp.get(s, sn[0]) + 1) % 3);
            t = sp.set(t, wc, 0);
            return sp.set(t, req, 0);
        }));
    for (int i = 1; i < n; ++i) {
        const VarId si = sn[static_cast<std::size_t>(i)];
        const VarId sp_var =
            sn[static_cast<std::size_t>(parent[static_cast<std::size_t>(i)])];
        system.add_action(Action::assign(
            *space, "adopt." + std::to_string(i),
            Predicate("stale." + std::to_string(i),
                      [si, sp_var](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, si) != sp.get(s, sp_var);
                      }),
            "sn." + std::to_string(i),
            [sp_var](const StateSpace& sp, StateIndex s) {
                return sp.get(s, sp_var);
            }));
    }
    system.add_action(Action::assign_const(
        *space, "complete.0", all_equal && !wc_set, "wc", 1));

    FaultClass fault(space, "corrupt-session");
    fault.add_action(Action::nondet(
        "corrupt", Predicate::top(),
        [sn](const StateSpace& sp, StateIndex s,
             std::vector<StateIndex>& out) {
            for (VarId v : sn) {
                const Value cur = sp.get(s, v);
                for (Value c = 0; c < 3; ++c)
                    if (c != cur) out.push_back(sp.set(s, v, c));
            }
        }));

    // Safety: (i) the witness never lies; (ii) a wave never starts before
    // the previous one completed (sn.0 changes only from all-equal).
    SafetySpec safety = SafetySpec::conjunction(
        {SafetySpec::never((wc_set && !all_equal)
                               .renamed("lying-completion-witness")),
         SafetySpec("no-premature-wave", Predicate::bottom(),
                    [sn, all_equal](const StateSpace& sp, StateIndex from,
                                    StateIndex to) {
                        if (sp.get(from, sn[0]) == sp.get(to, sn[0]))
                            return false;
                        return !all_equal.eval(sp, from);
                    })},
        "SPEC_reset-safety");
    LivenessSpec live;
    // Every request is eventually followed by a completed wave. (The
    // target is wc alone: with back-to-back requests the "no pending
    // request" moment can be dodged forever, but a completion cannot.)
    live.add(LeadsTo{req_set, wc_set});
    ProblemSpec spec("SPEC_reset", std::move(safety), std::move(live));

    Predicate legitimate =
        (all_equal || !wc_set).renamed("witness-truthful");

    return DistributedResetSystem{space,
                                  std::move(parent),
                                  std::move(system),
                                  std::move(fault),
                                  std::move(spec),
                                  all_equal,
                                  wc_set,
                                  (wc_set && !req_set).renamed("wave-served"),
                                  std::move(legitimate),
                                  std::move(sn),
                                  wc,
                                  req};
}

}  // namespace dcft::apps
