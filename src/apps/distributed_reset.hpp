// Distributed reset — on the paper's application list (Sections 1 and 7;
// the authors' own multitolerant reset is reference [10]). A reset wave
// propagates a fresh session number down a tree; a completion detector at
// the root witnesses "the wave has reached everyone" before the next wave
// may start. The detection predicate ("all sessions equal") is *not*
// closed — starting the next wave falsifies it — which is precisely the
// generalized detector shape the Remark in Section 3.1 introduces.
//
// Model. A tree rooted at 0 (parent[i] < i), sessions mod 3:
//   sn.i in {0,1,2} — process i's session number
//   wc   in {0,1}   — the root's completion witness
//   req  in {0,1}   — a reset has been requested
//
//   request   :: !req                  --> req := 1      (environment)
//   start.0   :: req /\ wc             --> sn.0 := sn.0+1 mod 3 ;
//                                          wc := 0 ; req := 0
//   adopt.i   :: sn.i != sn.parent(i)  --> sn.i := sn.parent(i)
//   complete.0:: all-equal /\ !wc      --> wc := 1
//
// SPEC_reset safety: a new wave never starts before the previous wave
// completed, and the witness never lies (wc => all sessions equal).
// Liveness: every request is eventually followed by a completed wave.
//
// Transient faults corrupt session numbers arbitrarily; the wave machinery
// doubles as a nonmasking corrector that re-converges to agreement.
#pragma once

#include <memory>
#include <vector>

#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct DistributedResetSystem {
    std::shared_ptr<const StateSpace> space;
    std::vector<int> parent;

    Program system;
    FaultClass corrupt_sessions;

    ProblemSpec spec;

    Predicate all_equal;       ///< X of the completion detector
    Predicate witness;         ///< Z: wc
    Predicate wave_complete;   ///< wc /\ !req (a served request)
    Predicate legitimate;      ///< all_equal /\ (wc => all_equal)

    StateIndex initial_state() const;  ///< all sessions 0, wc 1, req 0

    std::vector<VarId> sn;
    VarId wc_var, req_var;
};

/// parent[0] must be 0, parent[i] < i.
DistributedResetSystem make_distributed_reset(std::vector<int> parent);

}  // namespace dcft::apps
