// The alternating-bit protocol over lossy bounded channels — the textbook
// corrector for message loss (retransmission = rollforward recovery), and
// a crisp instance of the paper's fault taxonomy on a message-passing
// system: ABP is masking tolerant to loss and duplication, and provably
// *not* tolerant to corruption (it needs checksums for that — i.e. a
// detector).
//
// Model. A sender and a receiver connected by two bounded FIFO channels
// (data D: sender->receiver carrying the alternating bit; acks A: the
// reverse). Progress is tracked mod M so the spec is finite-state:
//   sbit, rbit in {0,1}; sent, delivered in {0..M-1}; D, A channels.
//
//   transmit :: !D.full          --> D.push(sbit)        (re-send anytime)
//   get_ack  :: !A.empty         --> a := A.pop;
//                                    if a == sbit { sbit ^= 1; sent++ }
//   deliver  :: !D.empty /\ !A.full
//                                --> b := D.pop; A.push(b);
//                                    if b == rbit { delivered++; rbit ^= 1 }
//
// SPEC_abp safety (exactly-once, in-order, mod M): `delivered` only ever
// increments when a message is outstanding (sent != delivered ... phases
// tracked by the bits), and `sent` only increments on a matching ack.
// Liveness: the stream keeps flowing — sent==c ~~> sent==c+1 for every c.
//
// Fault classes: lose / duplicate a message on either channel (tolerated),
// corrupt a message's bit (breaks safety — the negative result).
#pragma once

#include <memory>

#include "gc/channel.hpp"
#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct AlternatingBitSystem {
    std::shared_ptr<const StateSpace> space;
    int window_mod;  ///< M

    Program protocol;
    FaultClass loss;         ///< drop a message on D or A
    FaultClass duplication;  ///< duplicate a message on D or A
    FaultClass corruption;   ///< flip a bit in flight on D or A

    ProblemSpec spec;

    Predicate in_sync;  ///< the protocol's phase invariant (see .cpp)

    Channel data;  ///< D
    Channel acks;  ///< A
    VarId sbit, rbit, sent, delivered;

    StateIndex initial_state() const;  ///< everything 0, channels empty
};

/// channel_capacity >= 1; window_mod >= 2 (the counters' modulus).
AlternatingBitSystem make_alternating_bit(int channel_capacity = 2,
                                          int window_mod = 4);

}  // namespace dcft::apps
