// Catalog of the built-in example systems: one registry mapping a system
// name (+ size) to everything needed to verify and simulate it.
//
// The catalog used to live inside the dcft CLI; it is a library concern
// now because two frontends share it — `dcft verify/simulate/list` and
// the dcftd query daemon (src/service/) — and they must agree exactly on
// what "token-ring 8" means for persistent graph-store keys to be shared
// between them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gc/program.hpp"
#include "obs/run_report.hpp"
#include "runtime/estimate.hpp"
#include "spec/problem_spec.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft::apps {

/// One loaded system: program variants plus everything needed to verify
/// and simulate them.
struct SystemInstance {
    std::shared_ptr<const StateSpace> space;
    std::map<std::string, Program> variants;
    std::unique_ptr<FaultClass> faults;
    ProblemSpec spec;
    Predicate invariant;
    StateIndex initial = 0;
};

/// Builds the named system at `size` (0 = the system's default size).
/// Throws ContractError for a name outside catalog_names().
SystemInstance load_system(const std::string& name, int size);

/// The catalog entries, in presentation order.
const std::vector<std::string>& catalog_names();

/// One ReportQuery from a tolerance verdict. Failing queries export the
/// counterexample of the first failing obligation; passing queries export
/// the exploration witness (BFS path to the deepest fault-span state).
obs::ReportQuery tolerance_query(const std::string& system,
                                 const std::string& variant,
                                 const std::string& grade,
                                 const ToleranceReport& report);

/// The graded verdict for one variant of a loaded system: the
/// masking-distance game result plus a fixed-seed Monte Carlo estimate,
/// already shaped as report blocks. Deterministic for a given (system,
/// variant, options) — including across exploration and Monte Carlo thread
/// counts — so both frontends (dcft verify --graded, dcftd graded verify)
/// emit byte-identical blocks.
struct GradedBlocks {
    obs::QueryMaskingDistance masking_distance;
    obs::QueryMonteCarlo monte_carlo;
    std::string game_reason;  ///< human-readable game verdict line
};

/// Computes the graded blocks for `variant` of `sys`. The defaulted
/// options are the catalog-standard estimate: 200 runs, base_seed 1,
/// per-step fault probability 0.1, 500-step budget.
GradedBlocks graded_blocks(const SystemInstance& sys, const Program& variant,
                           const ToleranceEstimateOptions& mc_options = {});

}  // namespace dcft::apps
