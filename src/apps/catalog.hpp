// Catalog of the built-in example systems: one registry mapping a system
// name (+ size) to everything needed to verify and simulate it.
//
// The catalog used to live inside the dcft CLI; it is a library concern
// now because two frontends share it — `dcft verify/simulate/list` and
// the dcftd query daemon (src/service/) — and they must agree exactly on
// what "token-ring 8" means for persistent graph-store keys to be shared
// between them.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gc/program.hpp"
#include "obs/run_report.hpp"
#include "spec/problem_spec.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft::apps {

/// One loaded system: program variants plus everything needed to verify
/// and simulate them.
struct SystemInstance {
    std::shared_ptr<const StateSpace> space;
    std::map<std::string, Program> variants;
    std::unique_ptr<FaultClass> faults;
    ProblemSpec spec;
    Predicate invariant;
    StateIndex initial = 0;
};

/// Builds the named system at `size` (0 = the system's default size).
/// Throws ContractError for a name outside catalog_names().
SystemInstance load_system(const std::string& name, int size);

/// The catalog entries, in presentation order.
const std::vector<std::string>& catalog_names();

/// One ReportQuery from a tolerance verdict. Failing queries export the
/// counterexample of the first failing obligation; passing queries export
/// the exploration witness (BFS path to the deepest fault-span state).
obs::ReportQuery tolerance_query(const std::string& system,
                                 const std::string& variant,
                                 const std::string& grade,
                                 const ToleranceReport& report);

}  // namespace dcft::apps
