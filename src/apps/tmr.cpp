#include "apps/tmr.hpp"

#include <optional>

#include "common/check.hpp"

namespace dcft::apps {
namespace {

/// The majority value among the three inputs, if two or more agree.
std::optional<Value> majority(const StateSpace& sp, StateIndex s, VarId x,
                              VarId y, VarId z) {
    const Value a = sp.get(s, x), b = sp.get(s, y), c = sp.get(s, z);
    if (a == b || a == c) return a;
    if (b == c) return b;
    return std::nullopt;
}

}  // namespace

StateIndex TmrSystem::initial_state(Value value) const {
    StateIndex s = 0;
    s = space->set(s, x_var, value);
    s = space->set(s, y_var, value);
    s = space->set(s, z_var, value);
    s = space->set(s, out_var, bottom);
    return s;
}

TmrSystem make_tmr(Value domain) {
    DCFT_EXPECTS(domain >= 2, "TMR needs at least two input values");

    auto builder = std::make_shared<StateSpace>();
    const VarId x = builder->add_variable("x", domain);
    const VarId y = builder->add_variable("y", domain);
    const VarId z = builder->add_variable("z", domain);
    const VarId out = builder->add_variable("out", domain + 1);
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;
    const Value bottom = domain;

    auto var_equal = [space](VarId a, VarId b, std::string name) {
        return Predicate(std::move(name),
                         [a, b](const StateSpace& sp, StateIndex s) {
                             return sp.get(s, a) == sp.get(s, b);
                         });
    };

    const Predicate out_bot =
        Predicate::var_eq(*space, "out", bottom).renamed("out==bot");
    const Predicate dr_witness =
        (var_equal(x, y, "x==y") || var_equal(x, z, "x==z"))
            .renamed("Z_DR(x==y||x==z)");
    const Predicate all_agree =
        (var_equal(x, y, "x==y") && var_equal(y, z, "y==z"))
            .renamed("x==y==z");
    const Predicate x_uncor(
        "X_DR(x==uncor)", [x, y, z](const StateSpace& sp, StateIndex s) {
            const auto maj = majority(sp, s, x, y, z);
            return maj.has_value() && sp.get(s, x) == *maj;
        });
    const Predicate out_correct(
        "out==uncor", [x, y, z, out](const StateSpace& sp, StateIndex s) {
            const auto maj = majority(sp, s, x, y, z);
            return maj.has_value() && sp.get(s, out) == *maj;
        });
    const Predicate invariant =
        (all_agree && (out_bot || var_equal(out, x, "out==x")))
            .renamed("S_tmr");

    // IR :: out = bot --> out := x
    Program ir(space, "IR");
    ir.add_action(Action::assign(
        *space, "IR1", out_bot, "out",
        [x](const StateSpace& sp, StateIndex s) { return sp.get(s, x); }));

    // DR has no state-changing actions of its own — it "merely evaluates"
    // its witness predicate; DR ; IR gates IR on that witness.
    Program dr(space, space->empty_varset(), "DR");
    Program failsafe = sequence(dr, dr_witness, ir).renamed("DR;IR");

    // CR: the corrector's actions (witness/correction predicate out==uncor).
    Program cr(space, "CR");
    cr.add_action(Action::assign(
        *space, "CR1",
        out_bot && (var_equal(y, z, "y==z") || var_equal(y, x, "y==x")),
        "out",
        [y](const StateSpace& sp, StateIndex s) { return sp.get(s, y); }));
    cr.add_action(Action::assign(
        *space, "CR2",
        out_bot && (var_equal(z, x, "z==x") || var_equal(z, y, "z==y")),
        "out",
        [z](const StateSpace& sp, StateIndex s) { return sp.get(s, z); }));

    Program masking = parallel(failsafe, cr).renamed("DR;IR||CR");

    // Fault: corrupts any one input to any different value; guarded on
    // "all inputs agree" so at most one input is corrupted at a time.
    FaultClass fault(space, "one-input-corruption");
    fault.add_action(Action::nondet(
        "corrupt-input", all_agree,
        [x, y, z, domain](const StateSpace& sp, StateIndex s,
                          std::vector<StateIndex>& outv) {
            for (VarId input : {x, y, z}) {
                const Value cur = sp.get(s, input);
                for (Value c = 0; c < domain; ++c)
                    if (c != cur) outv.push_back(sp.set(s, input, c));
            }
        }));

    // SPEC_io: out is only ever set to the majority (uncorrupted) value,
    // and is eventually set to it.
    SafetySpec never_wrong(
        "never-output-corrupted-value", Predicate::bottom(),
        [x, y, z, out](const StateSpace& sp, StateIndex from, StateIndex to) {
            const Value before = sp.get(from, out);
            const Value after = sp.get(to, out);
            if (after == before) return false;
            const auto maj = majority(sp, from, x, y, z);
            return !maj.has_value() || after != *maj;
        });
    LivenessSpec live;
    live.add_eventually(out_correct);
    ProblemSpec spec("SPEC_io", std::move(never_wrong), std::move(live));

    return TmrSystem{space,
                     std::move(ir),
                     std::move(failsafe),
                     std::move(masking),
                     std::move(cr),
                     std::move(fault),
                     std::move(spec),
                     dr_witness,
                     x_uncor,
                     all_agree,
                     out_bot,
                     out_correct,
                     invariant,
                     bottom,
                     x,
                     y,
                     z,
                     out};
}

}  // namespace dcft::apps
