// Self-stabilizing BFS spanning-tree maintenance — one of the applications
// the paper lists for its design method ("tree maintenance", Sections 1
// and 7). Built here as a pure corrector system: each process maintains a
// distance estimate; local correction actions drive the estimates to the
// true BFS distances from the root, from any transiently corrupted state.
//
// Model. An undirected connected graph on n nodes, root 0.
//   dist.i in {0..n} (n doubles as "unreachable/overflow").
//   root   :: dist.0 != 0 --> dist.0 := 0
//   node i :: dist.i != min(dist.j : j in nbr(i)) + 1
//             --> dist.i := min(...) + 1   (capped at n)
//
// Legitimate states: dist.i equals the BFS distance of i. The local
// consistency predicate of node i is the *detection predicate* a detector
// on i would watch; the whole program is a corrector with
// Z = X = "all distances correct".
#pragma once

#include <memory>
#include <vector>

#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

/// Undirected graph as adjacency lists; must be connected.
using Graph = std::vector<std::vector<int>>;

/// Convenience constructors for common topologies.
Graph path_graph(int n);
Graph cycle_graph(int n);
Graph star_graph(int n);

struct SpanningTreeSystem {
    std::shared_ptr<const StateSpace> space;
    Graph graph;

    Program program;
    FaultClass corrupt_any;  ///< sets any dist.i to any value

    ProblemSpec spec;      ///< cl(legitimate) + convergence to it
    Predicate legitimate;  ///< all dist.i equal the true BFS distance

    /// Node i is locally consistent (its action is disabled).
    Predicate locally_consistent(int i) const;

    /// The true BFS distances the system must converge to.
    std::vector<Value> true_distances;

    StateIndex legitimate_state() const;

    std::vector<VarId> dist;
};

SpanningTreeSystem make_spanning_tree(Graph graph);

}  // namespace dcft::apps
