#include "apps/alternating_bit.hpp"

#include "common/check.hpp"

namespace dcft::apps {

StateIndex AlternatingBitSystem::initial_state() const { return 0; }

AlternatingBitSystem make_alternating_bit(int channel_capacity,
                                          int window_mod) {
    DCFT_EXPECTS(channel_capacity >= 1, "need channel capacity >= 1");
    DCFT_EXPECTS(window_mod >= 2, "need window modulus >= 2");

    auto builder = std::make_shared<StateSpace>();
    Channel data(*builder, "D", channel_capacity, 2);
    Channel acks(*builder, "A", channel_capacity, 2);
    const VarId sbit = builder->add_variable("sbit", 2);
    const VarId rbit = builder->add_variable("rbit", 2);
    const VarId sent = builder->add_variable("sent", window_mod);
    const VarId delivered = builder->add_variable("delivered", window_mod);
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;
    const Value m = window_mod;

    Program protocol(space, "alternating-bit");
    // transmit :: !D.full --> D.push(sbit)    (covers retransmission)
    protocol.add_action(data.send(
        "transmit", Predicate::top(),
        [sbit](const StateSpace& sp, StateIndex s) {
            return sp.get(s, sbit);
        }));
    // get_ack :: !A.empty --> accept matching ack, move the window
    protocol.add_action(acks.receive(
        "get_ack", Predicate::top(),
        [sbit, sent, m](const StateSpace& sp, StateIndex s, Value a) {
            if (a != sp.get(s, sbit)) return s;  // stale ack: ignore
            StateIndex t = sp.set(s, sbit, 1 - sp.get(s, sbit));
            return sp.set(t, sent, (sp.get(s, sent) + 1) % m);
        }));
    // deliver :: !D.empty /\ !A.full --> ack it; accept if expected
    protocol.add_action(data.receive(
        "deliver", !acks.is_full(),
        [acks, rbit, delivered, m](const StateSpace& sp, StateIndex s,
                                   Value b) {
            StateIndex t = acks.push(sp, s, b);
            if (b != sp.get(s, rbit)) return t;  // retransmission: ignore
            t = sp.set(t, rbit, 1 - sp.get(t, rbit));
            return sp.set(t, delivered, (sp.get(t, delivered) + 1) % m);
        }));

    FaultClass loss(space, "message-loss");
    loss.add_action(data.lose("lose-D"));
    loss.add_action(acks.lose("lose-A"));

    FaultClass duplication(space, "message-duplication");
    duplication.add_action(data.duplicate("dup-D"));
    duplication.add_action(acks.duplicate("dup-A"));

    FaultClass corruption(space, "message-corruption");
    corruption.add_action(data.corrupt("flip-D"));
    corruption.add_action(acks.corrupt("flip-A"));

    // Safety: exactly-once in-order delivery, phrased over the counters.
    //  - delivered may only step to delivered+1, and only while the
    //    current message is still undelivered (delivered == sent);
    //  - sent may only step to sent+1, and only after delivery
    //    (delivered == sent+1).
    SafetySpec safety(
        "exactly-once-in-order", Predicate::bottom(),
        [sent, delivered, m](const StateSpace& sp, StateIndex from,
                             StateIndex to) {
            const Value s0 = sp.get(from, sent), s1 = sp.get(to, sent);
            const Value d0 = sp.get(from, delivered);
            const Value d1 = sp.get(to, delivered);
            if (d1 != d0) {
                if (d1 != (d0 + 1) % m) return true;  // skipped/duplicated
                if (d0 != s0) return true;            // nothing outstanding
            }
            if (s1 != s0) {
                if (s1 != (s0 + 1) % m) return true;
                if (d0 != (s0 + 1) % m) return true;  // unacked advance
            }
            return false;
        });
    LivenessSpec live;
    for (Value c = 0; c < m; ++c) {
        live.add(LeadsTo{Predicate::var_eq(*space, "sent", c),
                         Predicate::var_eq(*space, "sent", (c + 1) % m)});
    }
    ProblemSpec spec("SPEC_abp", std::move(safety), std::move(live));

    Predicate in_sync(
        "abp-phase-invariant",
        [sbit, rbit, sent, delivered, m](const StateSpace& sp,
                                         StateIndex s) {
            const bool same = sp.get(s, sbit) == sp.get(s, rbit);
            const Value d = sp.get(s, delivered);
            const Value n = sp.get(s, sent);
            return same ? d == n : d == (n + 1) % m;
        });

    return AlternatingBitSystem{space,
                                window_mod,
                                std::move(protocol),
                                std::move(loss),
                                std::move(duplication),
                                std::move(corruption),
                                std::move(spec),
                                std::move(in_sync),
                                data,
                                acks,
                                sbit,
                                rbit,
                                sent,
                                delivered};
}

}  // namespace dcft::apps
