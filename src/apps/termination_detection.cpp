#include "apps/termination_detection.hpp"

#include "common/check.hpp"

namespace dcft::apps {
namespace {

constexpr Value kWhite = 0;
constexpr Value kBlack = 1;

}  // namespace

StateIndex TerminationDetectionSystem::initial_state(
    std::vector<bool> active) const {
    DCFT_EXPECTS(static_cast<int>(active.size()) == n,
                 "one activity flag per process");
    StateIndex s = 0;
    for (int i = 0; i < n; ++i) {
        s = space->set(s, active_var[static_cast<std::size_t>(i)],
                       active[static_cast<std::size_t>(i)] ? 1 : 0);
        s = space->set(s, colour_var[static_cast<std::size_t>(i)], kBlack);
    }
    s = space->set(s, token_var, 0);
    s = space->set(s, tcolour_var, kBlack);
    s = space->set(s, done_var, 0);
    return s;
}

TerminationDetectionSystem make_termination_detection(int n) {
    DCFT_EXPECTS(n >= 2, "need at least two processes");

    auto builder = std::make_shared<StateSpace>();
    std::vector<VarId> active, colour;
    for (int i = 0; i < n; ++i)
        active.push_back(
            builder->add_variable("active." + std::to_string(i), 2));
    for (int i = 0; i < n; ++i)
        colour.push_back(builder->add_variable(
            "colour." + std::to_string(i), {"white", "black"}));
    const VarId token = builder->add_variable("token", n);
    const VarId tcolour =
        builder->add_variable("tcolour", {"white", "black"});
    const VarId done = builder->add_variable("done", 2);
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;

    Program system(space, "termination-detection(n=" + std::to_string(n) +
                              ")");

    // --- The underlying diffusing computation. ---
    for (int i = 0; i < n; ++i) {
        const VarId ai = active[static_cast<std::size_t>(i)];
        const VarId ci = colour[static_cast<std::size_t>(i)];
        const std::string is = std::to_string(i);
        const Predicate is_active(
            "active." + is, [ai](const StateSpace& sp, StateIndex s) {
                return sp.get(s, ai) == 1;
            });
        system.add_action(
            Action::assign_const(*space, "passify." + is, is_active,
                                 "active." + is, 0));
        // Activate any other process; the sender turns black.
        const auto others = [n, i] {
            std::vector<int> out;
            for (int j = 0; j < n; ++j)
                if (j != i) out.push_back(j);
            return out;
        }();
        const auto activev = active;
        system.add_action(Action::nondet(
            "activate." + is, is_active,
            [activev, ci, others](const StateSpace& sp, StateIndex s,
                                  std::vector<StateIndex>& out) {
                for (int j : others) {
                    StateIndex t = sp.set(
                        s, activev[static_cast<std::size_t>(j)], 1);
                    out.push_back(sp.set(t, ci, kBlack));
                }
            }));
    }

    // --- The DFG probe. ---
    for (int i = 1; i < n; ++i) {
        const VarId ai = active[static_cast<std::size_t>(i)];
        const VarId ci = colour[static_cast<std::size_t>(i)];
        const std::string is = std::to_string(i);
        const Predicate holds_token_passive(
            "token@" + is + "&&passive",
            [token, ai, i](const StateSpace& sp, StateIndex s) {
                return sp.get(s, token) == i && sp.get(s, ai) == 0;
            });
        system.add_action(Action(
            "pass." + is, holds_token_passive,
            [token, tcolour, ci, i](const StateSpace& sp, StateIndex s) {
                StateIndex t = sp.set(s, token, i - 1);
                if (sp.get(s, ci) == kBlack) t = sp.set(t, tcolour, kBlack);
                return sp.set(t, ci, kWhite);
            }));
    }
    {
        const VarId a0 = active[0];
        const VarId c0 = colour[0];
        const Predicate at_initiator(
            "token@0&&passive",
            [token, a0](const StateSpace& sp, StateIndex s) {
                return sp.get(s, token) == 0 && sp.get(s, a0) == 0;
            });
        const Predicate probe_white(
            "probe-white", [tcolour, c0](const StateSpace& sp, StateIndex s) {
                return sp.get(s, tcolour) == kWhite &&
                       sp.get(s, c0) == kWhite;
            });
        const Predicate not_done(
            "!done", [done](const StateSpace& sp, StateIndex s) {
                return sp.get(s, done) == 0;
            });
        system.add_action(Action::assign_const(
            *space, "judge.0", at_initiator && probe_white && not_done,
            "done", 1));
        system.add_action(Action(
            "retry.0", at_initiator && !probe_white,
            [token, tcolour, c0, n](const StateSpace& sp, StateIndex s) {
                StateIndex t = sp.set(s, token, n - 1);
                t = sp.set(t, tcolour, kWhite);
                return sp.set(t, c0, kWhite);
            }));
    }

    // --- Fault: the environment re-activates a passive process. ---
    FaultClass fault(space, "spurious-activation");
    const Predicate some_passive(
        "some-passive", [active](const StateSpace& sp, StateIndex s) {
            for (VarId a : active)
                if (sp.get(s, a) == 0) return true;
            return false;
        });
    fault.add_action(Action::nondet(
        "spuriously-activate", some_passive,
        [active](const StateSpace& sp, StateIndex s,
                 std::vector<StateIndex>& out) {
            for (VarId a : active)
                if (sp.get(s, a) == 0) out.push_back(sp.set(s, a, 1));
        }));

    Predicate all_passive("all-passive",
                          [active](const StateSpace& sp, StateIndex s) {
                              for (VarId a : active)
                                  if (sp.get(s, a) == 1) return false;
                              return true;
                          });
    Predicate done_pred =
        Predicate::var_eq(*space, "done", 1).renamed("done");

    Predicate initial(
        "initial", [token, tcolour, done, colour](const StateSpace& sp,
                                                  StateIndex s) {
            if (sp.get(s, token) != 0) return false;
            if (sp.get(s, tcolour) != kBlack) return false;
            if (sp.get(s, done) != 0) return false;
            for (VarId c : colour)
                if (sp.get(s, c) != kBlack) return false;
            return true;  // any activity pattern
        });

    return TerminationDetectionSystem{space,
                                      n,
                                      std::move(system),
                                      std::move(fault),
                                      std::move(all_passive),
                                      std::move(done_pred),
                                      std::move(initial),
                                      std::move(active),
                                      std::move(colour),
                                      token,
                                      tcolour,
                                      done};
}

}  // namespace dcft::apps
