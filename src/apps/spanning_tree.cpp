#include "apps/spanning_tree.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"

namespace dcft::apps {
namespace {

std::vector<Value> bfs_distances(const Graph& g) {
    std::vector<Value> dist(g.size(), -1);
    std::deque<int> queue{0};
    dist[0] = 0;
    while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        for (int v : g[static_cast<std::size_t>(u)]) {
            if (dist[static_cast<std::size_t>(v)] == -1) {
                dist[static_cast<std::size_t>(v)] =
                    dist[static_cast<std::size_t>(u)] + 1;
                queue.push_back(v);
            }
        }
    }
    return dist;
}

/// The value node i's rule assigns: min over neighbours + 1, capped.
Value local_target(const StateSpace& sp, StateIndex s,
                   const std::vector<VarId>& dist,
                   const std::vector<int>& neighbours, Value cap) {
    Value best = cap;
    for (int j : neighbours)
        best = std::min(best, sp.get(s, dist[static_cast<std::size_t>(j)]));
    return std::min<Value>(best + 1, cap);
}

}  // namespace

Graph path_graph(int n) {
    Graph g(static_cast<std::size_t>(n));
    for (int i = 0; i + 1 < n; ++i) {
        g[static_cast<std::size_t>(i)].push_back(i + 1);
        g[static_cast<std::size_t>(i + 1)].push_back(i);
    }
    return g;
}

Graph cycle_graph(int n) {
    Graph g = path_graph(n);
    if (n >= 3) {
        g[0].push_back(n - 1);
        g[static_cast<std::size_t>(n - 1)].push_back(0);
    }
    return g;
}

Graph star_graph(int n) {
    Graph g(static_cast<std::size_t>(n));
    for (int i = 1; i < n; ++i) {
        g[0].push_back(i);
        g[static_cast<std::size_t>(i)].push_back(0);
    }
    return g;
}

Predicate SpanningTreeSystem::locally_consistent(int i) const {
    DCFT_EXPECTS(i >= 0 && i < static_cast<int>(graph.size()),
                 "locally_consistent: bad node");
    const auto distv = dist;
    const Value cap = static_cast<Value>(graph.size());
    if (i == 0) {
        const VarId d0 = dist[0];
        return Predicate("consistent.0",
                         [d0](const StateSpace& sp, StateIndex s) {
                             return sp.get(s, d0) == 0;
                         });
    }
    const auto neighbours = graph[static_cast<std::size_t>(i)];
    const VarId di = dist[static_cast<std::size_t>(i)];
    return Predicate(
        "consistent." + std::to_string(i),
        [distv, neighbours, di, cap](const StateSpace& sp, StateIndex s) {
            return sp.get(s, di) ==
                   local_target(sp, s, distv, neighbours, cap);
        });
}

StateIndex SpanningTreeSystem::legitimate_state() const {
    StateIndex s = 0;
    for (std::size_t i = 0; i < dist.size(); ++i)
        s = space->set(s, dist[i], true_distances[i]);
    return s;
}

SpanningTreeSystem make_spanning_tree(Graph graph) {
    const int n = static_cast<int>(graph.size());
    DCFT_EXPECTS(n >= 2, "need at least 2 nodes");
    const std::vector<Value> truth = bfs_distances(graph);
    for (Value d : truth)
        DCFT_EXPECTS(d >= 0, "graph must be connected");

    auto builder = std::make_shared<StateSpace>();
    std::vector<VarId> dist;
    for (int i = 0; i < n; ++i)
        dist.push_back(builder->add_variable("dist." + std::to_string(i),
                                             static_cast<Value>(n) + 1));
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;
    const Value cap = static_cast<Value>(n);

    Program program(space, "bfs-tree(n=" + std::to_string(n) + ")");
    {
        const VarId d0 = dist[0];
        program.add_action(Action::assign_const(
            *space, "fix.0",
            Predicate("dist.0!=0",
                      [d0](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, d0) != 0;
                      }),
            "dist.0", 0));
    }
    for (int i = 1; i < n; ++i) {
        const auto neighbours = graph[static_cast<std::size_t>(i)];
        const VarId di = dist[static_cast<std::size_t>(i)];
        const auto distv = dist;
        program.add_action(Action::assign(
            *space, "fix." + std::to_string(i),
            Predicate("inconsistent." + std::to_string(i),
                      [distv, neighbours, di, cap](const StateSpace& sp,
                                                   StateIndex s) {
                          return sp.get(s, di) !=
                                 local_target(sp, s, distv, neighbours, cap);
                      }),
            "dist." + std::to_string(i),
            [distv, neighbours, cap](const StateSpace& sp, StateIndex s) {
                return local_target(sp, s, distv, neighbours, cap);
            }));
    }

    FaultClass fault(space, "corrupt-distance");
    fault.add_action(Action::nondet(
        "corrupt", Predicate::top(),
        [dist, n](const StateSpace& sp, StateIndex s,
                  std::vector<StateIndex>& out) {
            for (VarId v : dist) {
                const Value cur = sp.get(s, v);
                for (Value c = 0; c <= n; ++c)
                    if (c != cur) out.push_back(sp.set(s, v, c));
            }
        }));

    Predicate legitimate(
        "distances-correct",
        [dist, truth](const StateSpace& sp, StateIndex s) {
            for (std::size_t i = 0; i < dist.size(); ++i)
                if (sp.get(s, dist[i]) != truth[i]) return false;
            return true;
        });

    // SPEC: once legitimate, stay legitimate; from anywhere, converge.
    SafetySpec safety = SafetySpec::closure(legitimate);
    LivenessSpec live;
    live.add_eventually(legitimate);
    ProblemSpec spec("SPEC_tree", std::move(safety), std::move(live));

    return SpanningTreeSystem{space,
                              std::move(graph),
                              std::move(program),
                              std::move(fault),
                              std::move(spec),
                              std::move(legitimate),
                              truth,
                              std::move(dist)};
}

}  // namespace dcft::apps
