// Byzantine agreement (Section 6.2 of the paper), for n processes (one
// general g plus n-1 non-generals) of which at most f may become
// Byzantine. The paper works out n=4, f=1; the construction generalizes to
// n = 3f+1 as the paper notes (citing its companion FSTTCS'97 paper).
//
// Per non-general j:
//   d.j   in {bot,0,1} — j's copy of the general's decision
//   out.j in {bot,0,1} — j's output (bot = not yet output)
//   b.j   in {0,1}     — j is Byzantine (auxiliary, undetectable)
// General: d.g in {0,1}, b.g in {0,1}.
//
// Programs (all actions of process j are guarded by !b.j):
//   IB1.j :: d.j = bot --> d.j := d.g
//   IB2.j :: d.j != bot /\ out.j = bot --> out.j := d.j      (intolerant)
//   DB.j ; IB2.j — IB2.j gated by the detector witness
//     W.j = (forall k != g : d.k != bot) /\ d.j = (majority k != g : d.k)
//                                                            (fail-safe)
//   CB1.j :: (forall k != g : d.k != bot) /\ d.j != majority
//            --> d.j := majority                              (masking)
//
// Byzantine *behaviour* is part of the composition (the paper's BYZ.j):
// when b.j holds, j may arbitrarily rewrite d.j (to 0/1 — a decision,
// never back to bot) and out.j (to anything). The Byzantine *fault* is the
// action that flips b.j from false to true; at most f such flips.
//
// SPEC_byz:
//   validity  — if !b.g, a non-Byzantine j only outputs d.g;
//   agreement — two non-Byzantine processes never output differently;
//   finality  — a non-Byzantine output is never revoked or changed;
//   liveness  — eventually every non-Byzantine non-general has output.
#pragma once

#include <memory>
#include <vector>

#include "gc/composition.hpp"
#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct ByzantineSystem {
    std::shared_ptr<const StateSpace> space;
    int num_processes;  ///< n, including the general
    int max_byzantine;  ///< f

    Program intolerant;  ///< IB || BYZ
    Program failsafe;    ///< with DB.j gating IB2.j
    Program masking;     ///< plus CB.j
    FaultClass byzantine_fault;

    ProblemSpec spec;

    /// Witness predicate W.j of process j's detector (1-based non-general).
    Predicate witness(int j) const;
    /// Detection predicate of process j: d.j = corrdecn (Section 6.2).
    Predicate detection(int j) const;

    Predicate no_byzantine;       ///< forall p: !b.p
    Predicate all_honest_output;  ///< forall j != g: b.j \/ out.j != bot

    VarId d_g, b_g;
    std::vector<VarId> d, out, b;  ///< per non-general, index 0 = process 1

    /// Initial state: d.g = decision, everything else bot/false.
    StateIndex initial_state(Value general_decision) const;
};

/// Builds the system; n = total processes (>= 3f+1 for masking to hold).
ByzantineSystem make_byzantine(int n = 4, int f = 1);

}  // namespace dcft::apps
