// Triple modular redundancy (Section 6.1 of the paper).
//
// Inputs x, y, z over a value domain; output `out` (bot = unassigned). In
// the absence of faults all inputs are identical; a fault corrupts at most
// one input (guarded on "all inputs still agree", which is how "faults may
// corrupt any one of the three inputs" bounds itself without an auxiliary
// counter). SPEC_io: the output is only ever assigned the value of an
// uncorrupted input (= the majority value), and is eventually assigned.
//
// Programs, exactly as constructed in the paper:
//   IR        :: out = bot --> out := x                      (intolerant)
//   DR ; IR   — IR gated by DR's witness (x=y \/ x=z)        (fail-safe)
//   DR ; IR || CR — plus the corrector actions
//     CR1 :: out = bot /\ (y=z \/ y=x) --> out := y
//     CR2 :: out = bot /\ (z=x \/ z=y) --> out := z          (masking)
//
// The masking program is the classic TMR voter, recovered by composing a
// detector and a corrector with the intolerant program.
#pragma once

#include <memory>

#include "gc/composition.hpp"
#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct TmrSystem {
    std::shared_ptr<const StateSpace> space;

    Program intolerant;  ///< IR
    Program failsafe;    ///< DR ; IR
    Program masking;     ///< DR ; IR || CR
    Program corrector;   ///< CR alone
    FaultClass corrupt_one_input;

    ProblemSpec spec;  ///< SPEC_io

    Predicate dr_witness;           ///< Z of DR: x=y \/ x=z
    Predicate x_uncorrupted;        ///< X of DR: x equals the majority value
    Predicate all_inputs_agree;     ///< x=y=z
    Predicate output_unassigned;    ///< out = bot
    Predicate output_correct;       ///< out = majority value
    Predicate invariant;            ///< S: x=y=z /\ (out=bot \/ out=x)

    Value bottom;

    VarId x_var, y_var, z_var, out_var;

    /// Initial state: all inputs = value, out = bot.
    StateIndex initial_state(Value value) const;
};

/// Builds TMR with input values {0..domain-1} (domain >= 2).
TmrSystem make_tmr(Value domain = 2);

}  // namespace dcft::apps
