#include "apps/byzantine.hpp"

#include "common/check.hpp"

namespace dcft::apps {
namespace {

constexpr Value kBot = 2;  // d/out domain: {0, 1, bot}

/// Strict majority among the non-general d values (bot counts as an
/// abstention); returns bot if no value has > (n-1)/2 votes.
Value majority_of(const StateSpace& sp, StateIndex s,
                  const std::vector<VarId>& d) {
    int votes[2] = {0, 0};
    for (VarId v : d) {
        const Value val = sp.get(s, v);
        if (val == 0 || val == 1) ++votes[val];
    }
    const int threshold = static_cast<int>(d.size()) / 2;  // need > threshold
    if (votes[0] > threshold) return 0;
    if (votes[1] > threshold) return 1;
    return kBot;
}

/// Majority with the classic OM-style deterministic default: when the
/// non-general votes tie (possible only for an even number of voters, with
/// a Byzantine general and f = 1 — in which case every voter is stable and
/// every process sees the same tie), all processes fall back to 0.
Value majority_or_default(const StateSpace& sp, StateIndex s,
                          const std::vector<VarId>& d) {
    const Value maj = majority_of(sp, s, d);
    return maj == kBot ? 0 : maj;
}

Predicate witness_pred(const std::vector<VarId>& dvars, VarId dj, int j) {
    return Predicate("W." + std::to_string(j),
                     [dvars, dj](const StateSpace& sp, StateIndex s) {
                         for (VarId v : dvars)
                             if (sp.get(s, v) == kBot) return false;
                         return sp.get(s, dj) ==
                                majority_or_default(sp, s, dvars);
                     });
}

}  // namespace

Predicate ByzantineSystem::witness(int j) const {
    DCFT_EXPECTS(j >= 1 && j < num_processes, "witness: bad process index");
    return witness_pred(d, d[static_cast<std::size_t>(j - 1)], j);
}

Predicate ByzantineSystem::detection(int j) const {
    DCFT_EXPECTS(j >= 1 && j < num_processes, "detection: bad process index");
    const auto dvars = d;
    const VarId dj = d[static_cast<std::size_t>(j - 1)];
    const VarId dg = d_g, bg = b_g;
    // corrdecn = d.g if !b.g, else (majority k != g : d.k).
    return Predicate("X." + std::to_string(j) + "(d.j==corrdecn)",
                     [dvars, dj, dg, bg](const StateSpace& sp, StateIndex s) {
                         const Value corr =
                             (sp.get(s, bg) == 0)
                                 ? sp.get(s, dg)
                                 : majority_or_default(sp, s, dvars);
                         return sp.get(s, dj) == corr;
                     });
}

StateIndex ByzantineSystem::initial_state(Value general_decision) const {
    DCFT_EXPECTS(general_decision == 0 || general_decision == 1,
                 "general decision must be binary");
    StateIndex s = 0;
    s = space->set(s, d_g, general_decision);
    for (VarId v : d) s = space->set(s, v, kBot);
    for (VarId v : out) s = space->set(s, v, kBot);
    return s;  // all b flags are 0 by construction
}

ByzantineSystem make_byzantine(int n, int f) {
    DCFT_EXPECTS(n >= 2, "need a general and at least one non-general");
    DCFT_EXPECTS(f >= 0, "f must be nonnegative");

    auto builder = std::make_shared<StateSpace>();
    const VarId d_g = builder->add_variable("d.g", 2);
    const VarId b_g = builder->add_variable("b.g", 2);
    std::vector<VarId> d, out, b;
    for (int j = 1; j < n; ++j) {
        d.push_back(builder->add_variable("d." + std::to_string(j), 3));
        out.push_back(builder->add_variable("out." + std::to_string(j), 3));
        b.push_back(builder->add_variable("b." + std::to_string(j), 2));
    }
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;

    // Structured b-flag test (kVarEqConst): compiles to a word-level guard
    // bitset in the verifier. The display name is unchanged.
    auto honest = [&space](VarId bvar, const std::string& who) {
        return Predicate::var_eq(*space, bvar, 0).renamed("!b." + who);
    };

    // --- BYZ: arbitrary behaviour of processes whose b flag is set. ---
    // Modeled as program actions (the paper composes BYZ.j in parallel); a
    // Byzantine process rewrites its decision to 0/1 (a decision — never
    // back to bot) and its output to anything, including revoking it.
    Program byz(space, "BYZ");
    byz.add_action(Action::assign_choice(*space, "BYZ.g:d", !honest(b_g, "g"),
                                         d_g, {0, 1}));
    for (int j = 1; j < n; ++j) {
        const VarId dj = d[static_cast<std::size_t>(j - 1)];
        const VarId oj = out[static_cast<std::size_t>(j - 1)];
        const VarId bj = b[static_cast<std::size_t>(j - 1)];
        const std::string js = std::to_string(j);
        byz.add_action(Action::assign_choice(*space, "BYZ." + js + ":d",
                                             !honest(bj, js), dj, {0, 1}));
        byz.add_action(Action::assign_choice(*space, "BYZ." + js + ":out",
                                             !honest(bj, js), oj,
                                             {0, 1, kBot}));
    }

    // --- IB: the intolerant agreement program. ---
    Program ib(space, "IB");
    std::vector<Action> ib2_actions;  // kept for gating below
    for (int j = 1; j < n; ++j) {
        const VarId dj = d[static_cast<std::size_t>(j - 1)];
        const VarId oj = out[static_cast<std::size_t>(j - 1)];
        const VarId bj = b[static_cast<std::size_t>(j - 1)];
        const std::string js = std::to_string(j);
        Predicate hon = honest(bj, js);
        ib.add_action(Action::assign_var(
            *space, "IB1." + js,
            hon && Predicate::var_eq(*space, "d." + js, kBot), dj, d_g));
        Action ib2 = Action::assign_var(
            *space, "IB2." + js,
            hon && Predicate::var_ne(*space, "d." + js, kBot) &&
                Predicate::var_eq(*space, "out." + js, kBot),
            oj, dj);
        ib.add_action(ib2);
        ib2_actions.push_back(std::move(ib2));
    }

    // --- Fail-safe: gate each IB2.j with the witness of DB.j; masking
    // additionally adds the corrector actions CB1.j. ---
    Program failsafe_core(space, "IB+DB");
    Program masking_core(space, "IB+DB+CB");
    for (int j = 1; j < n; ++j) {
        const VarId dj = d[static_cast<std::size_t>(j - 1)];
        const VarId bj = b[static_cast<std::size_t>(j - 1)];
        const std::string js = std::to_string(j);
        Predicate hon = honest(bj, js);
        Predicate w = witness_pred(d, dj, j);

        // IB1.j is part of DB.j's implementation (it establishes
        // d.k != bot at the neighbours); it stays as-is.
        failsafe_core.add_action(ib.action_named("IB1." + js));
        masking_core.add_action(ib.action_named("IB1." + js));

        Action gated =
            ib2_actions[static_cast<std::size_t>(j - 1)].restricted(w);
        failsafe_core.add_action(gated);
        masking_core.add_action(gated);

        // CB1.j :: all d non-bot /\ d.j != majority --> d.j := majority.
        const auto dvars = d;
        Predicate cb_guard(
            "cb-guard." + js,
            [dvars, dj](const StateSpace& sp, StateIndex s) {
                for (VarId v : dvars)
                    if (sp.get(s, v) == kBot) return false;
                return sp.get(s, dj) != majority_or_default(sp, s, dvars);
            });
        masking_core.add_action(Action::assign(
            *space, "CB1." + js, hon && cb_guard, "d." + js,
            [dvars](const StateSpace& sp, StateIndex s) {
                return majority_or_default(sp, s, dvars);
            }));
    }

    Program intolerant = parallel(ib, byz).renamed("IB||BYZ");
    Program failsafe = parallel(failsafe_core, byz).renamed("DB;IB||BYZ");
    Program masking = parallel(masking_core, byz).renamed("DB;IB||CB||BYZ");

    // --- Fault: flip some b flag, at most f flips in total. ---
    std::vector<VarId> all_b = b;
    all_b.push_back(b_g);
    Predicate under_budget(
        "byz-count<" + std::to_string(f),
        [all_b, f](const StateSpace& sp, StateIndex s) {
            int count = 0;
            for (VarId v : all_b) count += static_cast<int>(sp.get(s, v));
            return count < f;
        });
    FaultClass fault(space, "byzantine-fault(f=" + std::to_string(f) + ")");
    fault.add_action(Action::assign_const(
        *space, "BYZ-flip.g", under_budget && honest(b_g, "g"), "b.g", 1));
    for (int j = 1; j < n; ++j) {
        const std::string js = std::to_string(j);
        fault.add_action(Action::assign_const(
            *space, "BYZ-flip." + js,
            under_budget && honest(b[static_cast<std::size_t>(j - 1)], js),
            "b." + js, 1));
    }

    // --- SPEC_byz. ---
    Predicate no_byzantine(
        "no-byzantine", [all_b](const StateSpace& sp, StateIndex s) {
            for (VarId v : all_b)
                if (sp.get(s, v) != 0) return false;
            return true;
        });
    const auto outv = out;
    const auto bv = b;
    Predicate all_honest_output(
        "all-honest-output", [outv, bv](const StateSpace& sp, StateIndex s) {
            for (std::size_t i = 0; i < outv.size(); ++i)
                if (sp.get(s, bv[i]) == 0 && sp.get(s, outv[i]) == kBot)
                    return false;
            return true;
        });

    SafetySpec safety(
        "byz-safety(validity&&agreement&&finality)", Predicate::bottom(),
        [outv, bv, d_g, b_g](const StateSpace& sp, StateIndex from,
                             StateIndex to) {
            for (std::size_t i = 0; i < outv.size(); ++i) {
                if (sp.get(from, bv[i]) != 0) continue;  // Byzantine: exempt
                const Value before = sp.get(from, outv[i]);
                const Value after = sp.get(to, outv[i]);
                if (after == before) continue;
                // finality: a non-Byzantine output, once set, never changes.
                if (before != kBot) return true;
                // validity: with an honest general, only d.g may be output.
                if (sp.get(from, b_g) == 0 && after != sp.get(from, d_g))
                    return true;
                // agreement: never differ from another honest output.
                for (std::size_t k = 0; k < outv.size(); ++k) {
                    if (k == i || sp.get(from, bv[k]) != 0) continue;
                    const Value other = sp.get(from, outv[k]);
                    if (other != kBot && other != after) return true;
                }
            }
            return false;
        });
    LivenessSpec live;
    live.add_eventually(all_honest_output);
    ProblemSpec spec("SPEC_byz", std::move(safety), std::move(live));

    return ByzantineSystem{space,
                           n,
                           f,
                           std::move(intolerant),
                           std::move(failsafe),
                           std::move(masking),
                           std::move(fault),
                           std::move(spec),
                           std::move(no_byzantine),
                           std::move(all_honest_output),
                           d_g,
                           b_g,
                           std::move(d),
                           std::move(out),
                           std::move(b)};
}

}  // namespace dcft::apps
