// Barrier computation — the first application on the paper's list
// (Section 1), and the showcase for *hierarchical detector construction*:
// the global condition "everyone reached the barrier" is detected by a
// binary tree of watchdog witnesses, each watching the conjunction of its
// children. The release action fires on the root witness.
//
// Model. n worker processes (n a power of two for a clean tree):
//   arrived.i in {0,1}  — worker i reached the barrier this round
//   w.k       in {0,1}  — witness of tree node k (heap indexing, root 1)
//   round     in {0,1}  — parity of the current barrier round
//
//   work.i  :: !arrived.i --> arrived.i := 1           (the computation)
//   watch.k :: children-true /\ !w.k --> w.k := 1      (the detectors)
//   release :: w.1 [ /\ recheck ] --> round := 1-round ;
//              all arrived, w := 0
//
// SPEC_barrier safety: the round never advances while some worker has not
// arrived. Liveness: the round keeps advancing.
//
// The fault corrupts one witness bit to true. Three designs are built:
//   trusting   — release fires on w.1 alone (NOT fail-safe: a corrupted
//                witness releases early);
//   rechecking — release re-evaluates the leaves atomically with the
//                witness (fail-safe and masking: the hierarchical
//                detector is advisory, the final gate is sound).
#pragma once

#include <memory>
#include <vector>

#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct BarrierSystem {
    std::shared_ptr<const StateSpace> space;
    int n;  ///< number of workers (power of two)

    Program trusting;    ///< release gated on the root witness only
    Program rechecking;  ///< release also re-verifies all leaves
    FaultClass corrupt_witness;

    ProblemSpec spec;

    Predicate all_arrived;   ///< X of the root detector
    Predicate root_witness;  ///< Z of the root detector
    /// U: every witness in the tree is truthful (w.k => subtree arrived).
    Predicate witnesses_truthful;

    StateIndex initial_state() const;  ///< nobody arrived, round 0

    std::vector<VarId> arrived;  ///< per worker
    std::vector<VarId> w;        ///< heap-indexed, w[0] unused, root w[1]
    VarId round_var;
};

/// n must be a power of two, n >= 2.
BarrierSystem make_barrier(int n);

}  // namespace dcft::apps
