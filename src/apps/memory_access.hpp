// The paper's running example (Sections 3.3, 4.3, 5.1; Figures 1-3):
// memory access under page faults.
//
// Model. One address `addr` is read. MEM either contains <addr, val> or
// not; since faults only remove the pair (and recovery re-fetches the
// correct value from "disk"), the stored value is always the distinguished
// correct value V, so the state needs only:
//
//   present in {false,true} — <addr, .> in MEM;
//   data    in {bot, 0..D-1} — the output; bot = "not yet assigned";
//   z1      in {false,true} — the detector's witness (Z1 in the paper).
//
// The intolerant read returns V when present, an arbitrary value when not
// (the paper: "returns an arbitrary value").
//
// SPEC_mem: data is never set to an incorrect value (safety), and data is
// eventually set to V (liveness).
//
// Fault: a page fault removes <addr, val>. The paper says the pair is
// "initially removed"; we model "initially" as "before the detector has
// witnessed presence" (guard present /\ !z1). This is the weakest guard
// under which the paper's fail-safe claim for pf holds — with an
// unrestricted page fault, the fault can strike between detection (Z1) and
// the gated read, and pf then violates safety; the test suite demonstrates
// exactly that failure.
//
// Programs:
//   p  (intolerant)  read :: true -> data := (present ? V : arbitrary)
//   pf (fail-safe)   pf1  :: present /\ !z1 -> z1 := true
//                    pf2  :: z1 /\ read                       (Figure 1)
//   pn (nonmasking)  pn1  :: !present -> present := true
//                    pn2  :: read                             (Figure 2)
//   pm (masking)     pm1  :: !present -> present := true
//                    pm2  :: present /\ !z1 -> z1 := true
//                    pm3  :: z1 /\ read                       (Figure 3)
//
// Named predicates: X1 = present (detection predicate), Z1 = z1 (witness),
// U1 = (z1 => present) ("Z1 truthified only when X1 holds"), S = U1 /\ X1.
#pragma once

#include <memory>

#include "gc/composition.hpp"
#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct MemoryAccessSystem {
    std::shared_ptr<const StateSpace> space;

    Program intolerant;  ///< p
    Program failsafe;    ///< pf
    Program nonmasking;  ///< pn
    Program masking;     ///< pm
    FaultClass page_fault;

    /// An unrestricted page fault (can strike even after detection);
    /// pf is *not* fail-safe tolerant to it — used by negative tests.
    FaultClass unrestricted_page_fault;

    ProblemSpec spec;  ///< SPEC_mem

    Predicate X1;  ///< detection predicate: present
    Predicate Z1;  ///< witness: z1
    Predicate U1;  ///< z1 => present
    Predicate S;   ///< invariant: U1 /\ X1

    Value correct_value;  ///< V
    Value bottom;         ///< the "data unassigned" value

    VarId present_var;
    VarId data_var;
    VarId z1_var;

    /// The canonical initial state: present, data = bot, z1 = false.
    StateIndex initial_state() const;
};

/// Builds the system with data values {0..data_domain-1}; the correct value
/// V must be one of them.
MemoryAccessSystem make_memory_access(Value data_domain = 3,
                                      Value correct_value = 1);

}  // namespace dcft::apps
