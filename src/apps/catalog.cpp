#include "apps/catalog.hpp"

#include "apps/alternating_bit.hpp"
#include "apps/barrier.hpp"
#include "apps/byzantine.hpp"
#include "apps/distributed_reset.hpp"
#include "apps/leader_election.hpp"
#include "apps/memory_access.hpp"
#include "apps/spanning_tree.hpp"
#include "apps/termination_detection.hpp"
#include "apps/tmr.hpp"
#include "apps/token_ring.hpp"
#include "verify/invariant.hpp"
#include "verify/masking_distance.hpp"

namespace dcft::apps {

SystemInstance load_system(const std::string& name, int size) {
    SystemInstance out;
    if (name == "memory") {
        auto sys = make_memory_access(size > 0 ? size : 3, 1);
        out.space = sys.space;
        out.variants.emplace("intolerant", sys.intolerant);
        out.variants.emplace("failsafe", sys.failsafe);
        out.variants.emplace("nonmasking", sys.nonmasking);
        out.variants.emplace("masking", sys.masking);
        out.faults = std::make_unique<FaultClass>(sys.page_fault);
        out.spec = sys.spec;
        out.invariant = sys.S;
        out.initial = sys.initial_state();
    } else if (name == "tmr") {
        auto sys = make_tmr(size > 0 ? size : 2);
        out.space = sys.space;
        out.variants.emplace("intolerant", sys.intolerant);
        out.variants.emplace("failsafe", sys.failsafe);
        out.variants.emplace("masking", sys.masking);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_one_input);
        out.spec = sys.spec;
        out.invariant = sys.invariant;
        out.initial = sys.initial_state(0);
    } else if (name == "byzantine") {
        auto sys = make_byzantine(size > 0 ? size : 4, 1);
        out.space = sys.space;
        out.variants.emplace("intolerant", sys.intolerant);
        out.variants.emplace("failsafe", sys.failsafe);
        out.variants.emplace("masking", sys.masking);
        out.faults = std::make_unique<FaultClass>(sys.byzantine_fault);
        out.spec = sys.spec;
        out.initial = sys.initial_state(1);
        out.invariant = reachable_invariant(
            out.variants.at("masking"),
            Predicate("init",
                      [init = out.initial](const StateSpace&, StateIndex s) {
                          return s == init;
                      }));
    } else if (name == "token-ring") {
        const int n = size > 0 ? size : 4;
        auto sys = make_token_ring(n, n);
        out.space = sys.space;
        out.variants.emplace("ring", sys.ring);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_any);
        out.spec = sys.spec;
        out.invariant = sys.legitimate;
        out.initial = sys.initial_state();
    } else if (name == "spanning-tree") {
        auto sys = make_spanning_tree(path_graph(size > 0 ? size : 4));
        out.space = sys.space;
        out.variants.emplace("tree", sys.program);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_any);
        out.spec = sys.spec;
        out.invariant = sys.legitimate;
        out.initial = sys.legitimate_state();
    } else if (name == "election") {
        const int n = size > 0 ? size : 4;
        std::vector<int> parent(static_cast<std::size_t>(n), 0);
        for (int i = 1; i < n; ++i)
            parent[static_cast<std::size_t>(i)] = (i - 1) / 2;
        auto sys = make_leader_election(parent);
        out.space = sys.space;
        out.variants.emplace("election", sys.program);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_any);
        out.spec = sys.spec;
        out.invariant = sys.legitimate;
        out.initial = sys.legitimate_state();
    } else if (name == "termination") {
        auto sys = make_termination_detection(size > 0 ? size : 3);
        out.space = sys.space;
        out.variants.emplace("probe", sys.system);
        out.faults = std::make_unique<FaultClass>(sys.spurious_activation);
        // Spec: the detector claim as a problem specification.
        LivenessSpec live;
        live.add(LeadsTo{sys.all_passive, sys.done});
        out.spec = ProblemSpec(
            "SPEC_termination",
            SafetySpec::never((sys.done && !sys.all_passive)
                                  .renamed("lying-done")),
            std::move(live));
        out.invariant = reachable_invariant(sys.system, sys.initial);
        out.initial = sys.initial_state(
            std::vector<bool>(static_cast<std::size_t>(sys.n), true));
    } else if (name == "barrier") {
        auto sys = make_barrier(size > 0 ? size : 4);
        out.space = sys.space;
        out.variants.emplace("trusting", sys.trusting);
        out.variants.emplace("rechecking", sys.rechecking);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_witness);
        out.spec = sys.spec;
        out.initial = sys.initial_state();
        out.invariant = reachable_invariant(
            out.variants.at("rechecking"),
            Predicate("init",
                      [init = out.initial](const StateSpace&, StateIndex s) {
                          return s == init;
                      }));
    } else if (name == "abp") {
        auto sys = make_alternating_bit(size > 0 ? size : 2, 4);
        out.space = sys.space;
        out.variants.emplace("protocol", sys.protocol);
        out.faults = std::make_unique<FaultClass>(sys.loss);
        out.spec = sys.spec;
        out.initial = sys.initial_state();
        out.invariant = reachable_invariant(
            out.variants.at("protocol"),
            Predicate("init",
                      [init = out.initial](const StateSpace&, StateIndex s) {
                          return s == init;
                      }));
    } else if (name == "reset") {
        const int n = size > 0 ? size : 4;
        std::vector<int> parent(static_cast<std::size_t>(n), 0);
        for (int i = 1; i < n; ++i)
            parent[static_cast<std::size_t>(i)] = (i - 1) / 2;
        auto sys = make_distributed_reset(parent);
        out.space = sys.space;
        out.variants.emplace("reset", sys.system);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_sessions);
        out.spec = sys.spec;
        out.initial = sys.initial_state();
        out.invariant = reachable_invariant(
            out.variants.at("reset"),
            Predicate("init",
                      [init = out.initial](const StateSpace&, StateIndex s) {
                          return s == init;
                      }));
    } else {
        throw ContractError("unknown system: " + name);
    }
    return out;
}

const std::vector<std::string>& catalog_names() {
    static const std::vector<std::string> names = {
        "memory",      "tmr",     "byzantine", "token-ring", "spanning-tree",
        "election",    "termination", "barrier", "reset",    "abp"};
    return names;
}

obs::ReportQuery tolerance_query(const std::string& system,
                                 const std::string& variant,
                                 const std::string& grade,
                                 const ToleranceReport& report) {
    obs::ReportQuery q;
    q.name = system + "/" + variant + "/" + grade;
    q.system = system;
    q.variant = variant;
    q.grade = grade;
    q.ok = report.ok();
    q.reason = report.reason();
    q.invariant_size = report.invariant_size;
    q.span_size = report.span_size;
    if (!report.ok() && !report.counterexample().empty()) {
        q.witness_kind = "counterexample";
        q.witness = report.counterexample();
    } else if (report.ok() && !report.deepest_trace.empty()) {
        q.witness_kind = "exploration";
        q.witness = report.deepest_trace;
    }
    return q;
}

namespace {

obs::QueryStatsBlock stats_block(const SummaryStats& stats) {
    obs::QueryStatsBlock block;
    block.count = stats.count();
    block.mean = stats.mean();  // NaN (→ null) when empty
    block.p50 = stats.p50();
    block.p90 = stats.p90();
    block.p99 = stats.p99();
    return block;
}

}  // namespace

GradedBlocks graded_blocks(const SystemInstance& sys, const Program& variant,
                           const ToleranceEstimateOptions& mc_options) {
    GradedBlocks out;

    const MaskingDistanceResult game =
        masking_distance(variant, *sys.faults, sys.spec, sys.invariant);
    out.masking_distance.masking = game.masking;
    out.masking_distance.distance = game.distance;
    out.masking_distance.game_nodes = game.game_nodes;
    out.masking_distance.game_layers = game.game_layers;
    out.masking_distance.witness_faults = game.witness_faults();
    out.game_reason = game.reason;

    const ToleranceEstimate est =
        estimate_tolerance(variant, *sys.faults, sys.spec, sys.invariant,
                           sys.initial, mc_options);
    out.monte_carlo.runs = est.batch.runs;
    out.monte_carlo.violated_runs = est.batch.violated_runs;
    out.monte_carlo.base_seed = est.options.base_seed;
    out.monte_carlo.fault_probability = est.options.fault_probability;
    out.monte_carlo.max_steps = est.options.max_steps;
    out.monte_carlo.max_faults = est.options.max_faults;
    out.monte_carlo.violation_rate = est.violation_rate();
    out.monte_carlo.time_to_violation = stats_block(est.time_to_violation());
    out.monte_carlo.time_to_recovery = stats_block(est.time_to_recovery());
    out.monte_carlo.faults_absorbed = stats_block(est.faults_absorbed());
    return out;
}

}  // namespace dcft::apps
