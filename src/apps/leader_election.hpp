// Self-stabilizing leader election on a rooted tree — another application
// from the paper's list (Sections 1 and 7), built compositionally from two
// correctors layered the way the paper's hierarchical constructions work:
// an aggregation corrector that computes the maximum id bottom-up, and a
// broadcast corrector that propagates the elected id top-down. The second
// corrector's correction predicate depends on the first one's — the
// "corrector hierarchy" shape.
//
// Model. A tree on n nodes (parent[0] == 0 marks the root); node i has a
// distinct id (a permutation of 0..n-1).
//   agg.i in {0..n-1} : max id seen in i's subtree
//   ldr.i in {0..n-1} : i's view of the leader
//   agg.i :: agg.i != max(id.i, max agg.c : c child of i) --> fix it
//   ldr.0 :: ldr.0 != agg.0                               --> ldr.0 := agg.0
//   ldr.i :: ldr.i != ldr.parent(i)                       --> copy parent
//
// Legitimate: every agg.i is the true subtree maximum and every ldr.i is
// the global maximum id.
#pragma once

#include <memory>
#include <vector>

#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct LeaderElectionSystem {
    std::shared_ptr<const StateSpace> space;
    std::vector<int> parent;  ///< parent[i]; parent[0] == 0 (root)
    std::vector<Value> id;    ///< distinct ids, a permutation of 0..n-1

    Program program;
    FaultClass corrupt_any;  ///< corrupts any agg.i / ldr.i

    ProblemSpec spec;
    Predicate legitimate;
    Predicate aggregation_correct;  ///< X of the first corrector
    Predicate leader_agreed;        ///< X of the second corrector

    Value true_leader;  ///< max id

    StateIndex legitimate_state() const;

    std::vector<VarId> agg, ldr;
};

/// Builds the system. `parent` must describe a tree rooted at 0; `id` must
/// be a permutation of 0..n-1 (empty = identity).
LeaderElectionSystem make_leader_election(std::vector<int> parent,
                                          std::vector<Value> id = {});

}  // namespace dcft::apps
