// Distributed termination detection — on the paper's application list
// (Sections 1 and 7) and the quintessential *detector*: the detection
// predicate is "the underlying computation has terminated" (all processes
// passive — a closed predicate), the witness is the initiator's `done`
// flag, and the component is the Dijkstra-Feijen-van Gasteren probe ring.
//
// Model. n processes on a ring; process 0 is the initiator.
//   active.i in {0,1}   — the underlying computation's activity
//   colour.i in {white,black}
//   token    in {0..n-1} — who holds the probe token
//   tcolour  in {white,black}
//   done     in {0,1}    — the witness
//
// Underlying computation (any active process may):
//   passify.i  :: active.i --> active.i := 0
//   activate.i :: active.i --> active.j := 1 ; colour.i := black  (any j)
//
// Probe (conservative DFG variant: any activation blackens the sender):
//   pass.i (i>0) :: token=i /\ !active.i
//                   --> token := i-1 ; tcolour |= colour.i ;
//                       colour.i := white
//   judge.0      :: token=0 /\ !active.0 /\ tcolour=white AND
//                   colour.0=white /\ !done --> done := 1
//   retry.0      :: token=0 /\ !active.0 /\ (tcolour=black \/
//                   colour.0=black) --> token := n-1 ; tcolour := white ;
//                       colour.0 := white
//
// Detector claim: `done detects all-passive` from the reachable states of
// the canonical start (token at 0, everything black-free... see
// initial_state). Safeness is the DFG soundness theorem; Progress is its
// eventual-detection theorem — both discharged by the model checker here.
#pragma once

#include <memory>
#include <vector>

#include "gc/program.hpp"
#include "spec/detects.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct TerminationDetectionSystem {
    std::shared_ptr<const StateSpace> space;
    int n;

    Program system;  ///< computation || probe

    /// A fault that spuriously re-activates a passive process — the
    /// environment violating the diffusing-computation contract. The
    /// detector is *not* tolerant to it once `done` is raised (negative
    /// tests document this).
    FaultClass spurious_activation;

    Predicate all_passive;  ///< X: the detection predicate
    Predicate done;         ///< Z: the witness

    /// The canonical initial states: token at 0, token black (forces a
    /// fresh probe), done false, colours black (no stale trust).
    Predicate initial;

    StateIndex initial_state(std::vector<bool> active) const;

    std::vector<VarId> active_var, colour_var;
    VarId token_var, tcolour_var, done_var;
};

TerminationDetectionSystem make_termination_detection(int n);

}  // namespace dcft::apps
