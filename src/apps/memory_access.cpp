#include "apps/memory_access.hpp"

#include "common/check.hpp"

namespace dcft::apps {

StateIndex MemoryAccessSystem::initial_state() const {
    StateIndex s = 0;
    s = space->set(s, present_var, 1);
    s = space->set(s, data_var, bottom);
    s = space->set(s, z1_var, 0);
    return s;
}

MemoryAccessSystem make_memory_access(Value data_domain, Value correct_value) {
    DCFT_EXPECTS(data_domain >= 2, "need at least two data values");
    DCFT_EXPECTS(correct_value >= 0 && correct_value < data_domain,
                 "correct value out of domain");

    auto space_builder = std::make_shared<StateSpace>();
    const VarId present = space_builder->add_variable("present", 2);
    const VarId data = space_builder->add_variable("data", data_domain + 1);
    const VarId z1 = space_builder->add_variable("z1", 2);
    space_builder->freeze();
    std::shared_ptr<const StateSpace> space = space_builder;

    const Value bottom = data_domain;  // last value of `data` is bot
    const Value v = correct_value;

    const Predicate x1 =
        Predicate::var_eq(*space, "present", 1).renamed("X1(present)");
    const Predicate z1_pred =
        Predicate::var_eq(*space, "z1", 1).renamed("Z1");
    const Predicate u1 = (implies(z1_pred, x1)).renamed("U1(z1=>present)");
    const Predicate s_inv = (u1 && x1).renamed("S(U1&&X1)");

    // read :: true --> data := (present ? V : arbitrary)
    Action read = Action::nondet(
        "read", Predicate::top(),
        [present, data, v, data_domain](const StateSpace& sp, StateIndex st,
                                        std::vector<StateIndex>& out) {
            if (sp.get(st, present) == 1) {
                out.push_back(sp.set(st, data, v));
            } else {
                for (Value c = 0; c < data_domain; ++c)
                    out.push_back(sp.set(st, data, c));
            }
        });

    Program p(space, space->varset({"present", "data"}), "p");
    p.add_action(read);

    // Detector D1: pf1 :: present /\ !z1 --> z1 := true.
    Program detector(space, space->varset({"present", "z1"}), "D1");
    detector.add_action(Action::assign_const(
        *space, "pf1", x1 && !z1_pred, "z1", 1));

    // pf = D1 ;_Z1 p  (Figure 1).
    Program pf = sequence(detector, z1_pred, p).renamed("pf");

    // Corrector C1: pn1 :: !present --> present := true (re-fetch <addr,->).
    Program corrector(space, space->varset({"present"}), "C1");
    corrector.add_action(Action::assign_const(
        *space, "pn1", !x1, "present", 1));

    // pn = C1 || p  (Figure 2).
    Program pn = parallel(corrector, p).renamed("pn");

    // pm = C1 || (D1 ;_Z1 p)  (Figure 3): pm1 = pn1, pm2 = pf1, pm3 = pf2.
    Program pm = parallel(corrector, pf).renamed("pm");

    // Page fault: removes <addr, val>, but only "initially" — before the
    // detector has witnessed presence (see header comment).
    FaultClass fault(space, "page-fault");
    fault.add_action(Action::assign_const(*space, "page-fault",
                                          x1 && !z1_pred, "present", 0));

    FaultClass unrestricted(space, "unrestricted-page-fault");
    unrestricted.add_action(
        Action::assign_const(*space, "page-fault-any", x1, "present", 0));

    // SPEC_mem: never set data to a value other than V; eventually data = V.
    const Predicate data_correct =
        Predicate::var_eq(*space, "data", v).renamed("data==V");
    SafetySpec never_wrong(
        "never-set-data-incorrectly", Predicate::bottom(),
        [data, v](const StateSpace& sp, StateIndex from, StateIndex to) {
            const Value before = sp.get(from, data);
            const Value after = sp.get(to, data);
            return after != before && after != v;
        });
    LivenessSpec live;
    live.add_eventually(data_correct);
    ProblemSpec spec("SPEC_mem", std::move(never_wrong), std::move(live));

    return MemoryAccessSystem{space,
                              std::move(p),
                              std::move(pf),
                              std::move(pn),
                              std::move(pm),
                              std::move(fault),
                              std::move(unrestricted),
                              std::move(spec),
                              x1,
                              z1_pred,
                              u1,
                              s_inv,
                              v,
                              bottom,
                              present,
                              data,
                              z1};
}

}  // namespace dcft::apps
