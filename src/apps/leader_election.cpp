#include "apps/leader_election.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace dcft::apps {
namespace {

std::vector<std::vector<int>> children_of(const std::vector<int>& parent) {
    std::vector<std::vector<int>> children(parent.size());
    for (std::size_t i = 1; i < parent.size(); ++i)
        children[static_cast<std::size_t>(parent[i])].push_back(
            static_cast<int>(i));
    return children;
}

/// The value node i's aggregation rule assigns right now.
Value agg_target(const StateSpace& sp, StateIndex s,
                 const std::vector<VarId>& agg,
                 const std::vector<int>& children, Value own_id) {
    Value best = own_id;
    for (int c : children)
        best = std::max(best, sp.get(s, agg[static_cast<std::size_t>(c)]));
    return best;
}

/// True subtree maxima. Because parent[i] < i, a single reverse sweep
/// folds every node into its parent after its own subtree is complete.
std::vector<Value> subtree_maxima(const std::vector<int>& parent,
                                  const std::vector<Value>& id) {
    std::vector<Value> maxima = id;
    for (std::size_t i = parent.size(); i-- > 1;)
        maxima[static_cast<std::size_t>(parent[i])] = std::max(
            maxima[static_cast<std::size_t>(parent[i])], maxima[i]);
    return maxima;
}

}  // namespace

StateIndex LeaderElectionSystem::legitimate_state() const {
    const std::vector<Value> maxima = subtree_maxima(parent, id);
    StateIndex s = 0;
    for (std::size_t i = 0; i < agg.size(); ++i) {
        s = space->set(s, agg[i], maxima[i]);
        s = space->set(s, ldr[i], true_leader);
    }
    return s;
}

LeaderElectionSystem make_leader_election(std::vector<int> parent,
                                          std::vector<Value> id) {
    const int n = static_cast<int>(parent.size());
    DCFT_EXPECTS(n >= 2, "need at least 2 nodes");
    DCFT_EXPECTS(parent[0] == 0, "node 0 must be the root");
    for (int i = 1; i < n; ++i)
        DCFT_EXPECTS(parent[static_cast<std::size_t>(i)] >= 0 &&
                         parent[static_cast<std::size_t>(i)] < i,
                     "parent[] must define a tree (parent[i] < i)");
    if (id.empty()) {
        id.resize(static_cast<std::size_t>(n));
        std::iota(id.begin(), id.end(), Value{0});
    }
    DCFT_EXPECTS(static_cast<int>(id.size()) == n, "one id per node");

    auto builder = std::make_shared<StateSpace>();
    std::vector<VarId> agg, ldr;
    for (int i = 0; i < n; ++i)
        agg.push_back(builder->add_variable("agg." + std::to_string(i), n));
    for (int i = 0; i < n; ++i)
        ldr.push_back(builder->add_variable("ldr." + std::to_string(i), n));
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;

    const auto children = children_of(parent);
    const std::vector<Value> maxima = subtree_maxima(parent, id);
    const Value leader = maxima[0];

    Program program(space, "leader-election(n=" + std::to_string(n) + ")");
    for (int i = 0; i < n; ++i) {
        const auto kids = children[static_cast<std::size_t>(i)];
        const VarId ai = agg[static_cast<std::size_t>(i)];
        const Value own = id[static_cast<std::size_t>(i)];
        const auto aggv = agg;
        program.add_action(Action::assign(
            *space, "agg." + std::to_string(i),
            Predicate("agg-stale." + std::to_string(i),
                      [aggv, kids, ai, own](const StateSpace& sp,
                                            StateIndex s) {
                          return sp.get(s, ai) !=
                                 agg_target(sp, s, aggv, kids, own);
                      }),
            "agg." + std::to_string(i),
            [aggv, kids, own](const StateSpace& sp, StateIndex s) {
                return agg_target(sp, s, aggv, kids, own);
            }));
    }
    {
        const VarId l0 = ldr[0], a0 = agg[0];
        program.add_action(Action::assign(
            *space, "ldr.0",
            Predicate("ldr-stale.0",
                      [l0, a0](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, l0) != sp.get(s, a0);
                      }),
            "ldr.0",
            [a0](const StateSpace& sp, StateIndex s) {
                return sp.get(s, a0);
            }));
    }
    for (int i = 1; i < n; ++i) {
        const VarId li = ldr[static_cast<std::size_t>(i)];
        const VarId lp = ldr[static_cast<std::size_t>(
            parent[static_cast<std::size_t>(i)])];
        program.add_action(Action::assign(
            *space, "ldr." + std::to_string(i),
            Predicate("ldr-stale." + std::to_string(i),
                      [li, lp](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, li) != sp.get(s, lp);
                      }),
            "ldr." + std::to_string(i),
            [lp](const StateSpace& sp, StateIndex s) {
                return sp.get(s, lp);
            }));
    }

    FaultClass fault(space, "corrupt-election-state");
    {
        std::vector<VarId> all = agg;
        all.insert(all.end(), ldr.begin(), ldr.end());
        fault.add_action(Action::nondet(
            "corrupt", Predicate::top(),
            [all, n](const StateSpace& sp, StateIndex s,
                     std::vector<StateIndex>& out) {
                for (VarId v : all) {
                    const Value cur = sp.get(s, v);
                    for (Value c = 0; c < n; ++c)
                        if (c != cur) out.push_back(sp.set(s, v, c));
                }
            }));
    }

    Predicate aggregation_correct(
        "aggregation-correct",
        [agg, maxima](const StateSpace& sp, StateIndex s) {
            for (std::size_t i = 0; i < agg.size(); ++i)
                if (sp.get(s, agg[i]) != maxima[i]) return false;
            return true;
        });
    Predicate leader_agreed(
        "leader-agreed", [ldr, leader](const StateSpace& sp, StateIndex s) {
            for (VarId v : ldr)
                if (sp.get(s, v) != leader) return false;
            return true;
        });
    Predicate legitimate =
        (aggregation_correct && leader_agreed).renamed("election-legitimate");

    SafetySpec safety = SafetySpec::closure(legitimate);
    LivenessSpec live;
    live.add_eventually(legitimate);
    ProblemSpec spec("SPEC_election", std::move(safety), std::move(live));

    return LeaderElectionSystem{space,
                                std::move(parent),
                                std::move(id),
                                std::move(program),
                                std::move(fault),
                                std::move(spec),
                                std::move(legitimate),
                                std::move(aggregation_correct),
                                std::move(leader_agreed),
                                leader,
                                std::move(agg),
                                std::move(ldr)};
}

}  // namespace dcft::apps
