// Dijkstra's K-state token ring (Dijkstra, CACM 1974) — the program whose
// correctness the paper reports proving compositionally with its PVS
// encoding of this theory (Section 7). It is the canonical *corrector*:
// with Z = X = "exactly one privilege", the ring refines 'Z corrects X'
// from true — the Arora-Gouda closure-and-convergence special case the
// Remark in Section 4.1 identifies.
//
// Model. n processes in a ring, x.i in {0..K-1}.
//   bottom (i = 0) :: x.0 = x.{n-1}  --> x.0 := x.0 + 1 mod K
//   other  (i > 0) :: x.i != x.{i-1} --> x.i := x.{i-1}
// A process is privileged iff its action is enabled. The legitimate states
// S have exactly one privilege; transient faults corrupt any x.i
// arbitrarily; the ring converges back to S when K >= n.
//
// SPEC_token: safety — always exactly one privilege; liveness — every
// process is privileged again and again (token circulation).
#pragma once

#include <memory>

#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::apps {

struct TokenRingSystem {
    std::shared_ptr<const StateSpace> space;
    int n;    ///< number of processes
    Value k;  ///< counter modulus K

    Program ring;
    FaultClass corrupt_any;  ///< sets any x.i to any value

    ProblemSpec spec;      ///< SPEC_token
    Predicate legitimate;  ///< S: exactly one privilege

    /// Process i holds the privilege (its action is enabled).
    Predicate privilege(int i) const;

    /// A legitimate start: all counters equal (bottom is privileged).
    StateIndex initial_state() const;

    std::vector<VarId> x;
};

/// Builds the ring; K >= n is Dijkstra's stabilization requirement (the
/// verifier demonstrates failure for K < n — see the tests).
TokenRingSystem make_token_ring(int n, Value k);

}  // namespace dcft::apps
