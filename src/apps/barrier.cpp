#include "apps/barrier.hpp"

#include "common/check.hpp"
#include "gc/composition.hpp"

namespace dcft::apps {
namespace {

bool is_power_of_two(int n) { return n >= 1 && (n & (n - 1)) == 0; }

}  // namespace

StateIndex BarrierSystem::initial_state() const { return 0; }

BarrierSystem make_barrier(int n) {
    DCFT_EXPECTS(n >= 2 && is_power_of_two(n),
                 "barrier needs a power-of-two worker count");

    auto builder = std::make_shared<StateSpace>();
    std::vector<VarId> arrived;
    for (int i = 0; i < n; ++i)
        arrived.push_back(
            builder->add_variable("arrived." + std::to_string(i), 2));
    // Heap-indexed witness tree over the leaves: nodes 1..n-1 are internal
    // (node k has children 2k, 2k+1; nodes n..2n-1 are the leaves
    // arrived.(k-n)). w[0] is a placeholder.
    std::vector<VarId> w(static_cast<std::size_t>(n), VarId{0});
    for (int k = 1; k < n; ++k)
        w[static_cast<std::size_t>(k)] =
            builder->add_variable("w." + std::to_string(k), 2);
    const VarId round = builder->add_variable("round", 2);
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;

    // child-value: witness bit for internal children, arrived bit for
    // leaf children.
    auto child_value = [n, arrived, w](const StateSpace& sp, StateIndex s,
                                       int node) -> Value {
        if (node >= n)
            return sp.get(s, arrived[static_cast<std::size_t>(node - n)]);
        return sp.get(s, w[static_cast<std::size_t>(node)]);
    };

    Program workers(space, "workers");
    for (int i = 0; i < n; ++i) {
        const std::string is = std::to_string(i);
        workers.add_action(Action::assign_const(
            *space, "work." + is,
            Predicate::var_eq(*space, "arrived." + is, 0), "arrived." + is,
            1));
    }

    Program detectors(space, "witness-tree");
    for (int k = 1; k < n; ++k) {
        const std::string ks = std::to_string(k);
        const Predicate children_true(
            "children-true." + ks,
            [child_value, k](const StateSpace& sp, StateIndex s) {
                return child_value(sp, s, 2 * k) == 1 &&
                       child_value(sp, s, 2 * k + 1) == 1;
            });
        detectors.add_action(Action::assign_const(
            *space, "watch." + ks,
            children_true && Predicate::var_eq(*space, "w." + ks, 0),
            "w." + ks, 1));
    }

    Predicate all_arrived("all-arrived",
                          [arrived](const StateSpace& sp, StateIndex s) {
                              for (VarId a : arrived)
                                  if (sp.get(s, a) == 0) return false;
                              return true;
                          });
    const Predicate root_witness =
        Predicate::var_eq(*space, "w.1", 1).renamed("w.root");

    // Release: flip the round and clear every flag and witness, in one
    // atomic statement (releasing a barrier is a synchronization point).
    auto release_effect = [arrived, w, round, n](const StateSpace& sp,
                                                 StateIndex s) {
        StateIndex t = sp.set(s, round, 1 - sp.get(s, round));
        for (VarId a : arrived) t = sp.set(t, a, 0);
        for (int k = 1; k < n; ++k)
            t = sp.set(t, w[static_cast<std::size_t>(k)], 0);
        return t;
    };

    Program trusting = parallel(workers, detectors).renamed("trusting");
    trusting.add_action(Action("release", root_witness, release_effect));

    Program rechecking =
        parallel(workers, detectors).renamed("rechecking");
    rechecking.add_action(Action("release",
                                 root_witness && all_arrived,
                                 release_effect));

    FaultClass fault(space, "corrupt-witness");
    const Predicate some_witness_clear(
        "some-witness-clear", [w, n](const StateSpace& sp, StateIndex s) {
            for (int k = 1; k < n; ++k)
                if (sp.get(s, w[static_cast<std::size_t>(k)]) == 0)
                    return true;
            return false;
        });
    fault.add_action(Action::nondet(
        "flip-witness", some_witness_clear,
        [w, n](const StateSpace& sp, StateIndex s,
               std::vector<StateIndex>& out) {
            for (int k = 1; k < n; ++k) {
                const VarId v = w[static_cast<std::size_t>(k)];
                if (sp.get(s, v) == 0) out.push_back(sp.set(s, v, 1));
            }
        }));

    // Safety: a release (round change) only from an all-arrived state.
    SafetySpec safety(
        "no-early-release", Predicate::bottom(),
        [round, arrived](const StateSpace& sp, StateIndex from,
                         StateIndex to) {
            if (sp.get(from, round) == sp.get(to, round)) return false;
            for (VarId a : arrived)
                if (sp.get(from, a) == 0) return true;
            return false;
        });
    LivenessSpec live;
    // The barrier keeps cycling: each round parity recurs.
    live.add(LeadsTo{Predicate::var_eq(*space, "round", 0),
                     Predicate::var_eq(*space, "round", 1)});
    live.add(LeadsTo{Predicate::var_eq(*space, "round", 1),
                     Predicate::var_eq(*space, "round", 0)});
    ProblemSpec spec("SPEC_barrier", std::move(safety), std::move(live));

    Predicate truthful(
        "witnesses-truthful",
        [child_value, w, n](const StateSpace& sp, StateIndex s) {
            for (int k = n - 1; k >= 1; --k) {
                if (sp.get(s, w[static_cast<std::size_t>(k)]) == 1 &&
                    (child_value(sp, s, 2 * k) == 0 ||
                     child_value(sp, s, 2 * k + 1) == 0))
                    return false;
            }
            return true;
        });

    return BarrierSystem{space,
                         n,
                         std::move(trusting),
                         std::move(rechecking),
                         std::move(fault),
                         std::move(spec),
                         std::move(all_arrived),
                         root_witness,
                         std::move(truthful),
                         std::move(arrived),
                         std::move(w),
                         round};
}

}  // namespace dcft::apps
