#include "spec/corrects.hpp"

namespace dcft {

ProblemSpec corrects_spec(const Predicate& z, const Predicate& x) {
    const Predicate z_or_not_x =
        (z || !x).renamed("(" + z.name() + " || !" + x.name() + ")");
    SafetySpec safety = SafetySpec::conjunction(
        {SafetySpec::closure(x),
         SafetySpec::never((z && !x).renamed("(" + z.name() + " && !" +
                                             x.name() + ")")),
         SafetySpec::pair(z, z_or_not_x)},
        "convergence&&safeness&&stability(" + z.name() + " corrects " +
            x.name() + ")");
    LivenessSpec liveness;
    liveness.add_eventually(x);
    liveness.add(LeadsTo{x, z_or_not_x});
    return ProblemSpec(z.name() + " corrects " + x.name(), std::move(safety),
                       std::move(liveness));
}

}  // namespace dcft
