// LivenessSpec is header-only; this TU anchors the target in the build.
#include "spec/liveness.hpp"
