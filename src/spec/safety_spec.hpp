// Safety specifications (Section 2.2 of the paper).
//
// The paper's problem specifications are suffix closed and fusion closed
// (Assumption 1). A key consequence — the content of Lemma 3.2 — is that a
// suffix-closed, fusion-closed *safety* specification is transition-local:
// whether a prefix "maintains" the specification depends only on its last
// state (and last transition), not on how that state was reached. We
// therefore represent a safety specification by two predicates:
//
//   bad_state(s)       — s can appear in no sequence of the specification;
//   bad_transition(s,t)— the step s -> t appears in no sequence.
//
// A sequence is in the specification iff it has no bad state and no bad
// transition. `maintains` of a prefix is then a fold over its steps, which
// is exactly the algebra Lemmas 3.1/3.2/5.1 prove; the test suite checks
// those lemmas against this representation on randomized instances.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gc/predicate.hpp"

namespace dcft {

/// A suffix-closed, fusion-closed safety specification.
class SafetySpec {
public:
    using TransitionFn =
        std::function<bool(const StateSpace&, StateIndex, StateIndex)>;

    /// The trivially true safety specification (all sequences).
    SafetySpec();

    /// From a bad-state predicate and a bad-transition relation (either may
    /// be omitted; a null TransitionFn means "no transition is bad").
    SafetySpec(std::string name, Predicate bad_state, TransitionFn bad_transition);

    /// "Never P": sequences containing no state satisfying P.
    static SafetySpec never(const Predicate& p);

    /// The paper's generalized pair ({S},{R}): if S holds at s_j then R
    /// holds at s_{j+1}. As a safety spec: transition s->t is bad iff
    /// S(s) and not R(t).
    static SafetySpec pair(const Predicate& s, const Predicate& r);

    /// The paper's closure cl(S): once S holds it holds forever.
    /// Equivalent to pair(S, S).
    static SafetySpec closure(const Predicate& s);

    /// Conjunction (intersection of the sequence sets).
    static SafetySpec conjunction(std::vector<SafetySpec> parts,
                                  std::string name = "");

    const std::string& name() const;

    bool state_allowed(const StateSpace& space, StateIndex s) const;
    bool transition_allowed(const StateSpace& space, StateIndex from,
                            StateIndex to) const;

    /// Whether the finite sequence `states` is a prefix of some sequence in
    /// the specification — the paper's `maintains`. By transition-locality
    /// this holds iff every state and every step is allowed.
    bool maintains(const StateSpace& space,
                   std::span<const StateIndex> states) const;

    /// Whether the specification is transition-free: no bad-transition
    /// relation anywhere (recursively through conjunctions). For such
    /// specs a computation violates safety iff it *reaches* a state
    /// satisfying bad_states() — the shape the early-exit exploration
    /// exploits (a violation is then a reachability fact, independent of
    /// the path taken). never() specs and their conjunctions qualify;
    /// pair()/closure() specs do not.
    bool state_only() const;

    /// Disjunction of every bad-state predicate (recursively through
    /// conjunctions); Predicate::bottom() when there is none. For
    /// state_only() specifications this is the exact violation set.
    Predicate bad_states() const;

private:
    struct Impl;
    std::shared_ptr<const Impl> impl_;
};

}  // namespace dcft
