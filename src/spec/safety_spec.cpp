#include "spec/safety_spec.hpp"

#include "common/check.hpp"

namespace dcft {

struct SafetySpec::Impl {
    std::string name;
    Predicate bad_state;                // default-constructed = "true"? no:
    bool has_bad_state = false;
    TransitionFn bad_transition;        // null = no bad transitions
    std::vector<SafetySpec> parts;      // for conjunctions
};

SafetySpec::SafetySpec() {
    auto impl = std::make_shared<Impl>();
    impl->name = "true-safety";
    impl_ = std::move(impl);
}

SafetySpec::SafetySpec(std::string name, Predicate bad_state,
                       TransitionFn bad_transition) {
    auto impl = std::make_shared<Impl>();
    impl->name = std::move(name);
    impl->bad_state = std::move(bad_state);
    impl->has_bad_state = true;
    impl->bad_transition = std::move(bad_transition);
    impl_ = std::move(impl);
}

SafetySpec SafetySpec::never(const Predicate& p) {
    return SafetySpec("never(" + p.name() + ")", p, nullptr);
}

SafetySpec SafetySpec::pair(const Predicate& s, const Predicate& r) {
    return SafetySpec(
        "pair({" + s.name() + "},{" + r.name() + "})", Predicate::bottom(),
        [s, r](const StateSpace& sp, StateIndex from, StateIndex to) {
            return s.eval(sp, from) && !r.eval(sp, to);
        });
}

SafetySpec SafetySpec::closure(const Predicate& s) {
    SafetySpec out = pair(s, s);
    // Rename for readability.
    auto impl = std::make_shared<Impl>(*out.impl_);
    impl->name = "cl(" + s.name() + ")";
    out.impl_ = std::move(impl);
    return out;
}

SafetySpec SafetySpec::conjunction(std::vector<SafetySpec> parts,
                                   std::string name) {
    auto impl = std::make_shared<Impl>();
    if (name.empty()) {
        std::string joined = "(";
        for (std::size_t i = 0; i < parts.size(); ++i) {
            if (i > 0) joined += " && ";
            joined += parts[i].name();
        }
        joined += ")";
        name = std::move(joined);
    }
    impl->name = std::move(name);
    impl->parts = std::move(parts);
    SafetySpec out;
    out.impl_ = std::move(impl);
    return out;
}

const std::string& SafetySpec::name() const { return impl_->name; }

bool SafetySpec::state_allowed(const StateSpace& space, StateIndex s) const {
    if (impl_->has_bad_state && impl_->bad_state.eval(space, s)) return false;
    for (const auto& part : impl_->parts)
        if (!part.state_allowed(space, s)) return false;
    return true;
}

bool SafetySpec::transition_allowed(const StateSpace& space, StateIndex from,
                                    StateIndex to) const {
    if (impl_->bad_transition && impl_->bad_transition(space, from, to))
        return false;
    for (const auto& part : impl_->parts)
        if (!part.transition_allowed(space, from, to)) return false;
    return true;
}

bool SafetySpec::state_only() const {
    if (impl_->bad_transition) return false;
    for (const auto& part : impl_->parts)
        if (!part.state_only()) return false;
    return true;
}

Predicate SafetySpec::bad_states() const {
    bool have = false;
    Predicate out = Predicate::bottom();
    if (impl_->has_bad_state) {
        out = impl_->bad_state;
        have = true;
    }
    for (const auto& part : impl_->parts) {
        // Only fold in parts that can actually contribute a bad state, so
        // the common never(P) case keeps its clean predicate name.
        if (!part.impl_->has_bad_state && part.impl_->parts.empty()) continue;
        Predicate p = part.bad_states();
        out = have ? (out || p) : std::move(p);
        have = true;
    }
    return out;
}

bool SafetySpec::maintains(const StateSpace& space,
                           std::span<const StateIndex> states) const {
    for (std::size_t i = 0; i < states.size(); ++i) {
        if (!state_allowed(space, states[i])) return false;
        if (i + 1 < states.size() &&
            !transition_allowed(space, states[i], states[i + 1]))
            return false;
    }
    return true;
}

}  // namespace dcft
