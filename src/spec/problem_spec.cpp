#include "spec/problem_spec.hpp"

namespace dcft {

std::string to_string(Tolerance t) {
    switch (t) {
        case Tolerance::FailSafe: return "fail-safe";
        case Tolerance::Nonmasking: return "nonmasking";
        case Tolerance::Masking: return "masking";
    }
    return "?";
}

ProblemSpec ProblemSpec::converges_to(const Predicate& s, const Predicate& r) {
    SafetySpec safety = SafetySpec::conjunction(
        {SafetySpec::closure(s), SafetySpec::closure(r)},
        "cl(" + s.name() + ") && cl(" + r.name() + ")");
    LivenessSpec liveness;
    liveness.add(LeadsTo{s, r});
    return ProblemSpec(s.name() + " converges-to " + r.name(),
                       std::move(safety), std::move(liveness));
}

}  // namespace dcft
