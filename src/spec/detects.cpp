#include "spec/detects.hpp"

namespace dcft {

ProblemSpec detects_spec(const Predicate& z, const Predicate& x) {
    const Predicate z_or_not_x =
        (z || !x).renamed("(" + z.name() + " || !" + x.name() + ")");
    SafetySpec safety = SafetySpec::conjunction(
        {SafetySpec::never((z && !x).renamed("(" + z.name() + " && !" +
                                             x.name() + ")")),
         SafetySpec::pair(z, z_or_not_x)},
        "safeness&&stability(" + z.name() + " detects " + x.name() + ")");
    LivenessSpec liveness;
    liveness.add(LeadsTo{x, z_or_not_x});
    return ProblemSpec(z.name() + " detects " + x.name(), std::move(safety),
                       std::move(liveness));
}

}  // namespace dcft
