// The 'Z detects X' specification (Section 3.1 of the paper).
//
// Z is the witness predicate, X the detection predicate. The specification
// is the set of sequences satisfying
//
//   Safeness : Z => X at every state              (never Z /\ !X)
//   Progress : X ~~> (Z \/ !X)                    (liveness)
//   Stability: ({Z}, {Z \/ !X})                   (generalized pair)
//
// `detects_spec` packages these as a ProblemSpec so the generic checkers
// apply; `DetectorClaim` names the pieces of a "Z detects X in d from U"
// judgment.
#pragma once

#include "spec/problem_spec.hpp"

namespace dcft {

/// The problem specification 'Z detects X'.
ProblemSpec detects_spec(const Predicate& z, const Predicate& x);

/// A detector judgment: 'witness detects detection_predicate in program
/// from context' (the paper's `Z detects X in d from U`).
struct DetectorClaim {
    Predicate witness;    ///< Z
    Predicate detection;  ///< X
    Predicate context;    ///< U — the invariant the judgment is made from
};

}  // namespace dcft
