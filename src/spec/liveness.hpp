// Liveness specifications.
//
// The liveness obligations that appear in the paper's specifications —
// "converges to" (Section 2.2), the Progress condition of detectors
// (Section 3.1), and the Convergence condition of correctors (Section 4.1)
// — are all of the leads-to form: whenever P holds, Q eventually holds.
// A LivenessSpec is a conjunction of such obligations. The verifier decides
// them over finite transition systems under the paper's weak fairness
// (Section 2.1: every continuously enabled action is eventually executed),
// including the maximality condition for finite computations.
#pragma once

#include <string>
#include <vector>

#include "gc/predicate.hpp"

namespace dcft {

/// One leads-to obligation: every computation state satisfying `from` is
/// eventually followed by a state satisfying `to`.
struct LeadsTo {
    Predicate from;
    Predicate to;

    std::string name() const {
        return from.name() + " ~~> " + to.name();
    }
};

/// Conjunction of leads-to obligations.
class LivenessSpec {
public:
    LivenessSpec() = default;

    void add(LeadsTo obligation) { obligations_.push_back(std::move(obligation)); }

    /// "Eventually Q" == true ~~> Q.
    void add_eventually(const Predicate& q) {
        obligations_.push_back(LeadsTo{Predicate::top(), q});
    }

    const std::vector<LeadsTo>& obligations() const { return obligations_; }
    bool empty() const { return obligations_.empty(); }

private:
    std::vector<LeadsTo> obligations_;
};

}  // namespace dcft
