// The 'Z corrects X' specification (Section 4.1 of the paper).
//
// Z is the witness predicate, X the correction predicate. The specification
// adds Convergence to the three detector conditions:
//
//   Convergence: eventually X holds forever, and X is closed along the
//                sequence — as safety cl(X) plus liveness (true ~~> X);
//   Safeness   : Z => X at every state;
//   Progress   : X ~~> (Z \/ !X);
//   Stability  : ({Z}, {Z \/ !X}).
#pragma once

#include "spec/problem_spec.hpp"

namespace dcft {

/// The problem specification 'Z corrects X'.
ProblemSpec corrects_spec(const Predicate& z, const Predicate& x);

/// A corrector judgment: 'witness corrects correction_predicate in program
/// from context' (the paper's `Z corrects X in c from U`).
struct CorrectorClaim {
    Predicate witness;     ///< Z
    Predicate correction;  ///< X
    Predicate context;     ///< U
};

}  // namespace dcft
