// Problem specifications and tolerance specifications (Sections 2.2, 2.4).
//
// A problem specification factors (Alpern-Schneider) into a safety part and
// a liveness part; dcft represents it as exactly that pair. The three
// tolerance specifications of the paper derive from it:
//
//   masking    — SPEC itself;
//   fail-safe  — the smallest safety specification containing SPEC, i.e.
//                the safety part alone;
//   nonmasking — (true)* SPEC: some suffix is in SPEC.
#pragma once

#include <string>

#include "spec/liveness.hpp"
#include "spec/safety_spec.hpp"

namespace dcft {

/// The paper's three tolerance grades (Section 2.4).
enum class Tolerance { FailSafe, Nonmasking, Masking };

std::string to_string(Tolerance t);

/// A problem specification: safety ∩ liveness.
class ProblemSpec {
public:
    ProblemSpec() = default;
    ProblemSpec(std::string name, SafetySpec safety, LivenessSpec liveness)
        : name_(std::move(name)), safety_(std::move(safety)),
          liveness_(std::move(liveness)) {}

    /// The specification "S converges to R" (Section 2.2):
    /// cl(S) ∩ cl(R) ∩ (S ~~> R).
    static ProblemSpec converges_to(const Predicate& s, const Predicate& r);

    const std::string& name() const { return name_; }
    const SafetySpec& safety() const { return safety_; }
    const LivenessSpec& liveness() const { return liveness_; }

    /// The fail-safe tolerance specification: SSPEC, the smallest safety
    /// specification containing this one (Section 2.4).
    ProblemSpec failsafe_weakening() const {
        return ProblemSpec("failsafe(" + name_ + ")", safety_, LivenessSpec{});
    }

private:
    std::string name_;
    SafetySpec safety_;
    LivenessSpec liveness_;
};

}  // namespace dcft
