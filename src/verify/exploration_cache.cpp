#include "verify/exploration_cache.hpp"

#include <exception>
#include <utility>

#include "common/env.hpp"
#include "obs/telemetry.hpp"

namespace dcft {

namespace {

/// FNV-1a over the words of a bit vector (padding bits are always zero,
/// so extensionally equal sets hash equally).
std::uint64_t hash_bits(const BitVec& bits) {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t w = 0; w < bits.num_words(); ++w) {
        h ^= bits.word(w);
        h *= 1099511628211ULL;
    }
    h ^= bits.size_bits();
    h *= 1099511628211ULL;
    return h;
}

/// Element-wise Action::id() comparison between pinned key actions and a
/// candidate action span.
bool same_actions(const std::vector<Action>& pinned,
                  std::span<const Action> actions) {
    if (pinned.size() != actions.size()) return false;
    for (std::size_t i = 0; i < pinned.size(); ++i)
        if (pinned[i].id() != actions[i].id()) return false;
    return true;
}

}  // namespace

bool exploration_cache_disabled() {
    return env_flag_enabled("DCFT_NO_EXPLORE_CACHE");
}

ExplorationCache& ExplorationCache::global() {
    static ExplorationCache cache;
    return cache;
}

std::size_t ExplorationCache::capacity() {
    if (const auto cap = env_positive_u64("DCFT_EXPLORE_CACHE_CAP"))
        return static_cast<std::size_t>(*cap);
    return 8;
}

std::shared_ptr<const TransitionSystem> ExplorationCache::get_or_build(
    const Program& program, const FaultClass* faults, const Predicate& init,
    unsigned n_threads) {
    if (exploration_cache_disabled()) {
        obs::count("verify/explore_cache/bypass");
        return std::make_shared<TransitionSystem>(program, faults, init,
                                                  n_threads);
    }
    const obs::ScopedSpan span("verify/explore_cache");

    // Materialize the initial set once: it is both the exact key
    // component and — on a miss — the seed of the exploration (passed as
    // a set-backed predicate, so the builder does not re-scan).
    const StateSpace& space = program.space();
    BitVec init_bits = [&] {
        if (const auto& b = init.backing_bits();
            b != nullptr && b->size_bits() == space.num_states())
            return *b;
        return eval_bits(space, init, n_threads);
    }();
    const std::uint64_t h = hash_bits(init_bits);

    std::promise<std::shared_ptr<const TransitionSystem>> builder;
    std::uint64_t token = 0;
    std::shared_future<std::shared_ptr<const TransitionSystem>> resident;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            const Key& k = it->key;
            if (k.space_uid != space.uid() || k.init_hash != h ||
                k.program_name != program.name() ||
                !same_actions(k.program_actions, program.actions()) ||
                k.has_faults != (faults != nullptr))
                continue;
            if (faults != nullptr &&
                (k.fault_name != faults->name() ||
                 !same_actions(k.fault_actions, faults->actions())))
                continue;
            if (!(k.init_bits == init_bits)) continue;  // collision guard
            obs::count("verify/explore_cache/hits");
            entries_.splice(entries_.begin(), entries_, it);  // LRU bump
            resident = it->ts;
            break;
        }
        if (!resident.valid()) {
            obs::count("verify/explore_cache/misses");

            // Miss: insert an in-flight entry so concurrent requests for
            // this key dedup onto our build, then release the lock and
            // explore.
            Key key{space.uid(),
                    program.name(),
                    {program.actions().begin(), program.actions().end()},
                    faults != nullptr,
                    faults != nullptr ? faults->name() : std::string{},
                    faults != nullptr
                        ? std::vector<Action>{faults->actions().begin(),
                                              faults->actions().end()}
                        : std::vector<Action>{},
                    h,
                    init_bits};
            token = ++next_token_;
            entries_.push_front(
                Entry{std::move(key), token, builder.get_future().share()});
            const std::size_t cap = capacity();
            while (entries_.size() > cap) {
                obs::count("verify/explore_cache/evictions");
                entries_.pop_back();
            }
        }
    }
    // Hit (possibly on an in-flight entry): wait outside the lock.
    if (resident.valid()) return resident.get();

    // Build outside the lock: one large exploration never blocks hits or
    // unrelated builds.
    try {
        auto bits = std::make_shared<const BitVec>(std::move(init_bits));
        const Predicate seeded = Predicate::from_bits(init.name(), bits);
        auto ts = std::make_shared<const TransitionSystem>(program, faults,
                                                           seeded, n_threads);
        builder.set_value(ts);
        return ts;
    } catch (...) {
        builder.set_exception(std::current_exception());
        remove_entry(token);
        throw;
    }
}

void ExplorationCache::remove_entry(std::uint64_t token) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->token == token) {
            entries_.erase(it);
            return;
        }
    }
}

void ExplorationCache::clear() {
    // Destroy entries outside the lock: an entry's future may be the last
    // reference to a TransitionSystem whose destructor is nontrivial.
    std::list<Entry> doomed;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        doomed.swap(entries_);
    }
}

std::size_t ExplorationCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

}  // namespace dcft
