#include "verify/exploration_cache.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "common/env.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "verify/graph_store.hpp"

namespace dcft {

namespace {

/// FNV-1a over the words of a bit vector (padding bits are always zero,
/// so extensionally equal sets hash equally).
std::uint64_t hash_bits(const BitVec& bits) {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t w = 0; w < bits.num_words(); ++w) {
        h ^= bits.word(w);
        h *= 1099511628211ULL;
    }
    h ^= bits.size_bits();
    h *= 1099511628211ULL;
    return h;
}

/// Element-wise Action::id() comparison between pinned key actions and a
/// candidate action span.
bool same_actions(const std::vector<Action>& pinned,
                  std::span<const Action> actions) {
    if (pinned.size() != actions.size()) return false;
    for (std::size_t i = 0; i < pinned.size(); ++i)
        if (pinned[i].id() != actions[i].id()) return false;
    return true;
}

}  // namespace

bool exploration_cache_disabled() {
    return env_flag_enabled("DCFT_NO_EXPLORE_CACHE");
}

bool ExplorationCache::matches(const Key& k, const StateSpace& space,
                               const Program& program,
                               const FaultClass* faults,
                               std::uint64_t init_hash,
                               const BitVec& init_bits) {
    if (k.space_uid != space.uid() || k.init_hash != init_hash ||
        k.program_name != program.name() ||
        !same_actions(k.program_actions, program.actions()) ||
        k.has_faults != (faults != nullptr))
        return false;
    if (faults != nullptr &&
        (k.fault_name != faults->name() ||
         !same_actions(k.fault_actions, faults->actions())))
        return false;
    return k.init_bits == init_bits;  // collision guard
}

ExplorationCache::Key ExplorationCache::make_key(const StateSpace& space,
                                                 const Program& program,
                                                 const FaultClass* faults,
                                                 std::uint64_t init_hash,
                                                 BitVec init_bits) {
    return Key{space.uid(),
               program.name(),
               {program.actions().begin(), program.actions().end()},
               faults != nullptr,
               faults != nullptr ? faults->name() : std::string{},
               faults != nullptr
                   ? std::vector<Action>{faults->actions().begin(),
                                         faults->actions().end()}
                   : std::vector<Action>{},
               init_hash,
               std::move(init_bits)};
}

ExplorationCache& ExplorationCache::global() {
    static ExplorationCache cache;
    return cache;
}

std::size_t ExplorationCache::capacity() {
    if (const auto cap = env_positive_u64("DCFT_EXPLORE_CACHE_CAP"))
        return static_cast<std::size_t>(*cap);
    return 8;
}

std::uint64_t ExplorationCache::byte_budget() {
    return env_positive_u64("DCFT_EXPLORE_CACHE_BYTES").value_or(0);
}

std::uint64_t ExplorationCache::resident_bytes() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const Entry& e : entries_) total += e.bytes;
    return total;
}

void ExplorationCache::note_ready_bytes(std::uint64_t token,
                                        std::uint64_t bytes) {
    const std::uint64_t budget = byte_budget();
    // Evicted entries are destroyed outside the lock: an entry's future
    // may hold the last reference to a large TransitionSystem.
    std::list<Entry> doomed;
    std::uint64_t total = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (Entry& e : entries_) {
            if (e.token == token) e.bytes = bytes;
            total += e.bytes;
        }
        if (budget != 0) {
            auto it = entries_.end();
            while (total > budget && it != entries_.begin()) {
                --it;
                if (it == entries_.begin()) break;  // retain the MRU entry
                if (it->bytes == 0) continue;       // in-flight: keep
                total -= it->bytes;
                obs::count("verify/explore_cache/byte_evictions");
                auto victim = it++;
                doomed.splice(doomed.end(), entries_, victim);
            }
        }
    }
    obs::record("verify/explore_cache/resident_bytes", total);
}

std::shared_ptr<const TransitionSystem> ExplorationCache::get_or_build(
    const Program& program, const FaultClass* faults, const Predicate& init,
    unsigned n_threads) {
    if (exploration_cache_disabled()) {
        obs::count("verify/explore_cache/bypass");
        return std::make_shared<TransitionSystem>(program, faults, init,
                                                  n_threads);
    }
    const obs::ScopedSpan span("verify/explore_cache");

    // Materialize the initial set once: it is both the exact key
    // component and — on a miss — the seed of the exploration (passed as
    // a set-backed predicate, so the builder does not re-scan).
    const StateSpace& space = program.space();
    BitVec init_bits = [&] {
        if (const auto& b = init.backing_bits();
            b != nullptr && b->size_bits() == space.num_states())
            return *b;
        return eval_bits(space, init, n_threads);
    }();
    const std::uint64_t h = hash_bits(init_bits);

    std::promise<std::shared_ptr<const TransitionSystem>> builder;
    std::uint64_t token = 0;
    std::shared_future<std::shared_ptr<const TransitionSystem>> resident;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!matches(it->key, space, program, faults, h, init_bits))
                continue;
            obs::count("verify/explore_cache/hits");
            if (obs::trace_enabled()) {
                static const std::uint32_t id =
                    obs::trace_name("verify/explore_cache/hit");
                obs::trace_instant(id);
            }
            entries_.splice(entries_.begin(), entries_, it);  // LRU bump
            resident = it->ts;
            break;
        }
        if (!resident.valid()) {
            obs::count("verify/explore_cache/misses");
            if (obs::trace_enabled()) {
                static const std::uint32_t id =
                    obs::trace_name("verify/explore_cache/miss");
                obs::trace_instant(id);
            }

            // Miss: insert an in-flight entry so concurrent requests for
            // this key dedup onto our build, then release the lock and
            // explore.
            Key key = make_key(space, program, faults, h, init_bits);
            token = ++next_token_;
            entries_.push_front(
                Entry{std::move(key), token, builder.get_future().share()});
            const std::size_t cap = capacity();
            while (entries_.size() > cap) {
                obs::count("verify/explore_cache/evictions");
                entries_.pop_back();
            }
        }
    }
    // Hit (possibly on an in-flight entry): wait outside the lock.
    if (resident.valid()) return resident.get();

    // Build outside the lock: one large exploration never blocks hits or
    // unrelated builds. With a persistent store configured, try to
    // mmap-adopt a snapshot before paying the BFS; a fresh build is
    // published back for the next process.
    try {
        GraphStore* const store = GraphStore::global();
        GraphKey gkey;
        std::shared_ptr<const TransitionSystem> ts;
        if (store != nullptr) {
            gkey = graph_key(program, faults, init_bits);
            ts = store->load(gkey, program, faults);
        }
        const bool from_store = ts != nullptr;
        auto bits = std::make_shared<const BitVec>(std::move(init_bits));
        if (!from_store) {
            const Predicate seeded = Predicate::from_bits(init.name(), bits);
            ts = std::make_shared<const TransitionSystem>(program, faults,
                                                          seeded, n_threads);
        }
        builder.set_value(ts);
        note_ready_bytes(token, ts->resident_bytes());
        if (obs::trace_enabled()) {
            static const std::uint32_t id =
                obs::trace_name("verify/explore_cache/publish");
            obs::trace_instant(id, ts->num_nodes());
        }
        if (store != nullptr && !from_store) store->save(gkey, *ts);
        return ts;
    } catch (...) {
        builder.set_exception(std::current_exception());
        remove_entry(token);
        throw;
    }
}

std::shared_ptr<const TransitionSystem>
ExplorationCache::get_or_build_early_exit(const Program& program,
                                          const FaultClass* faults,
                                          const Predicate& init,
                                          const Predicate& stop_on,
                                          unsigned n_threads) {
    if (exploration_cache_disabled()) {
        obs::count("verify/explore_cache/bypass");
        ExploreOptions opts;
        opts.n_threads = n_threads;
        opts.stop_on = &stop_on;
        return std::make_shared<TransitionSystem>(program, faults, init,
                                                  opts);
    }
    const obs::ScopedSpan span("verify/explore_cache/early_exit");

    const StateSpace& space = program.space();
    BitVec init_bits = [&] {
        if (const auto& b = init.backing_bits();
            b != nullptr && b->size_bits() == space.num_states())
            return *b;
        return eval_bits(space, init, n_threads);
    }();
    const std::uint64_t h = hash_bits(init_bits);

    // Serve only already-*completed* resident builds: parking an early-exit
    // query on an in-flight full exploration could cost far more than the
    // fragment it wants, so an in-flight key match is treated as a miss.
    std::shared_future<std::shared_ptr<const TransitionSystem>> resident;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!matches(it->key, space, program, faults, h, init_bits))
                continue;
            if (it->ts.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
                obs::count("verify/explore_cache/early_exit_hits");
                if (obs::trace_enabled()) {
                    static const std::uint32_t id = obs::trace_name(
                        "verify/explore_cache/early_exit_hit");
                    obs::trace_instant(id);
                }
                entries_.splice(entries_.begin(), entries_, it);  // LRU
                resident = it->ts;
            }
            break;
        }
    }
    if (resident.valid()) return resident.get();  // full graph; caller scans
    obs::count("verify/explore_cache/early_exit_misses");
    if (obs::trace_enabled()) {
        static const std::uint32_t id =
            obs::trace_name("verify/explore_cache/early_exit_miss");
        obs::trace_instant(id);
    }

    // A stored snapshot is always a *complete* graph, so it serves the
    // early-exit query the same way a resident full graph does: adopt it,
    // publish it in memory, and let the caller scan via first_bad_node.
    GraphStore* const store = GraphStore::global();
    GraphKey gkey;
    if (store != nullptr) {
        gkey = graph_key(program, faults, init_bits);
        if (auto loaded = store->load(gkey, program, faults)) {
            std::shared_ptr<const TransitionSystem> ts = std::move(loaded);
            publish_if_absent(space, program, faults, h, init_bits, ts);
            return ts;
        }
    }

    // Build outside the lock, seeded from the materialized bits exactly as
    // get_or_build would, so a run-to-exhaustion result IS the graph the
    // full path builds (and can be published in its place).
    auto bits = std::make_shared<const BitVec>(std::move(init_bits));
    const Predicate seeded = Predicate::from_bits(init.name(), bits);
    ExploreOptions opts;
    opts.n_threads = n_threads;
    opts.stop_on = &stop_on;
    auto ts = std::make_shared<const TransitionSystem>(program, faults,
                                                       seeded, opts);
    if (!ts->complete()) {
        // Early-exit fragment: NEVER cached (a later get_or_build for this
        // key must not be served an incomplete graph) and never stored —
        // the store holds complete graphs only.
        obs::count("verify/explore_cache/early_exit_fragments");
        return ts;
    }

    // The stop predicate never fired: this is the full graph. Publish it
    // (unless a racing build of the same key got there first), and to the
    // persistent store.
    if (publish_if_absent(space, program, faults, h, *bits, ts))
        obs::count("verify/explore_cache/early_exit_published");
    if (store != nullptr) store->save(gkey, *ts);
    return ts;
}

bool ExplorationCache::publish_if_absent(
    const StateSpace& space, const Program& program, const FaultClass* faults,
    std::uint64_t init_hash, const BitVec& init_bits,
    const std::shared_ptr<const TransitionSystem>& ts) {
    std::promise<std::shared_ptr<const TransitionSystem>> ready;
    ready.set_value(ts);
    std::uint64_t token = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& e : entries_)
            if (matches(e.key, space, program, faults, init_hash, init_bits))
                return false;
        if (obs::trace_enabled()) {
            static const std::uint32_t id =
                obs::trace_name("verify/explore_cache/publish");
            obs::trace_instant(id, ts->num_nodes());
        }
        token = ++next_token_;
        entries_.push_front(Entry{make_key(space, program, faults, init_hash,
                                           init_bits),
                                  token,
                                  ready.get_future().share()});
        const std::size_t cap = capacity();
        while (entries_.size() > cap) {
            obs::count("verify/explore_cache/evictions");
            entries_.pop_back();
        }
    }
    note_ready_bytes(token, ts->resident_bytes());
    return true;
}

void ExplorationCache::remove_entry(std::uint64_t token) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->token == token) {
            entries_.erase(it);
            return;
        }
    }
}

void ExplorationCache::clear() {
    // Destroy entries outside the lock: an entry's future may be the last
    // reference to a TransitionSystem whose destructor is nontrivial.
    std::list<Entry> doomed;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        doomed.swap(entries_);
    }
}

std::size_t ExplorationCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

}  // namespace dcft
