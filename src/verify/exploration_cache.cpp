#include "verify/exploration_cache.hpp"

#include <cstdlib>

#include "obs/telemetry.hpp"

namespace dcft {

namespace {

bool env_flag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/// FNV-1a over the words of a bit vector (padding bits are always zero,
/// so extensionally equal sets hash equally).
std::uint64_t hash_bits(const BitVec& bits) {
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t w = 0; w < bits.num_words(); ++w) {
        h ^= bits.word(w);
        h *= 1099511628211ULL;
    }
    h ^= bits.size_bits();
    h *= 1099511628211ULL;
    return h;
}

std::vector<const void*> action_ids(std::span<const Action> actions) {
    std::vector<const void*> ids;
    ids.reserve(actions.size());
    for (const Action& a : actions) ids.push_back(a.id());
    return ids;
}

}  // namespace

bool exploration_cache_disabled() {
    return env_flag("DCFT_NO_EXPLORE_CACHE");
}

ExplorationCache& ExplorationCache::global() {
    static ExplorationCache cache;
    return cache;
}

std::size_t ExplorationCache::capacity() {
    const char* v = std::getenv("DCFT_EXPLORE_CACHE_CAP");
    if (v != nullptr && v[0] != '\0') {
        const long n = std::atol(v);
        if (n > 0) return static_cast<std::size_t>(n);
    }
    return 8;
}

std::shared_ptr<const TransitionSystem> ExplorationCache::get_or_build(
    const Program& program, const FaultClass* faults, const Predicate& init,
    unsigned n_threads) {
    if (exploration_cache_disabled()) {
        obs::count("verify/explore_cache/bypass");
        return std::make_shared<TransitionSystem>(program, faults, init,
                                                  n_threads);
    }
    const obs::ScopedSpan span("verify/explore_cache");

    // Materialize the initial set once: it is both the exact key
    // component and — on a miss — the seed of the exploration (passed as
    // a set-backed predicate, so the builder does not re-scan).
    const StateSpace& space = program.space();
    BitVec init_bits = [&] {
        if (const auto& b = init.backing_bits();
            b != nullptr && b->size_bits() == space.num_states())
            return *b;
        return eval_bits(space, init, n_threads);
    }();
    const std::uint64_t h = hash_bits(init_bits);
    std::vector<const void*> prog_ids = action_ids(program.actions());
    std::vector<const void*> fault_ids =
        faults != nullptr ? action_ids(faults->actions())
                          : std::vector<const void*>{};

    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->space != &space || it->init_hash != h ||
            it->program_name != program.name() ||
            it->program_actions != prog_ids ||
            it->has_faults != (faults != nullptr))
            continue;
        if (faults != nullptr && (it->fault_name != faults->name() ||
                                  it->fault_actions != fault_ids))
            continue;
        if (!(it->init_bits == init_bits)) continue;  // collision guard
        obs::count("verify/explore_cache/hits");
        entries_.splice(entries_.begin(), entries_, it);  // LRU bump
        return entries_.front().ts;
    }
    obs::count("verify/explore_cache/misses");

    // Build under the lock: concurrent requests for the same key wait and
    // then hit instead of exploring twice.
    auto bits = std::make_shared<const BitVec>(init_bits);
    const Predicate seeded = Predicate::from_bits(init.name(), bits);
    auto ts = std::make_shared<const TransitionSystem>(program, faults,
                                                       seeded, n_threads);

    Entry e{&space,
            program.name(),
            std::move(prog_ids),
            faults != nullptr,
            faults != nullptr ? faults->name() : std::string{},
            std::move(fault_ids),
            h,
            std::move(init_bits),
            ts};
    entries_.push_front(std::move(e));
    const std::size_t cap = capacity();
    while (entries_.size() > cap) {
        obs::count("verify/explore_cache/evictions");
        entries_.pop_back();
    }
    return ts;
}

void ExplorationCache::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

std::size_t ExplorationCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

}  // namespace dcft
