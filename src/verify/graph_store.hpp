// Persistent graph store: `dcft.graph` snapshots of explored transition
// systems, shared across processes and restarts.
//
// A TransitionSystem is already flat arrays (node states, BFS parents,
// CSR offsets/edges), so a snapshot is those arrays written verbatim into
// a versioned, checksummed, page-aligned file and *adopted* back by mmap
// — loading is O(mmap + checksum scan), there is no deserialization loop
// and no per-element work (see DESIGN.md §10).
//
// Keying. The in-process ExplorationCache keys entries by process-local
// identities (StateSpace::uid, Action::id). Those cannot name a file that
// outlives the process, so the store derives a *stable* 128-bit content
// fingerprint instead:
//
//   space structure   variable names + domain sizes + state count
//   program           name + per-action structural fingerprint: action
//                     name, guard name, the structured EffectForm fields,
//                     and a semantic sample — the successor sets of 64
//                     deterministic pseudo-random states per action,
//                     computed through the interpreted path
//   fault class       same, when present (plus a presence flag)
//   initial set       FNV-1a over the materialized bit words + popcount
//
// Two runs of the same system therefore agree on the key, while any edit
// to a guard, an effect, a domain, or the initial set moves it (the
// structured fields catch most edits exactly; the semantic sample catches
// kGeneric lambdas whose behavior changed).
//
// Store layout. DCFT_GRAPH_STORE=DIR holds one `<key-hex>.dcftg` file per
// graph. Writers publish atomically (temp file + rename), readers bump
// the file mtime on every hit, and after each save the writer evicts
// least-recently-used files until the directory fits the byte budget
// (DCFT_GRAPH_STORE_BYTES, default 32 GiB). Concurrent processes may race
// on publish; rename() makes either outcome a complete, identical file.
//
// Integrity. The fixed header carries magic/version/endianness, the key,
// array counts, a section table, and two checksums (header and payload).
// Loads validate all of it before adopting a single byte: a truncated,
// corrupted, or version-skewed file is *rejected* (nullptr + counter +
// reason), never crashed on and never served as a silently wrong graph.
// DCFT_GRAPH_STORE_VERIFY=0 skips the payload checksum scan for callers
// that prefer pure-mmap latency over end-to-end integrity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bitvec.hpp"
#include "gc/program.hpp"
#include "verify/transition_system.hpp"

namespace dcft {

/// Stable 128-bit content identity of (space, program, faults, init).
struct GraphKey {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    /// 32-hex-digit rendering; the store's file stem.
    std::string hex() const;

    friend bool operator==(const GraphKey&, const GraphKey&) = default;
};

/// Derives the stable fingerprint described in the file comment. The
/// initial set must be materialized over the program's full space.
GraphKey graph_key(const Program& program, const FaultClass* faults,
                   const BitVec& init_bits);

/// One snapshot directory (see file comment). Thread-safe: every method
/// is self-contained filesystem work.
class GraphStore {
public:
    /// The store named by DCFT_GRAPH_STORE, or nullptr when the variable
    /// is unset/empty. Re-reads the environment on every call (tests and
    /// the fuzz harness repoint it); the returned pointer stays valid
    /// until the next call that observes a *different* directory.
    static GraphStore* global();

    /// Opens (creating if needed) the store at `dir`. `byte_budget` of 0
    /// means unlimited.
    explicit GraphStore(std::string dir, std::uint64_t byte_budget);

    /// Loads the snapshot of `key`, reconstructing it over `program` /
    /// `faults` (which the caller has already matched to the key). On a
    /// miss or any validation failure returns nullptr; when `error` is
    /// non-null it receives the reason ("" for a plain miss).
    std::shared_ptr<TransitionSystem> load(const GraphKey& key,
                                           const Program& program,
                                           const FaultClass* faults,
                                           std::string* error = nullptr);

    /// Writes a snapshot of `ts` (which must be complete()) under `key`,
    /// atomically, then enforces the byte budget. Returns false (with
    /// `error` set) on I/O failure; an existing entry is overwritten.
    bool save(const GraphKey& key, const TransitionSystem& ts,
              std::string* error = nullptr);

    /// Whether an entry for `key` currently exists.
    bool contains(const GraphKey& key) const;

    const std::string& dir() const { return dir_; }
    std::uint64_t byte_budget() const { return byte_budget_; }

private:
    void evict(const std::string& keep_path);
    std::string path_of(const GraphKey& key) const;

    std::string dir_;
    std::uint64_t byte_budget_ = 0;
};

}  // namespace dcft
