// Checking detector and corrector judgments (Sections 3.1 and 4.1).
//
//   check_detector(d, claim)  — 'Z detects X in d from U':
//       d refines the 'Z detects X' specification from U.
//   check_corrector(c, claim) — 'Z corrects X in c from U'.
//
// The tolerant variants implement the paper's F-tolerant component notion
// (used by Theorems 3.6, 4.3, 5.5): the component refines its specification
// from the context U, and together with the fault class it refines the
// grade-weakened specification from the fault span T.
#pragma once

#include "spec/corrects.hpp"
#include "spec/detects.hpp"
#include "verify/check_result.hpp"
#include "verify/refinement.hpp"

namespace dcft {

/// 'claim.witness detects claim.detection in d from claim.context'.
CheckResult check_detector(const Program& d, const DetectorClaim& claim);

/// 'claim.witness corrects claim.correction in c from claim.context'.
CheckResult check_corrector(const Program& c, const CorrectorClaim& claim);

/// d is a grade F-tolerant detector: d refines 'Z detects X' from U, and
/// d [] F refines the grade-weakened 'Z detects X' from `span`.
/// For the nonmasking grade, recovery goes via the context U.
CheckResult check_tolerant_detector(const Program& d, const FaultClass& f,
                                    const DetectorClaim& claim,
                                    Tolerance grade, const Predicate& span);

/// c is a grade F-tolerant corrector (same shape as above).
CheckResult check_tolerant_corrector(const Program& c, const FaultClass& f,
                                     const CorrectorClaim& claim,
                                     Tolerance grade, const Predicate& span);

}  // namespace dcft
