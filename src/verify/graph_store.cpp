#include "verify/graph_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <vector>

#include "common/env.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "verify/spill.hpp"

namespace dcft {
namespace {

constexpr std::size_t kPage = 4096;
constexpr char kMagic[8] = {'D', 'C', 'F', 'T', 'G', 'R', 'F', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kEndianMark = 0x01020304u;
constexpr std::uint64_t kFlagIdentityNodes = 1;
constexpr std::uint64_t kDefaultBudget = std::uint64_t{32} << 30;  // 32 GiB

std::size_t round_up_page(std::size_t n) {
    return (n + kPage - 1) & ~(kPage - 1);
}

/// Section indices in Header::sections, in file order.
enum Section : unsigned {
    kSecStates = 0,
    kSecParent,
    kSecProgOffsets,
    kSecProgEdges,
    kSecFaultOffsets,
    kSecFaultEdges,
    kSecInitial,
    kSecFaultNames,
    kNumSections,
};

struct SectionEntry {
    std::uint64_t offset = 0;  ///< from file start; page-aligned
    std::uint64_t bytes = 0;   ///< meaningful bytes (file pads to a page)
};

/// Fixed on-disk header, one page. All integers little-endian host order;
/// kEndianMark rejects a byte-swapped reader before anything else is
/// interpreted.
struct Header {
    char magic[8];
    std::uint32_t version;
    std::uint32_t endian;
    std::uint64_t key_lo;
    std::uint64_t key_hi;
    std::uint64_t num_states;
    std::uint64_t num_nodes;
    std::uint64_t num_prog_edges;
    std::uint64_t num_fault_edges;
    std::uint64_t num_initial;
    std::uint64_t num_fault_actions;
    std::uint64_t flags;
    std::uint64_t payload_checksum;
    SectionEntry sections[kNumSections];
    std::uint64_t header_checksum;  ///< over every preceding header byte
};
static_assert(sizeof(Header) <= kPage, "dcft.graph header must fit a page");
static_assert(std::is_trivially_copyable_v<Header>);

std::uint64_t mix64(std::uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl64(std::uint64_t v, unsigned r) {
    return (v << r) | (v >> (64 - r));
}

/// Word-level payload digest: four independent rot-mul lanes (ILP keeps
/// the scan at memory speed) folded with the splitmix finalizer. Byte
/// count must be a multiple of 8 (sections pad to page multiples).
std::uint64_t checksum_words(const unsigned char* p, std::size_t bytes) {
    constexpr std::uint64_t kPrime = 0x9E3779B97F4A7C15ULL;
    std::uint64_t lane[4] = {0x243F6A8885A308D3ULL, 0x13198A2E03707344ULL,
                             0xA4093822299F31D0ULL, 0x082EFA98EC4E6C89ULL};
    const std::size_t n_words = bytes / 8;
    std::uint64_t w;
    for (std::size_t i = 0; i < n_words; ++i) {
        std::memcpy(&w, p + i * 8, 8);
        lane[i & 3] = rotl64(lane[i & 3] ^ w, 27) * kPrime;
    }
    std::uint64_t h = bytes;
    for (std::uint64_t l : lane) h = rotl64(h ^ mix64(l), 31) * kPrime;
    return mix64(h);
}

std::uint64_t header_digest(const Header& h) {
    return checksum_words(reinterpret_cast<const unsigned char*>(&h),
                          offsetof(Header, header_checksum));
}

// ---------------------------------------------------------------------------
// Stable key derivation.

/// Two-lane FNV-1a accumulator producing the 128-bit GraphKey.
struct KeyHasher {
    std::uint64_t a = 14695981039346656037ULL;
    std::uint64_t b = 0x6C62272E07BB0142ULL;

    void add(std::uint64_t w) {
        a = (a ^ w) * 1099511628211ULL;
        b = (b ^ mix64(w)) * 0x00000100000001B3ULL;
    }
    void add_str(std::string_view s) {
        add(s.size());
        for (char c : s) add(static_cast<unsigned char>(c));
    }
};

/// Structural + sampled-semantic fingerprint of one action. The
/// structured EffectForm fields pin compilable actions exactly; the
/// successor sample (64 deterministic pseudo-random states through the
/// interpreted path) distinguishes kGeneric lambdas whose behavior
/// changed even when names did not.
void hash_action(KeyHasher& h, const StateSpace& space, const Action& act) {
    h.add_str(act.name());
    h.add_str(act.guard().name());
    const Action::EffectForm& f = act.effect_form();
    h.add(static_cast<std::uint64_t>(f.kind));
    h.add(f.var);
    h.add(f.var2);
    h.add(static_cast<std::uint64_t>(f.value));
    h.add(static_cast<std::uint64_t>(f.modulus));
    h.add(f.choices.size());
    for (Value c : f.choices) h.add(static_cast<std::uint64_t>(c));
    h.add(f.vars.size());
    for (VarId v : f.vars) h.add(v);

    constexpr unsigned kSamples = 64;
    const StateIndex n = space.num_states();
    std::vector<StateIndex> succ;
    for (unsigned k = 0; k < kSamples; ++k) {
        const StateIndex s = mix64(0xA11C0DE5ULL + k) % n;
        succ.clear();
        act.successors(space, s, succ);
        h.add(s);
        h.add(succ.size());
        for (StateIndex t : succ) h.add(t);
    }
}

bool verify_payload_enabled() {
    // Opt-out knob: DCFT_GRAPH_STORE_VERIFY=0 skips the payload scan.
    return env_flag_state("DCFT_GRAPH_STORE_VERIFY").value_or(true);
}

}  // namespace

std::string GraphKey::hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i)
        out[15 - i] = digits[(hi >> (4 * i)) & 0xF];
    for (int i = 0; i < 16; ++i)
        out[31 - i] = digits[(lo >> (4 * i)) & 0xF];
    return out;
}

GraphKey graph_key(const Program& program, const FaultClass* faults,
                   const BitVec& init_bits) {
    const obs::ScopedSpan span("verify/graph_store/key");
    KeyHasher h;
    const StateSpace& space = program.space();

    // Space structure: names + domains + cardinality.
    h.add(space.num_states());
    h.add(space.num_vars());
    for (VarId v = 0; v < space.num_vars(); ++v) {
        const Variable& var = space.variable(v);
        h.add_str(var.name);
        h.add(static_cast<std::uint64_t>(var.domain_size));
    }

    h.add_str(program.name());
    h.add(program.num_actions());
    for (const Action& a : program.actions()) hash_action(h, space, a);

    h.add(faults != nullptr ? 1 : 0);
    if (faults != nullptr) {
        h.add_str(faults->name());
        h.add(faults->actions().size());
        for (const Action& a : faults->actions()) hash_action(h, space, a);
    }

    // Initial set: word hash + popcount (materialized bits are exact).
    h.add(init_bits.size_bits());
    std::uint64_t pop = 0;
    for (std::size_t w = 0; w < init_bits.num_words(); ++w) {
        const std::uint64_t word = init_bits.word(w);
        h.add(word);
        pop += static_cast<std::uint64_t>(__builtin_popcountll(word));
    }
    h.add(pop);
    return GraphKey{h.a, h.b};
}

GraphStore* GraphStore::global() {
    static std::mutex mu;
    static std::unique_ptr<GraphStore> store;
    static std::string cur_dir;
    const char* dir = std::getenv("DCFT_GRAPH_STORE");
    const std::lock_guard<std::mutex> lock(mu);
    if (dir == nullptr || *dir == '\0') {
        store.reset();
        cur_dir.clear();
        return nullptr;
    }
    if (cur_dir != dir) {
        const std::uint64_t budget =
            env_positive_u64("DCFT_GRAPH_STORE_BYTES").value_or(
                kDefaultBudget);
        store = std::make_unique<GraphStore>(dir, budget);
        cur_dir = dir;
    }
    return store.get();
}

GraphStore::GraphStore(std::string dir, std::uint64_t byte_budget)
    : dir_(std::move(dir)), byte_budget_(byte_budget) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);  // save() reports failures
}

std::string GraphStore::path_of(const GraphKey& key) const {
    return dir_ + "/" + key.hex() + ".dcftg";
}

bool GraphStore::contains(const GraphKey& key) const {
    return ::access(path_of(key).c_str(), F_OK) == 0;
}

std::shared_ptr<TransitionSystem> GraphStore::load(const GraphKey& key,
                                                   const Program& program,
                                                   const FaultClass* faults,
                                                   std::string* error) {
    if (error != nullptr) error->clear();
    const std::string path = path_of(key);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        obs::count("verify/graph_store/misses");
        return nullptr;
    }
    const obs::ScopedSpan span("verify/graph_store/load");
    const obs::TraceSpan tspan(obs::trace_enabled()
                                   ? obs::trace_name(
                                         "verify/graph_store/load")
                                   : 0);

    auto reject = [&](std::string why) -> std::shared_ptr<TransitionSystem> {
        ::close(fd);
        obs::count("verify/graph_store/load_errors");
        obs::count("verify/graph_store/misses");
        if (error != nullptr) *error = path + ": " + std::move(why);
        return nullptr;
    };

    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0)
        return reject("cannot stat");
    const std::size_t file_size = static_cast<std::size_t>(st.st_size);
    if (file_size < kPage) return reject("truncated header");

    Header hdr{};
    if (::pread(fd, &hdr, sizeof(hdr), 0) !=
        static_cast<ssize_t>(sizeof(hdr)))
        return reject("short header read");
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        return reject("bad magic (not a dcft.graph file)");
    if (hdr.endian != kEndianMark)
        return reject("endianness mismatch");
    if (hdr.version != kVersion)
        return reject("unsupported dcft.graph version " +
                      std::to_string(hdr.version));
    if (hdr.header_checksum != header_digest(hdr))
        return reject("header checksum mismatch");
    if (hdr.key_lo != key.lo || hdr.key_hi != key.hi)
        return reject("key mismatch");
    if (hdr.num_states != program.space().num_states())
        return reject("state-space cardinality mismatch");
    const std::size_t want_faults =
        faults != nullptr ? faults->actions().size() : 0;
    if (hdr.num_fault_actions != want_faults)
        return reject("fault-action count mismatch");
    if (hdr.num_nodes > hdr.num_states ||
        hdr.num_nodes >= TransitionSystem::kNoNode)
        return reject("implausible node count");
    const bool identity = (hdr.flags & kFlagIdentityNodes) != 0;
    if (identity && hdr.num_nodes != hdr.num_states)
        return reject("identity flag with partial node set");

    // Section table: exact byte counts, page-aligned offsets, all inside
    // the file, in order.
    const std::uint64_t expect_bytes[kNumSections] = {
        hdr.num_nodes * sizeof(StateIndex),
        hdr.num_nodes * sizeof(NodeId),
        (hdr.num_nodes + 1) * sizeof(std::uint64_t),
        hdr.num_prog_edges * sizeof(TransitionSystem::Edge),
        (hdr.num_nodes + 1) * sizeof(std::uint64_t),
        hdr.num_fault_edges * sizeof(TransitionSystem::Edge),
        hdr.num_initial * sizeof(NodeId),
        hdr.sections[kSecFaultNames].bytes,  // names are self-delimiting
    };
    std::uint64_t cursor = kPage;
    for (unsigned s = 0; s < kNumSections; ++s) {
        const SectionEntry& sec = hdr.sections[s];
        if (sec.bytes != expect_bytes[s])
            return reject("section size mismatch");
        if (sec.offset != cursor)
            return reject("section offset mismatch");
        cursor = round_up_page(sec.offset + sec.bytes);
    }
    if (cursor != file_size)
        return reject("truncated file (expected " + std::to_string(cursor) +
                      " bytes, have " + std::to_string(file_size) + ")");

    // One read-only mapping for the integrity scan and the copied
    // sections; the adopted arrays get their own MAP_PRIVATE mappings.
    void* whole = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (whole == MAP_FAILED) return reject("mmap failed");
    const unsigned char* bytes = static_cast<const unsigned char*>(whole);
    auto reject_mapped = [&](std::string why) {
        ::munmap(whole, file_size);
        return reject(std::move(why));
    };

    if (verify_payload_enabled() &&
        hdr.payload_checksum !=
            checksum_words(bytes + kPage, file_size - kPage))
        return reject_mapped("payload checksum mismatch");

    // Fault-action names (copied, self-delimited u32 length prefixes).
    std::vector<std::string> names;
    {
        const SectionEntry& sec = hdr.sections[kSecFaultNames];
        const unsigned char* p = bytes + sec.offset;
        const unsigned char* end = p + sec.bytes;
        names.reserve(hdr.num_fault_actions);
        for (std::uint64_t i = 0; i < hdr.num_fault_actions; ++i) {
            std::uint32_t len = 0;
            if (p + sizeof(len) > end)
                return reject_mapped("fault-name section overrun");
            std::memcpy(&len, p, sizeof(len));
            p += sizeof(len);
            if (p + len > end)
                return reject_mapped("fault-name section overrun");
            names.emplace_back(reinterpret_cast<const char*>(p), len);
            p += len;
        }
    }

    TransitionSystem::AdoptedArrays arrays;
    arrays.identity_nodes = identity;
    {
        const SectionEntry& sec = hdr.sections[kSecInitial];
        arrays.initial.resize(hdr.num_initial);
        std::memcpy(arrays.initial.data(), bytes + sec.offset, sec.bytes);
    }
    ::munmap(whole, file_size);

    auto adopt_vec = [&](auto& vec, unsigned s, std::size_t n_elems) {
        const SectionEntry& sec = hdr.sections[s];
        vec.adopt(SpillFile::adopt_region(fd, sec.offset, sec.bytes),
                  n_elems);
    };
    try {
        adopt_vec(arrays.states, kSecStates, hdr.num_nodes);
        adopt_vec(arrays.parent, kSecParent, hdr.num_nodes);
        adopt_vec(arrays.prog_offsets, kSecProgOffsets, hdr.num_nodes + 1);
        adopt_vec(arrays.prog_edges, kSecProgEdges, hdr.num_prog_edges);
        adopt_vec(arrays.fault_offsets, kSecFaultOffsets, hdr.num_nodes + 1);
        adopt_vec(arrays.fault_edges, kSecFaultEdges, hdr.num_fault_edges);
    } catch (const std::exception& e) {
        return reject(std::string("adoption failed: ") + e.what());
    }
    // CSR self-consistency: the offset arrays must close over the edge
    // counts (cheap, and catches any corruption a skipped payload scan
    // would have).
    if (arrays.prog_offsets[hdr.num_nodes] != hdr.num_prog_edges ||
        arrays.fault_offsets[hdr.num_nodes] != hdr.num_fault_edges)
        return reject("CSR offsets do not close over edge counts");
    for (NodeId n : arrays.initial)
        if (n >= hdr.num_nodes) return reject("initial node out of range");

    ::close(fd);  // mappings keep the file referenced
    // LRU bump: both timestamps to now, so eviction order tracks use.
    (void)::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);

    obs::count("verify/graph_store/hits");
    obs::count("verify/graph_store/bytes_loaded", file_size);
    if (obs::trace_enabled()) {
        static const std::uint32_t id =
            obs::trace_name("verify/graph_store/hit");
        obs::trace_instant(id, hdr.num_nodes);
    }
    return TransitionSystem::adopt(program, std::move(names),
                                   std::move(arrays));
}

bool GraphStore::save(const GraphKey& key, const TransitionSystem& ts,
                      std::string* error) {
    if (error != nullptr) error->clear();
    if (!ts.complete()) {
        if (error != nullptr) *error = "refusing to store an early-exit fragment";
        return false;
    }
    const obs::ScopedSpan span("verify/graph_store/save");
    const obs::TraceSpan tspan(obs::trace_enabled()
                                   ? obs::trace_name(
                                         "verify/graph_store/save")
                                   : 0);

    // Serialized fault-name blob (u32 length + bytes each).
    std::vector<unsigned char> names_blob;
    for (std::size_t a = 0; a < ts.num_fault_actions(); ++a) {
        const std::string& name =
            ts.fault_action_name(static_cast<std::uint32_t>(a));
        const std::uint32_t len = static_cast<std::uint32_t>(name.size());
        const std::size_t at = names_blob.size();
        names_blob.resize(at + sizeof(len) + len);
        std::memcpy(names_blob.data() + at, &len, sizeof(len));
        std::memcpy(names_blob.data() + at + sizeof(len), name.data(), len);
    }

    Header hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kVersion;
    hdr.endian = kEndianMark;
    hdr.key_lo = key.lo;
    hdr.key_hi = key.hi;
    hdr.num_states = ts.space().num_states();
    hdr.num_nodes = ts.num_nodes();
    hdr.num_prog_edges = ts.num_program_edges();
    hdr.num_fault_edges = ts.num_fault_edges();
    hdr.num_initial = ts.initial_nodes().size();
    hdr.num_fault_actions = ts.num_fault_actions();
    hdr.flags = ts.identity_interner() ? kFlagIdentityNodes : 0;

    struct Blob {
        const void* data;
        std::uint64_t bytes;
    };
    const Blob blobs[kNumSections] = {
        {ts.raw_states().data(), ts.raw_states().size_bytes()},
        {ts.raw_parent().data(), ts.raw_parent().size_bytes()},
        {ts.raw_prog_offsets().data(), ts.raw_prog_offsets().size_bytes()},
        {ts.raw_prog_edges().data(), ts.raw_prog_edges().size_bytes()},
        {ts.raw_fault_offsets().data(), ts.raw_fault_offsets().size_bytes()},
        {ts.raw_fault_edges().data(), ts.raw_fault_edges().size_bytes()},
        {ts.initial_nodes().data(),
         ts.initial_nodes().size() * sizeof(NodeId)},
        {names_blob.data(), names_blob.size()},
    };
    std::uint64_t cursor = kPage;
    for (unsigned s = 0; s < kNumSections; ++s) {
        hdr.sections[s].offset = cursor;
        hdr.sections[s].bytes = blobs[s].bytes;
        cursor = round_up_page(cursor + blobs[s].bytes);
    }
    const std::size_t total = cursor;

    const std::string path = path_of(key);
    const std::string tmp =
        dir_ + "/.tmp-" + key.hex() + "-" + std::to_string(::getpid());
    try {
        auto file = SpillFile::create_named(tmp);
        unsigned char* base = static_cast<unsigned char*>(file->grow(total));
        // grow() page-rounds; fresh file pages are already zero, so the
        // inter-section padding needs no explicit fill.
        for (unsigned s = 0; s < kNumSections; ++s)
            if (blobs[s].bytes != 0)
                std::memcpy(base + hdr.sections[s].offset, blobs[s].data,
                            blobs[s].bytes);
        hdr.payload_checksum = checksum_words(base + kPage, total - kPage);
        hdr.header_checksum = header_digest(hdr);
        std::memcpy(base, &hdr, sizeof(hdr));
    } catch (const std::exception& e) {
        ::unlink(tmp.c_str());
        obs::count("verify/graph_store/save_errors");
        if (error != nullptr) *error = e.what();
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        obs::count("verify/graph_store/save_errors");
        if (error != nullptr)
            *error = "rename to " + path + ": " + std::strerror(errno);
        return false;
    }
    obs::count("verify/graph_store/saves");
    obs::count("verify/graph_store/bytes_saved", total);
    evict(path);
    return true;
}

void GraphStore::evict(const std::string& keep_path) {
    if (byte_budget_ == 0) return;
    struct Entry {
        std::filesystem::path path;
        std::uint64_t bytes;
        std::filesystem::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto& de : std::filesystem::directory_iterator(dir_, ec)) {
        if (de.path().extension() != ".dcftg") continue;
        std::error_code fec;
        const std::uint64_t bytes = de.file_size(fec);
        if (fec) continue;
        entries.push_back({de.path(), bytes, de.last_write_time(fec)});
        total += bytes;
    }
    if (total <= byte_budget_) return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
    for (const Entry& e : entries) {
        if (total <= byte_budget_) break;
        if (e.path == keep_path) continue;  // never evict the fresh entry
        std::error_code rec;
        if (std::filesystem::remove(e.path, rec) && !rec) {
            total -= e.bytes;
            obs::count("verify/graph_store/evictions");
            obs::count("verify/graph_store/bytes_evicted", e.bytes);
        }
    }
}

}  // namespace dcft
