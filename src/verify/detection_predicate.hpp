// Detection predicates (Section 3.2, Theorem 3.3 and the definition that
// follows it): X is a detection predicate of action ac for SPEC iff
// executing ac in any state where X holds maintains SPEC.
//
// Because dcft safety specifications are transition-local (see
// spec/safety_spec.hpp), the *weakest* detection predicate of an action is
// computable: the set of states from which every transition the action can
// take is allowed by the specification. Theorem 3.3's existence claim and
// the closure properties of detection predicates (union of detection
// predicates is a detection predicate) are exercised in the test suite.
#pragma once

#include <memory>

#include "gc/action.hpp"
#include "spec/safety_spec.hpp"
#include "verify/state_set.hpp"

namespace dcft {

/// The weakest detection predicate of `ac` for `spec`, as an explicit set:
/// all states s such that executing ac at s (when enabled; vacuously true
/// where disabled) yields only spec-allowed transitions to spec-allowed
/// states.
std::shared_ptr<const StateSet> weakest_detection_set(const StateSpace& space,
                                                      const Action& ac,
                                                      const SafetySpec& spec);

/// Same, wrapped as a Predicate named "wdp(<action>)".
Predicate weakest_detection_predicate(const StateSpace& space,
                                      const Action& ac,
                                      const SafetySpec& spec);

/// True iff X is a detection predicate of ac for spec (Definition after
/// Theorem 3.3): execution of ac in any state where X holds maintains spec.
bool is_detection_predicate(const StateSpace& space, const Predicate& x,
                            const Action& ac, const SafetySpec& spec);

}  // namespace dcft
