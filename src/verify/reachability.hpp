// Forward reachability over programs and fault classes.
#pragma once

#include "gc/program.hpp"
#include "verify/state_set.hpp"

namespace dcft {

/// The set of states reachable from states satisfying `from` via actions of
/// `p` and, if non-null, of `f`. This is the smallest set containing `from`
/// that is closed in p and preserved by every action of f — for `from` = an
/// invariant S, it is the canonical F-span of p from S (Section 2.3).
///
/// `n_threads` bounds the exploration workers (0 = process default); the
/// computed set is identical for every thread count.
StateSet reachable_states(const Program& p, const FaultClass* f,
                          const Predicate& from, unsigned n_threads = 0);

}  // namespace dcft
