// Forward reachability over programs and fault classes.
#pragma once

#include "gc/program.hpp"
#include "verify/check_result.hpp"
#include "verify/state_set.hpp"

namespace dcft {

/// The set of states reachable from states satisfying `from` via actions of
/// `p` and, if non-null, of `f`. This is the smallest set containing `from`
/// that is closed in p and preserved by every action of f — for `from` = an
/// invariant S, it is the canonical F-span of p from S (Section 2.3).
///
/// `n_threads` bounds the exploration workers (0 = process default); the
/// computed set is identical for every thread count.
StateSet reachable_states(const Program& p, const FaultClass* f,
                          const Predicate& from, unsigned n_threads = 0);

/// Early-exit reachability obligation: fails iff some state satisfying
/// `bad` is reachable from `from` under p (and, if non-null, f). The
/// exploration registers `bad` as a stop predicate, so a violation
/// terminates the BFS at the first (canonically least node id, hence
/// deterministic) bad state with a replayable witness, instead of
/// materializing the full graph. When the process-wide ExplorationCache
/// already holds the complete graph of (p [, f], from) the verdict is a
/// scan of that graph — the same node, message, and witness either way.
CheckResult check_unreachable(const Program& p, const FaultClass* f,
                              const Predicate& from, const Predicate& bad,
                              unsigned n_threads = 0);

}  // namespace dcft
