#include "verify/transition_system.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <utility>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/parallel.hpp"
#include "obs/proc_stats.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "verify/action_kernel.hpp"
#include "verify/batch_kernel.hpp"

namespace dcft {
namespace {

/// Largest space for which the interner is a direct-mapped NodeId array
/// (4 bytes per state of the *whole* space). Beyond this the sharded
/// sparse table takes over. Overridable via DCFT_DIRECT_MAP_MAX so the
/// sparse path is exercisable (tests, fuzzing, benches) at any size.
constexpr StateIndex kDefaultDirectMapMax = StateIndex{1} << 25;

StateIndex direct_map_max() {
    if (const auto v = env_positive_u64("DCFT_DIRECT_MAP_MAX"))
        return static_cast<StateIndex>(*v);
    return kDefaultDirectMapMax;
}

/// Levels whose *work* — frontier size × total action count — falls below
/// this stay on the fused serial path even when multiple workers are
/// available: the staging buffers, claim traffic, and chunk dispatch of
/// the parallel merge cost more than the expansion itself. The old
/// heuristic thresholded on frontier size alone (16384 states), which let
/// medium levels with few actions go parallel and regress 1.7–2.4×
/// (token_ring n6/n7 ts_build at 2 threads in BENCH_verifier.json); a
/// work-based threshold keeps them serial while still parallelizing
/// genuinely large levels (token_ring n8: 1.3e8 work units). Recorded in
/// telemetry as the gauge verify/explore/parallel_threshold; the count of
/// levels under it (verify/explore/levels_below_threshold) is a function
/// of the canonical BFS and the program only — never of the worker
/// budget — hence identical for every thread count.
constexpr std::uint64_t kParallelWorkMin = std::uint64_t{1} << 23;

/// The effective threshold: DCFT_PARALLEL_WORK_MIN overrides the default,
/// so tests can force the parallel merge onto workloads far below the
/// production cutoff (mirrors DCFT_DIRECT_MAP_MAX for the interner tiers).
std::uint64_t parallel_work_min() {
    if (const auto v = env_positive_u64("DCFT_PARALLEL_WORK_MIN")) return *v;
    return kParallelWorkMin;
}

/// Segment length (states) of the identity sweep when spilling: after
/// each segment the sealed CSR/offset/node prefixes are advised out of
/// RSS, bounding the resident window to ~one segment's output.
constexpr StateIndex kSweepSegment = StateIndex{1} << 22;

/// Serial-path block size fed to BatchKernel::expand_frontier (one guard
/// word's worth of states).
constexpr std::size_t kExpandBlock = 64;

/// Cap on speculative reserve() sizing (states) so pathological spaces do
/// not pre-allocate unbounded memory.
constexpr std::size_t kReserveCap = std::size_t{1} << 22;

/// Claim markers of the parallel merge: chunk c writes kClaimBase + c into
/// an interner slot to tentatively own a newly discovered state. Real node
/// ids must stay below kClaimBase (checked per level); kNoNode (all-ones)
/// is "absent" and compares greater than every marker.
constexpr NodeId kClaimBase = 0xFFFF0000u;

/// Chunk-private buffers produced by one worker for one slice of a BFS
/// level. For each node of the slice, in order: `counts` holds
/// (#program successors, #fault successors) and `recs` holds those
/// successors contiguously — program records first, then fault records,
/// each as (action index, target state). `claims` holds the (target,
/// parent) pairs this chunk tentatively claimed, in first-local-occurrence
/// order — after the filter pass this is exactly the canonical new-node
/// subsequence the chunk contributes.
struct ChunkBuf {
    std::vector<std::pair<std::uint32_t, StateIndex>> recs;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> counts;
    std::vector<std::pair<StateIndex, NodeId>> claims;
    std::uint64_t prog_total = 0;   ///< program records in recs
    std::uint64_t fault_total = 0;  ///< fault records in recs
    std::uint64_t begin = 0;        ///< slice start within the level
};

}  // namespace

// ---------------------------------------------------------------------------
// SparseNodeTable: the interner tier for spaces beyond DCFT_DIRECT_MAP_MAX.
//
// An open-addressing (linear probing) table sharded by a splitmix64
// fingerprint of the packed state index: the low bits of the fingerprint
// select one of 64 shards, the high bits the probe start inside the shard.
// Keys are stored biased by one (0 = empty slot) so membership needs no
// separate occupancy bitmap; values are NodeIds — or, transiently during
// the parallel merge's claim phase, kClaimBase+chunk markers.
//
// Concurrency contract, phase by phase:
//   * serial exploration path: find_or_insert, single-threaded, lock-free;
//   * claim phase (parallel):  claim() under a per-shard mutex — the only
//     phase that inserts, so growth is confined here;
//   * filter/publish phases:   keys are frozen; find() is a lock-free
//     read and publish() overwrites only the caller-owned value slot;
//   * consumers (has_state, node_of, edge resolution): find(), lock-free.
class SparseNodeTable {
public:
    static constexpr unsigned kShardBits = 6;
    static constexpr std::size_t kNumShards = std::size_t{1} << kShardBits;

    /// Sizes every shard for ~`expected` total entries (load factor 0.7)
    /// up front — the reserve that keeps large explorations from
    /// rehashing level after level.
    explicit SparseNodeTable(std::size_t expected) {
        const std::size_t per_shard = expected / kNumShards + 1;
        for (Shard& sh : shards_) sh.rehash(slots_for(per_shard));
    }

    static std::uint64_t fingerprint(StateIndex s) {
        // splitmix64 finalizer: full-avalanche, cheap, and stable — the
        // shard/probe layout is a pure function of the state index.
        std::uint64_t z =
            static_cast<std::uint64_t>(s) + 0x9E3779B97F4A7C15ULL;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /// Lock-free lookup (no concurrent inserts allowed). kNoNode if
    /// absent; during the merge the returned value may be a claim marker.
    NodeId find(StateIndex s) const {
        const std::uint64_t h = fingerprint(s);
        const Shard& sh = shards_[h & (kNumShards - 1)];
        const std::uint64_t key = static_cast<std::uint64_t>(s) + 1;
        std::size_t i = (h >> kShardBits) & sh.mask;
        for (;;) {
            const std::uint64_t k = sh.keys[i];
            if (k == key) return sh.vals[i];
            if (k == 0) return TransitionSystem::kNoNode;
            i = (i + 1) & sh.mask;
        }
    }

    /// Serial find-or-insert: returns the resident id, or installs `id`
    /// and returns it. Single-threaded callers only.
    NodeId find_or_insert(StateIndex s, NodeId id) {
        const std::uint64_t h = fingerprint(s);
        Shard& sh = shards_[h & (kNumShards - 1)];
        maybe_grow(sh);
        const std::uint64_t key = static_cast<std::uint64_t>(s) + 1;
        std::size_t i = (h >> kShardBits) & sh.mask;
        for (;;) {
            ++sh.probes;
            const std::uint64_t k = sh.keys[i];
            if (k == key) return sh.vals[i];
            if (k == 0) {
                sh.keys[i] = key;
                sh.vals[i] = id;
                ++sh.size;
                return id;
            }
            i = (i + 1) & sh.mask;
        }
    }

    /// Claim protocol of the parallel merge (thread-safe, per-shard lock).
    /// Returns true iff this call installed `mark`: the slot was absent or
    /// held a *larger* chunk's marker — min-chunk-wins, which makes the
    /// final owner of every new state the canonically first chunk that
    /// produced it, independent of thread timing.
    bool claim(StateIndex s, NodeId mark) {
        const std::uint64_t h = fingerprint(s);
        Shard& sh = shards_[h & (kNumShards - 1)];
        const std::lock_guard<std::mutex> lock(sh.mu);
        maybe_grow(sh);
        const std::uint64_t key = static_cast<std::uint64_t>(s) + 1;
        std::size_t i = (h >> kShardBits) & sh.mask;
        for (;;) {
            ++sh.probes;
            const std::uint64_t k = sh.keys[i];
            if (k == key) {
                NodeId& v = sh.vals[i];
                if (v < kClaimBase || v <= mark) return false;
                v = mark;
                return true;
            }
            if (k == 0) {
                sh.keys[i] = key;
                sh.vals[i] = mark;
                ++sh.size;
                return true;
            }
            i = (i + 1) & sh.mask;
        }
    }

    /// Publishes the final id of a claim the caller won (keys frozen, one
    /// writer per slot — lock-free by construction).
    void publish(StateIndex s, NodeId id) {
        const std::uint64_t h = fingerprint(s);
        Shard& sh = shards_[h & (kNumShards - 1)];
        const std::uint64_t key = static_cast<std::uint64_t>(s) + 1;
        std::size_t i = (h >> kShardBits) & sh.mask;
        while (sh.keys[i] != key) i = (i + 1) & sh.mask;
        sh.vals[i] = id;
    }

    std::uint64_t probes() const {
        std::uint64_t p = 0;
        for (const Shard& sh : shards_) p += sh.probes;
        return p;
    }
    std::uint64_t resizes() const {
        std::uint64_t r = 0;
        for (const Shard& sh : shards_) r += sh.resizes;
        return r;
    }
    std::uint64_t bytes() const {
        std::uint64_t b = 0;
        for (const Shard& sh : shards_)
            b += sh.keys.capacity() * sizeof(std::uint64_t) +
                 sh.vals.capacity() * sizeof(NodeId);
        return b;
    }

private:
    struct Shard {
        std::vector<std::uint64_t> keys;  ///< state index + 1; 0 = empty
        std::vector<NodeId> vals;
        std::size_t size = 0;
        std::size_t mask = 0;
        std::uint64_t probes = 0;
        std::uint64_t resizes = 0;
        std::mutex mu;

        void rehash(std::size_t new_cap) {
            std::vector<std::uint64_t> old_keys = std::move(keys);
            std::vector<NodeId> old_vals = std::move(vals);
            keys.assign(new_cap, 0);
            vals.assign(new_cap, TransitionSystem::kNoNode);
            mask = new_cap - 1;
            for (std::size_t j = 0; j < old_keys.size(); ++j) {
                const std::uint64_t k = old_keys[j];
                if (k == 0) continue;
                const std::uint64_t h = fingerprint(
                    static_cast<StateIndex>(k - 1));
                std::size_t i = (h >> kShardBits) & mask;
                while (keys[i] != 0) i = (i + 1) & mask;
                keys[i] = k;
                vals[i] = old_vals[j];
            }
        }
    };

    static std::size_t slots_for(std::size_t entries) {
        // Smallest power of two keeping load factor <= 0.7, min 16 slots.
        std::size_t cap = 16;
        while (cap * 7 < entries * 10) cap <<= 1;
        return cap;
    }

    void maybe_grow(Shard& sh) {
        if ((sh.size + 1) * 10 < (sh.mask + 1) * 7) return;
        sh.rehash((sh.mask + 1) * 2);
        ++sh.resizes;
    }

    std::array<Shard, kNumShards> shards_;
};

TransitionSystem::TransitionSystem(const Program& program,
                                   const FaultClass* faults,
                                   const Predicate& init, unsigned n_threads)
    : TransitionSystem(program, faults, init,
                       ExploreOptions{n_threads, nullptr}) {}

TransitionSystem::TransitionSystem(const Program& program,
                                   const FaultClass* faults,
                                   const Predicate& init,
                                   const ExploreOptions& options)
    : space_(program.space_ptr()), program_(program) {
    if (faults != nullptr) {
        fault_action_names_.reserve(faults->actions().size());
        for (const auto& fac : faults->actions())
            fault_action_names_.push_back(fac.name());
    }
    explore(faults, init, resolve_verifier_threads(options.n_threads),
            options.stop_on, options.spill || spill_enabled());
}

TransitionSystem::TransitionSystem(
    const Program& program, std::vector<std::string> fault_action_names,
    AdoptedArrays&& arrays)
    : space_(program.space_ptr()),
      program_(program),
      fault_action_names_(std::move(fault_action_names)),
      states_(std::move(arrays.states)),
      initial_(std::move(arrays.initial)),
      parent_(std::move(arrays.parent)),
      prog_offsets_(std::move(arrays.prog_offsets)),
      prog_edges_(std::move(arrays.prog_edges)),
      fault_offsets_(std::move(arrays.fault_offsets)),
      fault_edges_(std::move(arrays.fault_edges)),
      identity_nodes_(arrays.identity_nodes) {
    // The snapshot stores no interner: node_of/has_state rebuild it on
    // first use. The tier decision matches a fresh exploration's, so the
    // memory profile of a warm graph equals the cold one's.
    if (!identity_nodes_) {
        direct_mapped_ = space_->num_states() <= direct_map_max();
        interner_lazy_ = true;
    }
}

std::shared_ptr<TransitionSystem> TransitionSystem::adopt(
    const Program& program, std::vector<std::string> fault_action_names,
    AdoptedArrays&& arrays) {
    return std::shared_ptr<TransitionSystem>(new TransitionSystem(
        program, std::move(fault_action_names), std::move(arrays)));
}

void TransitionSystem::ensure_interner() const {
    std::call_once(interner_once_, [this] {
        const obs::ScopedSpan span("verify/graph_store/interner_rebuild");
        const std::size_t n = states_.size();
        if (direct_mapped_) {
            node_map_.assign(
                static_cast<std::size_t>(space_->num_states()), kNoNode);
            for (std::size_t i = 0; i < n; ++i)
                node_map_[static_cast<std::size_t>(states_[i])] =
                    static_cast<NodeId>(i);
        } else {
            auto table = std::make_unique<SparseNodeTable>(n);
            for (std::size_t i = 0; i < n; ++i)
                table->find_or_insert(states_[i], static_cast<NodeId>(i));
            sparse_ = std::move(table);
        }
    });
}

std::uint64_t TransitionSystem::resident_bytes() const {
    std::uint64_t b = states_.size() * sizeof(StateIndex) +
                      parent_.size() * sizeof(NodeId) +
                      prog_offsets_.size() * sizeof(std::uint64_t) +
                      prog_edges_.size() * sizeof(Edge) +
                      fault_offsets_.size() * sizeof(std::uint64_t) +
                      fault_edges_.size() * sizeof(Edge) +
                      initial_.capacity() * sizeof(NodeId);
    b += node_map_.capacity() * sizeof(NodeId);
    if (sparse_ != nullptr) b += sparse_->bytes();
    return b;
}

TransitionSystem::~TransitionSystem() = default;

namespace {

/// Interned trace-event name ids, resolved once per process. The span
/// names mirror the telemetry span paths exactly, so a Perfetto timeline
/// and the aggregated span tree in a run report line up term for term.
struct ExploreTraceIds {
    std::uint32_t explore = obs::trace_name("verify/explore");
    std::uint32_t compile = obs::trace_name("verify/compile");
    std::uint32_t seed = obs::trace_name("verify/explore/seed");
    std::uint32_t level = obs::trace_name("verify/explore/level");
    std::uint32_t level_done = obs::trace_name("verify/explore/level_done");
    std::uint32_t sweep = obs::trace_name("verify/explore/sweep");
    std::uint32_t sweep_chunk =
        obs::trace_name("verify/explore/sweep/chunk");
    std::uint32_t expand = obs::trace_name("verify/explore/expand_claim");
    std::uint32_t expand_chunk =
        obs::trace_name("verify/explore/expand_claim/chunk");
    std::uint32_t filter = obs::trace_name("verify/explore/claim_filter");
    std::uint32_t filter_chunk =
        obs::trace_name("verify/explore/claim_filter/chunk");
    std::uint32_t publish = obs::trace_name("verify/explore/publish");
    std::uint32_t publish_chunk =
        obs::trace_name("verify/explore/publish/chunk");
    std::uint32_t edge_write = obs::trace_name("verify/explore/edge_write");
    std::uint32_t edge_write_chunk =
        obs::trace_name("verify/explore/edge_write/chunk");
    std::uint32_t tier = obs::trace_name("verify/interner/tier");
    std::uint32_t early_exit =
        obs::trace_name("verify/explore/early_exit_stop");
};

const ExploreTraceIds& tr() {
    static const ExploreTraceIds* ids = new ExploreTraceIds();
    return *ids;
}

}  // namespace

void TransitionSystem::explore(const FaultClass* faults,
                               const Predicate& init, unsigned n_threads,
                               const Predicate* stop_on, bool spill) {
    const bool telemetry = obs::enabled();
    const bool tracing = obs::trace_enabled();
    // The per-level timeline rides on either structured-output mode:
    // run reports (telemetry) embed it, traces cross-reference it.
    const bool timeline = telemetry || tracing;
    const bool progress_on = obs::progress_enabled();
    // One count per BFS actually run: snapshot-adopted graphs never pass
    // here, which is what the service/store smoke tests assert on.
    obs::count("verify/explorations");
    const obs::ScopedSpan span("verify/explore");
    const obs::TraceSpan tspan(tracing ? tr().explore : 0);
    const StateIndex n_states = space_->num_states();
    const std::uint64_t explore_t0 = timeline ? obs::now_ns() : 0;

    // Out-of-core mode: the node and CSR arrays go to mmap-backed spill
    // files (decided before anything is written). Graphs are bit-for-bit
    // identical either way; only residency changes.
    spilled_ = spill;
    if (spill) {
        states_.enable_spill();
        parent_.enable_spill();
        prog_offsets_.enable_spill();
        prog_edges_.enable_spill();
        fault_offsets_.enable_spill();
        fault_edges_.enable_spill();
    }

    // Compile the guarded commands once per exploration (guard bytecode,
    // divmod-free effects, whole-space enabled bitsets for fully compiled
    // guards). DCFT_NO_COMPILE=1 keeps everything on the interpreted
    // Action/Predicate path — the differential oracle.
    std::unique_ptr<CompiledProgram> compiled;
    std::vector<const BitVec*> prog_gbits;
    std::vector<const BitVec*> fault_gbits;
    if (!compile_disabled()) {
        const obs::ScopedSpan cspan("verify/compile");
        const obs::TraceSpan ctspan(tracing ? tr().compile : 0);
        compiled = std::make_unique<CompiledProgram>(program_, faults);
        // Whole-space guard bitsets pay off only when they can be filled
        // with word-level algebra; guards with opaque subtrees would need
        // a full-space scan, so those stay on per-state bytecode instead
        // (which touches only reachable states).
        auto collect = [](const CompiledActionSet& set,
                          std::vector<const BitVec*>& out) {
            out.reserve(set.size());
            for (const CompiledAction& a : set.actions()) {
                if (a.guard_fully_compiled()) {
                    a.ensure_guard_bits();
                    out.push_back(&a.guard_bits());
                } else {
                    out.push_back(nullptr);
                }
            }
        };
        collect(compiled->program_actions(), prog_gbits);
        if (compiled->has_faults())
            collect(compiled->fault_actions(), fault_gbits);
    }

    // Batch layer on top of the compiled program: fused guard+successor
    // kernels over blocks of states (see batch_kernel.hpp). Only engaged
    // when every action is batchable; DCFT_NO_BATCH=1 pins the scalar
    // path — the differential oracle for this layer.
    std::unique_ptr<BatchKernel> batch;
    if (compiled != nullptr && !batch_disabled()) {
        auto bk =
            std::make_unique<BatchKernel>(*compiled, prog_gbits, fault_gbits);
        if (bk->batchable()) batch = std::move(bk);
    }

    // The early-exit stop predicate, compiled to guard bytecode when the
    // exploration itself is compiled (opaque subtrees fall back to eval).
    std::unique_ptr<GuardCode> stop_code;
    if (stop_on != nullptr && compiled != nullptr)
        stop_code = std::make_unique<GuardCode>(compiled->cspace(), *stop_on);
    std::uint64_t stop_scans = 0;
    auto stop_at = [&](StateIndex s) {
        ++stop_scans;
        return stop_code != nullptr ? stop_code->eval(compiled->cspace(), s)
                                    : stop_on->eval(*space_, s);
    };

    // Expands one state: evaluates each guard (bitset probe, bytecode, or
    // interpreted predicate) and appends each enabled action's successors
    // via on_prog/on_fault(action index, target). Successor order is
    // identical on both paths: actions in declaration order, each
    // action's successors in its statement order.
    auto expand = [&](StateIndex s, std::vector<StateIndex>& scratch,
                      auto&& on_prog, auto&& on_fault) {
        if (compiled != nullptr) {
            const auto pacts = compiled->program_actions().actions();
            for (std::uint32_t a = 0; a < pacts.size(); ++a) {
                const CompiledAction& ka = pacts[a];
                const BitVec* gb = prog_gbits[a];
                if (gb != nullptr ? !gb->test(s) : !ka.enabled(s)) continue;
                scratch.clear();
                ka.successors(s, scratch);
                for (StateIndex t : scratch) on_prog(a, t);
            }
            if (compiled->has_faults()) {
                const auto facts = compiled->fault_actions().actions();
                for (std::uint32_t a = 0; a < facts.size(); ++a) {
                    const CompiledAction& ka = facts[a];
                    const BitVec* gb = fault_gbits[a];
                    if (gb != nullptr ? !gb->test(s) : !ka.enabled(s))
                        continue;
                    scratch.clear();
                    ka.successors(s, scratch);
                    for (StateIndex t : scratch) on_fault(a, t);
                }
            }
            return;
        }
        for (std::uint32_t a = 0; a < program_.num_actions(); ++a) {
            scratch.clear();
            program_.action(a).successors(*space_, s, scratch);
            for (StateIndex t : scratch) on_prog(a, t);
        }
        if (faults != nullptr) {
            std::uint32_t a = 0;
            for (const auto& fac : faults->actions()) {
                scratch.clear();
                fac.successors(*space_, s, scratch);
                for (StateIndex t : scratch) on_fault(a, t);
                ++a;
            }
        }
    };

    // Seed: bulk-evaluate init over the space (each state exactly once,
    // chunked across workers). Done before the interner is chosen so the
    // initial-set cardinality can size it.
    const BitVec init_bits = [&] {
        const obs::ScopedSpan seed_span("verify/explore/seed");
        const obs::TraceSpan seed_tspan(tracing ? tr().seed : 0);
        if (compiled != nullptr) {
            BitVec b(n_states);
            fill_guard_bits(compiled->cspace(), init, b);
            return b;
        }
        return eval_bits(*space_, init, n_threads);
    }();
    const std::uint64_t init_pop = init_bits.popcount();

    // Interner tier selection. When the seed covers the whole space the
    // ascending-order root interning makes node id == state index; every
    // lookup is the identity and no reverse map is allocated at all (the
    // hottest memory traffic of dense explorations, and ~4 bytes/state of
    // allocation, both gone). Otherwise: direct-mapped NodeId array up to
    // DCFT_DIRECT_MAP_MAX states, sharded open-addressing table beyond —
    // reserved from the init-set cardinality times a growth estimate so
    // large explorations do not rehash level after level.
    identity_nodes_ = init_pop == n_states;
    if (!identity_nodes_) {
        direct_mapped_ = n_states <= direct_map_max();
        if (direct_mapped_) {
            node_map_.assign(static_cast<std::size_t>(n_states), kNoNode);
        } else {
            constexpr std::uint64_t kGrowthEstimate = 8;
            const std::uint64_t expected = std::min<std::uint64_t>(
                std::max<std::uint64_t>(init_pop * kGrowthEstimate, 4096),
                n_states);
            sparse_ = std::make_unique<SparseNodeTable>(
                static_cast<std::size_t>(expected));
        }
    }
    // Tier selection is a function of the seed cardinality and the space
    // size only, so this instant — like every instant below — fires the
    // same number of times for every thread count (pinned by trace_test).
    if (tracing)
        obs::trace_instant(tr().tier,
                           identity_nodes_ ? 0 : direct_mapped_ ? 1 : 2);
    if (progress_on) obs::progress_explore_begin(n_states);

    // Reserve node/edge storage. Identity explorations have a known exact
    // node count; otherwise size to the space (capped) — explicit-state
    // instances are usually mostly reachable.
    const std::size_t guess =
        identity_nodes_
            ? static_cast<std::size_t>(n_states)
            : static_cast<std::size_t>(
                  std::min<StateIndex>(n_states, kReserveCap));
    states_.reserve(guess);
    parent_.reserve(guess);
    prog_offsets_.reserve(guess + 1);
    fault_offsets_.reserve(guess + 1);
    // Edge vectors dominate the working set of dense explorations; growing
    // them by doubling re-copies tens of MB mid-BFS. Reserve one slot per
    // (state, action) — an upper bound for deterministic actions — capped.
    // reserve() only allocates address space; untouched tail pages are
    // never committed.
    constexpr std::size_t kEdgeReserveCap = std::size_t{1} << 24;
    prog_edges_.reserve(std::min<std::size_t>(
        guess * std::max<std::size_t>(program_.num_actions(), 1),
        kEdgeReserveCap));
    if (faults != nullptr)
        fault_edges_.reserve(std::min<std::size_t>(
            guess * std::max<std::size_t>(faults->actions().size(), 1),
            kEdgeReserveCap));

    // Interns t (first discovery appends it to the next BFS level with
    // `from` as its BFS-tree parent). Serial — called only from the fused
    // serial path, in canonical order.
    auto intern = [&](StateIndex t, NodeId from) -> NodeId {
        if (identity_nodes_) return static_cast<NodeId>(t);
        if (direct_mapped_) {
            NodeId& slot = node_map_[static_cast<std::size_t>(t)];
            if (slot == kNoNode) {
                slot = static_cast<NodeId>(states_.size());
                states_.push_back(t);
                parent_.push_back(from);
            }
            return slot;
        }
        const NodeId fresh = static_cast<NodeId>(states_.size());
        const NodeId got = sparse_->find_or_insert(t, fresh);
        if (got == fresh) {
            states_.push_back(t);
            parent_.push_back(from);
        }
        return got;
    };

    // Resolves a state that is known to be interned (merge phase B and
    // consumers within this function). Lock-free on every tier.
    auto lookup = [&](StateIndex t) -> NodeId {
        if (identity_nodes_) return static_cast<NodeId>(t);
        if (direct_mapped_) return node_map_[static_cast<std::size_t>(t)];
        return sparse_->find(t);
    };

    // Intern the satisfying seed states in ascending order — the
    // canonical root numbering. Identity seeds fill directly.
    initial_.reserve(static_cast<std::size_t>(init_pop));
    if (identity_nodes_) {
        // resize_overwrite: the loop below writes every slot immediately.
        states_.resize_overwrite(static_cast<std::size_t>(n_states));
        parent_.resize_overwrite(static_cast<std::size_t>(n_states));
        initial_.resize(static_cast<std::size_t>(n_states));
        for (StateIndex s = 0; s < n_states; ++s) {
            states_[static_cast<std::size_t>(s)] = s;
            parent_[static_cast<std::size_t>(s)] = static_cast<NodeId>(s);
            initial_[static_cast<std::size_t>(s)] = static_cast<NodeId>(s);
            // Seal the filled prefix as we go: the sweep never reads these
            // arrays, so spilled identity builds keep a bounded window.
            if (spill && (s & (kSweepSegment - 1)) == kSweepSegment - 1) {
                states_.release_prefix(static_cast<std::size_t>(s));
                parent_.release_prefix(static_cast<std::size_t>(s));
            }
        }
    } else {
        init_bits.for_each_set([&](std::uint64_t s) {
            const NodeId id =
                intern(static_cast<StateIndex>(s), static_cast<NodeId>(0));
            parent_[id] = id;  // roots are their own parent
            initial_.push_back(id);
        });
    }

    prog_offsets_.push_back(0);
    fault_offsets_.push_back(0);

    // Scans the newly discovered nodes [from_id, states_.size()) in id
    // order against the stop predicate; on a hit records the canonically
    // least bad node and flips the fragment incomplete. Scanning whole
    // levels (never mid-level) keeps the discovered prefix — numbering,
    // edges, parents — identical for every thread count.
    auto scan_new_nodes = [&](std::size_t from_id) -> bool {
        if (stop_on == nullptr) return false;
        for (std::size_t i = from_id; i < states_.size(); ++i) {
            if (stop_at(states_[i])) {
                bad_node_ = static_cast<NodeId>(i);
                complete_ = false;
                if (tracing)
                    obs::trace_instant(tr().early_exit,
                                       static_cast<std::uint64_t>(i));
                return true;
            }
        }
        return false;
    };

    // On early exit the last level's nodes are never expanded; give them
    // empty CSR rows so the accessors stay total.
    auto pad_offsets = [&] {
        prog_offsets_.resize(states_.size() + 1, prog_edges_.size());
        fault_offsets_.resize(states_.size() + 1, fault_edges_.size());
    };

    std::uint64_t n_levels = 0;  // telemetry: BFS depth / frontier stats
    std::uint64_t frontier_max = 0;
    std::uint64_t levels_below_threshold = 0;
    // Cost model input of the serial/parallel decision: expanding one
    // state costs ~one guard probe + successor emission per action, so
    // level work scales with frontier size × action count.
    const std::uint64_t actions_per_state = std::max<std::uint64_t>(
        program_.num_actions() +
            (faults != nullptr ? faults->actions().size() : 0),
        1);
    const std::uint64_t work_min = parallel_work_min();

    bool stopped = scan_new_nodes(0);  // a bad root ends it before level 1

    // Per-level timeline rows (embedded in run reports, see
    // obs/trace.hpp) and heartbeat updates. One row per BFS level; the
    // merge-phase ns breakdown is filled only on the parallel path.
    std::vector<obs::LevelStat> tl_levels;
    std::uint64_t tl_prev_prog = 0, tl_prev_fault = 0;
    auto finish_level = [&](std::uint64_t level_index, std::size_t lvl_begin,
                            std::size_t lvl_end, std::uint64_t lvl_t0,
                            bool parallel_merge,
                            const std::array<std::uint64_t, 4>& phase_ns) {
        const std::uint64_t new_nodes = states_.size() - lvl_end;
        if (timeline) {
            obs::LevelStat ls;
            ls.level = level_index;
            ls.frontier = lvl_end - lvl_begin;
            ls.new_nodes = new_nodes;
            ls.program_edges = prog_edges_.size() - tl_prev_prog;
            ls.fault_edges = fault_edges_.size() - tl_prev_fault;
            ls.level_ns = obs::now_ns() - lvl_t0;
            ls.expand_claim_ns = phase_ns[0];
            ls.claim_filter_ns = phase_ns[1];
            ls.publish_ns = phase_ns[2];
            ls.edge_write_ns = phase_ns[3];
            ls.rss_bytes = obs::current_rss_bytes().value_or(0);
            ls.spill_bytes = spill ? spill_bytes() : 0;
            ls.spill_released_bytes = spill ? spill_released_bytes() : 0;
            ls.parallel = parallel_merge;
            tl_levels.push_back(ls);
            tl_prev_prog = prog_edges_.size();
            tl_prev_fault = fault_edges_.size();
        }
        if (tracing) obs::trace_instant(tr().level_done, level_index);
        if (progress_on)
            obs::progress_explore_level(
                level_index, new_nodes, states_.size(),
                spill ? spill_released_bytes() : 0);
    };

    // Level-synchronous BFS. Workers expand disjoint contiguous slices of
    // the current level into chunk-private buffers; a deterministic
    // two-pass merge then interns and appends without any serial section:
    //
    //   A  (parallel) expand + claim: every successor record is staged;
    //      uninterned targets are claimed min-chunk-wins (CAS on the
    //      direct map, per-shard lock on the sparse table), and each chunk
    //      keeps its first-local-occurrence claims in order;
    //   A2 (parallel) filter: drop claims lost to a smaller chunk — what
    //      remains per chunk is its canonical new-node subsequence;
    //   —  (serial, O(chunks)) prefix sums over per-chunk new-node and
    //      edge counts in canonical chunk order; pre-size states_/parent_/
    //      edge/offset arrays for the level;
    //   A3 (parallel) publish: assign ids base[c]+j, overwrite markers
    //      with real ids, write states_/parent_;
    //   B  (parallel) resolve every record to its final id and write
    //      edges + per-node offsets into the pre-sized CSR slices.
    //
    // Because a new node's owner is the canonically first chunk that
    // produced it and chunks are concatenated in slice order, discovery
    // order — and with it node numbering, edge order, and the BFS parent
    // tree — is identical to the sequential FIFO exploration, for every
    // thread count.
    std::vector<ChunkBuf> bufs;
    std::vector<std::uint64_t> base_new, base_prog, base_fault;
    std::vector<StateIndex> succ;  // scratch for the fused serial path
    std::vector<BatchKernel::Rec> brecs;      // batch serial-path staging
    std::vector<BatchKernel::Counts> bcounts;
    std::uint64_t sweep_states = 0;  // telemetry: states via identity sweep
    std::size_t level_begin = 0;
    while (!stopped && level_begin < states_.size()) {
        const obs::ScopedSpan level_span("verify/explore/level");
        const std::size_t level_end = states_.size();
        const std::uint64_t level_size = level_end - level_begin;
        const std::uint64_t level_index = n_levels;
        const std::uint64_t lvl_t0 = timeline ? obs::now_ns() : 0;
        const obs::TraceSpan level_tspan(tracing ? tr().level : 0,
                                         level_index);
        std::array<std::uint64_t, 4> phase_ns{0, 0, 0, 0};
        ++n_levels;
        frontier_max = std::max(frontier_max, level_size);
        // Levels with too little work stay serial regardless of the worker
        // budget: the staging/merge overhead dominates under the
        // threshold. Work = frontier size × actions — a function of the
        // canonical BFS and the program only, so the telemetry stays
        // thread-count-invariant.
        const bool small_level =
            level_size * actions_per_state < work_min;
        if (small_level) ++levels_below_threshold;
        const unsigned chunks =
            small_level ? 1
                        : parallel_chunk_count(level_size, n_threads,
                                               /*align=*/1);

        // Identity fast path: the one level of an identity exploration is
        // the whole space in ascending contiguous order, so the batch
        // kernel sweeps it with odometer digits and exact pre-counted CSR
        // slices — no interning, no staging, no per-state scratch. Output
        // positions are pure prefix sums of guard-bitset popcounts, hence
        // bit-identical for every thread count.
        if (batch != nullptr && identity_nodes_ && level_begin == 0 &&
            level_end == n_states) {
            const obs::ScopedSpan sweep_span("verify/explore/sweep");
            const obs::TraceSpan sweep_tspan(tracing ? tr().sweep : 0);
            sweep_states = n_states;
            const auto [prog_total, fault_total] =
                batch->count_edges(0, n_states);
            // resize_overwrite: the sweep writes every edge slot and every
            // offsets entry past index 0 ([0] was pushed as 0 above) —
            // exactly once, positions pre-counted.
            prog_edges_.resize_overwrite(prog_total);
            fault_edges_.resize_overwrite(fault_total);
            prog_offsets_.resize_overwrite(static_cast<std::size_t>(n_states) +
                                           1);
            fault_offsets_.resize_overwrite(
                static_cast<std::size_t>(n_states) + 1);
            // Segmenting bounds the resident window in spill mode (each
            // sealed segment is advised out); in-core runs use one
            // segment. Within a segment, chunks sweep disjoint pre-sized
            // slices.
            const StateIndex seg_step = spill ? kSweepSegment : n_states;
            std::uint64_t pcur = 0, fcur = 0;
            std::vector<std::pair<std::uint64_t, std::uint64_t>> ccnt, cbase;
            for (StateIndex seg = 0; seg < n_states; seg += seg_step) {
                const StateIndex seg_end =
                    std::min<StateIndex>(n_states, seg + seg_step);
                const std::uint64_t seg_words = ((seg_end - seg) + 63) >> 6;
                const unsigned seg_chunks =
                    chunks <= 1
                        ? 1
                        : parallel_chunk_count(seg_words, n_threads,
                                               /*align=*/1);
                if (seg_chunks <= 1) {
                    const auto [sp, sf] = batch->count_edges(seg, seg_end);
                    batch->sweep(seg, seg_end,
                                 {prog_edges_.data(), fault_edges_.data(),
                                  prog_offsets_.data(),
                                  fault_offsets_.data(), pcur, fcur});
                    pcur += sp;
                    fcur += sf;
                } else {
                    // Two deterministic passes over identical chunk
                    // bounds: count, prefix, sweep into disjoint slices.
                    ccnt.assign(seg_chunks, {0, 0});
                    parallel_chunks(
                        seg_words, n_threads, /*align=*/1,
                        [&](unsigned c, std::uint64_t wb, std::uint64_t we) {
                            const StateIndex b = seg + (wb << 6);
                            const StateIndex e = std::min<StateIndex>(
                                seg_end, seg + (we << 6));
                            ccnt[c] = batch->count_edges(b, e);
                        });
                    cbase.assign(seg_chunks, {0, 0});
                    for (unsigned c = 0; c < seg_chunks; ++c) {
                        cbase[c] = {pcur, fcur};
                        pcur += ccnt[c].first;
                        fcur += ccnt[c].second;
                    }
                    parallel_chunks(
                        seg_words, n_threads, /*align=*/1,
                        [&](unsigned c, std::uint64_t wb, std::uint64_t we) {
                            const obs::TraceSpan cspan(
                                tracing ? tr().sweep_chunk : 0, c);
                            const StateIndex b = seg + (wb << 6);
                            const StateIndex e = std::min<StateIndex>(
                                seg_end, seg + (we << 6));
                            batch->sweep(b, e,
                                         {prog_edges_.data(),
                                          fault_edges_.data(),
                                          prog_offsets_.data(),
                                          fault_offsets_.data(),
                                          cbase[c].first, cbase[c].second});
                        });
                }
                if (spill) {
                    prog_edges_.release_prefix(pcur);
                    fault_edges_.release_prefix(fcur);
                    prog_offsets_.release_prefix(seg_end);
                    fault_offsets_.release_prefix(seg_end);
                }
            }
            stopped = scan_new_nodes(level_end);
            finish_level(level_index, level_begin, level_end, lvl_t0,
                         chunks > 1, phase_ns);
            level_begin = level_end;
            continue;
        }

        if (chunks <= 1) {
            // Fused serial path: one worker would process the whole level,
            // so skip the staging buffers and intern/append inline. This is
            // exactly the sequential FIFO BFS, hence trivially canonical.
            if (batch != nullptr) {
                // Block-batched expansion: guard masks + specialized
                // successor emission into flat records (no per-state
                // scratch vector), then intern in record order — the same
                // FIFO sequence the per-state loop produces.
                for (std::size_t i = level_begin; i < level_end;
                     i += kExpandBlock) {
                    const std::size_t bn =
                        std::min(kExpandBlock, level_end - i);
                    brecs.clear();
                    bcounts.clear();
                    batch->expand_frontier(states_.data() + i, bn, brecs,
                                           bcounts);
                    std::size_t r = 0;
                    for (std::size_t j = 0; j < bn; ++j) {
                        const NodeId node = static_cast<NodeId>(i + j);
                        const auto [n_prog, n_fault] = bcounts[j];
                        for (std::uint32_t k = 0; k < n_prog; ++k, ++r) {
                            const auto [a, t] = brecs[r];
                            prog_edges_.push_back(Edge{a, intern(t, node)});
                        }
                        prog_offsets_.push_back(prog_edges_.size());
                        for (std::uint32_t k = 0; k < n_fault; ++k, ++r) {
                            const auto [a, t] = brecs[r];
                            fault_edges_.push_back(Edge{a, intern(t, node)});
                        }
                        fault_offsets_.push_back(fault_edges_.size());
                    }
                }
            } else {
                for (std::size_t i = level_begin; i < level_end; ++i) {
                    const StateIndex s = states_[i];
                    const NodeId node = static_cast<NodeId>(i);
                    expand(
                        s, succ,
                        [&](std::uint32_t a, StateIndex t) {
                            prog_edges_.push_back(Edge{a, intern(t, node)});
                        },
                        [&](std::uint32_t a, StateIndex t) {
                            fault_edges_.push_back(Edge{a, intern(t, node)});
                        });
                    prog_offsets_.push_back(prog_edges_.size());
                    fault_offsets_.push_back(fault_edges_.size());
                }
            }
            if (spill) {
                states_.release_prefix(level_end);
                parent_.release_prefix(level_end);
                prog_edges_.release_prefix(prog_edges_.size());
                fault_edges_.release_prefix(fault_edges_.size());
                prog_offsets_.release_prefix(level_end);
                fault_offsets_.release_prefix(level_end);
            }
            stopped = scan_new_nodes(level_end);
            finish_level(level_index, level_begin, level_end, lvl_t0,
                         /*parallel_merge=*/false, phase_ns);
            level_begin = level_end;
            continue;
        }

        DCFT_ASSERT(chunks < (kNoNode - kClaimBase),
                    "TransitionSystem: chunk count exceeds claim markers");
        if (bufs.size() < chunks) bufs.resize(chunks);
        if (base_new.size() < chunks) {
            base_new.resize(chunks);
            base_prog.resize(chunks);
            base_fault.resize(chunks);
        }

        // Phase A: parallel expand + claim.
        {
            const std::uint64_t pt0 = timeline ? obs::now_ns() : 0;
            const obs::ScopedSpan pspan("verify/explore/expand_claim");
            const obs::TraceSpan ptspan(tracing ? tr().expand : 0);
            parallel_chunks(
                level_size, n_threads, /*align=*/1,
                [&](unsigned c, std::uint64_t begin, std::uint64_t end) {
                    const obs::TraceSpan cspan(
                        tracing ? tr().expand_chunk : 0, c);
                    ChunkBuf& buf = bufs[c];
                    buf.recs.clear();
                    buf.counts.clear();
                    buf.claims.clear();
                    buf.prog_total = 0;
                    buf.fault_total = 0;
                    buf.begin = begin;
                    const NodeId mark = kClaimBase + c;
                    auto try_claim = [&](StateIndex t, NodeId from) {
                        if (identity_nodes_) return;  // everything interned
                        if (direct_mapped_) {
                            std::atomic_ref<NodeId> slot(
                                node_map_[static_cast<std::size_t>(t)]);
                            NodeId cur =
                                slot.load(std::memory_order_relaxed);
                            for (;;) {
                                // Real id, or a smaller/equal chunk's
                                // marker: nothing to do.
                                if (cur < kClaimBase || cur <= mark) return;
                                if (slot.compare_exchange_weak(
                                        cur, mark,
                                        std::memory_order_relaxed)) {
                                    buf.claims.emplace_back(t, from);
                                    return;
                                }
                            }
                        }
                        if (sparse_->claim(t, mark))
                            buf.claims.emplace_back(t, from);
                    };
                    if (batch != nullptr) {
                        // Block-batched expansion straight into the claim
                        // buffers: records land in buf.recs in canonical
                        // order, then the claim pass walks them with the
                        // correct parent — the same first-local-occurrence
                        // claim sequence the per-state loop produces.
                        for (std::uint64_t i = begin; i < end;
                             i += kExpandBlock) {
                            const std::uint64_t bn =
                                std::min<std::uint64_t>(kExpandBlock,
                                                        end - i);
                            const std::size_t rec_base = buf.recs.size();
                            const std::size_t cnt_base = buf.counts.size();
                            const auto [pt, ft] = batch->expand_frontier(
                                states_.data() + level_begin + i,
                                static_cast<std::size_t>(bn), buf.recs,
                                buf.counts);
                            buf.prog_total += pt;
                            buf.fault_total += ft;
                            std::size_t r = rec_base;
                            for (std::uint64_t j = 0; j < bn; ++j) {
                                const NodeId node = static_cast<NodeId>(
                                    level_begin + i + j);
                                const auto [n_prog, n_fault] =
                                    buf.counts[cnt_base + j];
                                const std::uint32_t total =
                                    n_prog + n_fault;
                                for (std::uint32_t k = 0; k < total;
                                     ++k, ++r)
                                    try_claim(buf.recs[r].second, node);
                            }
                        }
                        return;
                    }
                    std::vector<StateIndex> succ;
                    for (std::uint64_t i = begin; i < end; ++i) {
                        const StateIndex s = states_[level_begin + i];
                        const NodeId node =
                            static_cast<NodeId>(level_begin + i);
                        std::uint32_t n_prog = 0, n_fault = 0;
                        expand(
                            s, succ,
                            [&](std::uint32_t a, StateIndex t) {
                                buf.recs.emplace_back(a, t);
                                ++n_prog;
                                try_claim(t, node);
                            },
                            [&](std::uint32_t a, StateIndex t) {
                                buf.recs.emplace_back(a, t);
                                ++n_fault;
                                try_claim(t, node);
                            });
                        buf.counts.emplace_back(n_prog, n_fault);
                        buf.prog_total += n_prog;
                        buf.fault_total += n_fault;
                    }
                });
            if (timeline) phase_ns[0] = obs::now_ns() - pt0;
        }

        // Phase A2: drop claims lost to a smaller chunk. What survives,
        // in order, is the chunk's canonical new-node subsequence.
        {
            const std::uint64_t pt0 = timeline ? obs::now_ns() : 0;
            const obs::ScopedSpan pspan("verify/explore/claim_filter");
            const obs::TraceSpan ptspan(tracing ? tr().filter : 0);
            parallel_chunks(
                chunks, n_threads, /*align=*/1,
                [&](unsigned w, std::uint64_t cb, std::uint64_t ce) {
                    const obs::TraceSpan cspan(
                        tracing ? tr().filter_chunk : 0, w);
                    for (std::uint64_t c = cb; c < ce; ++c) {
                        auto& cl = bufs[c].claims;
                        const NodeId mark =
                            kClaimBase + static_cast<NodeId>(c);
                        std::size_t kept = 0;
                        for (const auto& [t, from] : cl)
                            if (lookup(t) == mark) cl[kept++] = {t, from};
                        cl.resize(kept);
                    }
                });
            if (timeline) phase_ns[1] = obs::now_ns() - pt0;
        }

        // Serial prefix sums in canonical chunk order; pre-size the level.
        std::uint64_t total_new = 0, prog_total = 0, fault_total = 0;
        for (unsigned c = 0; c < chunks; ++c) {
            base_new[c] = level_end + total_new;
            base_prog[c] = prog_edges_.size() + prog_total;
            base_fault[c] = fault_edges_.size() + fault_total;
            total_new += bufs[c].claims.size();
            prog_total += bufs[c].prog_total;
            fault_total += bufs[c].fault_total;
        }
        DCFT_ASSERT(level_end + total_new < kClaimBase,
                    "TransitionSystem: node count exceeds claim base");
        states_.resize(level_end + total_new);
        parent_.resize(level_end + total_new);
        prog_edges_.resize(prog_edges_.size() + prog_total);
        fault_edges_.resize(fault_edges_.size() + fault_total);
        prog_offsets_.resize(level_end + 1);
        fault_offsets_.resize(level_end + 1);

        // Phase A3: publish ids — overwrite the winning markers with the
        // final node ids and record states/parents. Each slot has exactly
        // one writer (its owner chunk), so this is race-free without
        // locks; the join below orders it before phase B's reads.
        {
            const std::uint64_t pt0 = timeline ? obs::now_ns() : 0;
            const obs::ScopedSpan pspan("verify/explore/publish");
            const obs::TraceSpan ptspan(tracing ? tr().publish : 0);
            parallel_chunks(
                chunks, n_threads, /*align=*/1,
                [&](unsigned w, std::uint64_t cb, std::uint64_t ce) {
                    const obs::TraceSpan cspan(
                        tracing ? tr().publish_chunk : 0, w);
                    for (std::uint64_t c = cb; c < ce; ++c) {
                        const auto& cl = bufs[c].claims;
                        for (std::size_t j = 0; j < cl.size(); ++j) {
                            const auto& [t, from] = cl[j];
                            const NodeId id =
                                static_cast<NodeId>(base_new[c] + j);
                            if (direct_mapped_)
                                node_map_[static_cast<std::size_t>(t)] = id;
                            else
                                sparse_->publish(t, id);
                            states_[id] = t;
                            parent_[id] = from;
                        }
                    }
                });
            if (timeline) phase_ns[2] = obs::now_ns() - pt0;
        }

        // Phase B: resolve every record to its final id and write edges +
        // per-node offsets into the pre-sized slices.
        {
            const std::uint64_t pt0 = timeline ? obs::now_ns() : 0;
            const obs::ScopedSpan pspan("verify/explore/edge_write");
            const obs::TraceSpan ptspan(tracing ? tr().edge_write : 0);
            parallel_chunks(
                chunks, n_threads, /*align=*/1,
                [&](unsigned w, std::uint64_t cb, std::uint64_t ce) {
                    const obs::TraceSpan cspan(
                        tracing ? tr().edge_write_chunk : 0, w);
                    for (std::uint64_t c = cb; c < ce; ++c) {
                        const ChunkBuf& buf = bufs[c];
                        std::uint64_t pc = base_prog[c];
                        std::uint64_t fc = base_fault[c];
                        std::size_t r = 0;
                        NodeId node =
                            static_cast<NodeId>(level_begin + buf.begin);
                        for (const auto& [n_prog, n_fault] : buf.counts) {
                            for (std::uint32_t k = 0; k < n_prog;
                                 ++k, ++r) {
                                const auto& [a, t] = buf.recs[r];
                                prog_edges_[pc++] = Edge{a, lookup(t)};
                            }
                            prog_offsets_[node + 1] = pc;
                            for (std::uint32_t k = 0; k < n_fault;
                                 ++k, ++r) {
                                const auto& [a, t] = buf.recs[r];
                                fault_edges_[fc++] = Edge{a, lookup(t)};
                            }
                            fault_offsets_[node + 1] = fc;
                            ++node;
                        }
                    }
                });
            if (timeline) phase_ns[3] = obs::now_ns() - pt0;
        }

        if (spill) {
            states_.release_prefix(level_end);
            parent_.release_prefix(level_end);
            prog_edges_.release_prefix(prog_edges_.size());
            fault_edges_.release_prefix(fault_edges_.size());
            prog_offsets_.release_prefix(level_end);
            fault_offsets_.release_prefix(level_end);
        }
        stopped = scan_new_nodes(level_end);
        finish_level(level_index, level_begin, level_end, lvl_t0,
                     /*parallel_merge=*/true, phase_ns);
        level_begin = level_end;
    }
    if (stopped) pad_offsets();

    if (timeline) {
        obs::ExplorationTimeline tl;
        tl.space_states = n_states;
        tl.total_ns = obs::now_ns() - explore_t0;
        tl.complete = complete_;
        tl.spilled = spill;
        tl.levels = std::move(tl_levels);
        obs::timeline_publish(std::move(tl));
    }

    // Telemetry flush: one registry access per exploration, never per
    // state. Everything under verify/explore/ is a function of the
    // canonical BFS, so the values are identical for every thread count
    // (pinned by tests/obs/telemetry_test); timing- or layout-dependent
    // interner statistics live under verify/interner/ and verify/mem/.
    if (telemetry) {
        auto& reg = obs::Registry::global();
        reg.counter("verify/explorations").add(1);
        // Both threshold counters are functions of the canonical BFS (the
        // level sizes), never of the worker budget, so they stay identical
        // across thread counts like every other verify/explore/ counter.
        reg.counter("verify/explore/parallel_threshold").set(work_min);
        reg.counter("verify/explore/levels_below_threshold")
            .add(levels_below_threshold);
        reg.counter("verify/explore/compiled")
            .add(compiled != nullptr ? 1 : 0);
        reg.counter("verify/explore/batched").add(batch != nullptr ? 1 : 0);
        reg.counter("verify/explore/sweep_states").add(sweep_states);
        if (compiled != nullptr) {
            // kCall fallback ops across the compiled guards: how much of
            // the program escaped full guard compilation (and with it the
            // batch layer). A pure function of the program, so it stays
            // thread-count-invariant.
            reg.counter("verify/kernel/kcall_fallbacks")
                .add(batch_coverage(*compiled).kcall_ops);
        }
        reg.counter("verify/explore/levels").add(n_levels);
        reg.counter("verify/explore/frontier_peak").record_max(frontier_max);
        reg.counter("verify/explore/nodes").add(states_.size());
        reg.counter("verify/explore/initial_states").add(initial_.size());
        reg.counter("verify/explore/program_edges").add(prog_edges_.size());
        reg.counter("verify/explore/fault_edges").add(fault_edges_.size());
        // Every node is discovered by exactly one interning decision;
        // every decision is an initial seed or an edge target.
        const std::uint64_t intern_calls = initial_.size() +
                                           prog_edges_.size() +
                                           fault_edges_.size();
        reg.counter("verify/explore/interner_misses").add(states_.size());
        reg.counter("verify/explore/interner_hits")
            .add(intern_calls - states_.size());
        if (stop_on != nullptr) {
            reg.counter("verify/explore/stop_scans").add(stop_scans);
            reg.counter("verify/explore/early_exit").add(stopped ? 1 : 0);
            if (stopped)
                reg.counter("verify/explore/early_exit_depth")
                    .record_max(n_levels);
        }
        // Interner tier + peak-bytes gauges. Probe/resize counts depend
        // on claim timing and slot layout, byte capacities on the growth
        // pattern of the chosen path — thread-variant by nature, hence
        // the separate prefixes.
        reg.counter(identity_nodes_
                        ? "verify/interner/identity"
                        : direct_mapped_ ? "verify/interner/direct"
                                         : "verify/interner/sparse")
            .add(1);
        std::uint64_t interner_bytes =
            node_map_.capacity() * sizeof(NodeId);
        if (sparse_ != nullptr) {
            interner_bytes += sparse_->bytes();
            reg.counter("verify/interner/probes").add(sparse_->probes());
            reg.counter("verify/interner/resizes").add(sparse_->resizes());
        }
        reg.counter("verify/mem/interner_bytes").record_max(interner_bytes);
        reg.counter("verify/mem/nodes_bytes")
            .record_max(states_.capacity() * sizeof(StateIndex) +
                        parent_.capacity() * sizeof(NodeId));
        reg.counter("verify/mem/edges_bytes")
            .record_max((prog_edges_.capacity() + fault_edges_.capacity()) *
                            sizeof(Edge) +
                        (prog_offsets_.capacity() +
                         fault_offsets_.capacity()) *
                            sizeof(std::uint64_t));
        if (spill) {
            // Out-of-core watermarks: bytes living in the spill files and
            // bytes advised out of the resident set during the build.
            reg.counter("verify/explorations_spilled").add(1);
            reg.counter("verify/mem/spill_bytes").record_max(spill_bytes());
            reg.counter("verify/mem/spill_released_bytes")
                .record_max(spill_released_bytes());
        }
    }
}

std::uint64_t TransitionSystem::spill_bytes() const {
    return states_.spill_bytes() + parent_.spill_bytes() +
           prog_offsets_.spill_bytes() + prog_edges_.spill_bytes() +
           fault_offsets_.spill_bytes() + fault_edges_.spill_bytes();
}

std::uint64_t TransitionSystem::spill_released_bytes() const {
    return states_.spill_released_bytes() + parent_.spill_released_bytes() +
           prog_offsets_.spill_released_bytes() +
           prog_edges_.spill_released_bytes() +
           fault_offsets_.spill_released_bytes() +
           fault_edges_.spill_released_bytes();
}

NodeId TransitionSystem::bad_node() const {
    DCFT_EXPECTS(!complete_ && bad_node_ != kNoNode,
                 "TransitionSystem::bad_node: exploration completed");
    return bad_node_;
}

NodeId TransitionSystem::first_bad_node(const Predicate& bad) const {
    const std::size_t n = states_.size();
    if (const auto& bits = bad.backing_bits();
        bits != nullptr && bits->size_bits() == space_->num_states()) {
        for (std::size_t i = 0; i < n; ++i)
            if (bits->test(states_[i])) return static_cast<NodeId>(i);
        return kNoNode;
    }
    for (std::size_t i = 0; i < n; ++i)
        if (bad.eval(*space_, states_[i])) return static_cast<NodeId>(i);
    return kNoNode;
}

BitVec TransitionSystem::state_bits() const {
    BitVec bits(space_->num_states());
    for (const StateIndex s : states_) bits.set(s);
    return bits;
}

void TransitionSystem::build_predecessors(CsrList& out,
                                          bool include_faults) const {
    const obs::ScopedSpan span("verify/preds_csr");
    obs::count("verify/preds_csr/builds");
    const std::size_t n = states_.size();
    if (spilled_) {
        // The reverse CSR inherits the out-of-core mode, and the two
        // sequential passes below over the (possibly advised-out) forward
        // edges benefit from explicit readahead.
        out.offsets_.enable_spill();
        out.items_.enable_spill();
        prog_offsets_.prefetch();
        prog_edges_.prefetch();
        if (include_faults) {
            fault_offsets_.prefetch();
            fault_edges_.prefetch();
        }
    }
    out.offsets_.assign(n + 1, 0);
    for (const Edge& e : prog_edges_) ++out.offsets_[e.to + 1];
    if (include_faults)
        for (const Edge& e : fault_edges_) ++out.offsets_[e.to + 1];
    for (std::size_t i = 1; i <= n; ++i)
        out.offsets_[i] += out.offsets_[i - 1];
    out.items_.resize(out.offsets_.empty() ? 0 : out.offsets_[n]);
    // Fill in ascending source order (program edges before fault edges per
    // source), matching the order the lazy seed builder produced.
    std::vector<std::uint64_t> cursor(out.offsets_.begin(),
                                      out.offsets_.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
        for (const Edge& e : program_edges(u))
            out.items_[cursor[e.to]++] = u;
        if (include_faults)
            for (const Edge& e : fault_edges(u))
                out.items_[cursor[e.to]++] = u;
    }
}

bool TransitionSystem::has_state(StateIndex s) const {
    if (identity_nodes_) return s < space_->num_states();
    if (interner_lazy_) ensure_interner();
    if (direct_mapped_)
        return s < node_map_.size() &&
               node_map_[static_cast<std::size_t>(s)] != kNoNode;
    return sparse_->find(s) != kNoNode;
}

NodeId TransitionSystem::node_of(StateIndex s) const {
    if (identity_nodes_) {
        DCFT_EXPECTS(s < space_->num_states(),
                     "TransitionSystem::node_of: state not reachable");
        return static_cast<NodeId>(s);
    }
    if (interner_lazy_) ensure_interner();
    if (direct_mapped_) {
        DCFT_EXPECTS(s < node_map_.size() &&
                         node_map_[static_cast<std::size_t>(s)] != kNoNode,
                     "TransitionSystem::node_of: state not reachable");
        return node_map_[static_cast<std::size_t>(s)];
    }
    const NodeId id = sparse_->find(s);
    DCFT_EXPECTS(id != kNoNode,
                 "TransitionSystem::node_of: state not reachable");
    return id;
}

bool TransitionSystem::enabled(NodeId n, std::uint32_t a) const {
    DCFT_EXPECTS(a < program_.num_actions(), "action index out of range");
    return program_.action(a).enabled(*space_, states_[n]);
}

std::vector<StateIndex> TransitionSystem::witness_path(NodeId n) const {
    DCFT_EXPECTS(n < states_.size(), "witness_path: node out of range");
    std::vector<StateIndex> path;
    NodeId cur = n;
    for (;;) {
        path.push_back(states_[cur]);
        if (parent_[cur] == cur) break;
        cur = parent_[cur];
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<WitnessStep> TransitionSystem::witness_trace(NodeId n) const {
    DCFT_EXPECTS(n < states_.size(), "witness_trace: node out of range");
    std::vector<NodeId> chain;
    for (NodeId cur = n;;) {
        chain.push_back(cur);
        if (parent_[cur] == cur) break;
        cur = parent_[cur];
    }
    std::reverse(chain.begin(), chain.end());

    std::vector<WitnessStep> out;
    out.reserve(chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) {
        WitnessStep step;
        step.state = states_[chain[i]];
        step.state_repr = space_->format(step.state);
        if (i > 0) {
            // Recover the acting action of the BFS tree edge u -> v.
            // Program edges are searched first, matching exploration order
            // (a program edge that discovered v wins over a later fault
            // edge to the same node).
            const NodeId u = chain[i - 1];
            const NodeId v = chain[i];
            bool found = false;
            for (const Edge& e : program_edges(u)) {
                if (e.to == v) {
                    step.action = program_.action(e.action).name();
                    step.fault = false;
                    found = true;
                    break;
                }
            }
            if (!found) {
                for (const Edge& e : fault_edges(u)) {
                    if (e.to == v) {
                        step.action = fault_action_names_[e.action];
                        step.fault = true;
                        found = true;
                        break;
                    }
                }
            }
            DCFT_ASSERT(found, "witness_trace: BFS tree edge not recorded");
        }
        out.push_back(std::move(step));
    }
    return out;
}

std::string TransitionSystem::format_witness(NodeId n) const {
    constexpr std::size_t kMaxShown = 6;
    const std::vector<StateIndex> path = witness_path(n);
    std::string out;
    const std::size_t start =
        path.size() > kMaxShown ? path.size() - kMaxShown : 0;
    if (start > 0) out += "... -> ";
    for (std::size_t i = start; i < path.size(); ++i) {
        if (i > start) out += " -> ";
        out += space_->format(path[i]);
    }
    return out;
}

}  // namespace dcft
