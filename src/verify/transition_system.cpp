#include "verify/transition_system.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "obs/telemetry.hpp"
#include "verify/action_kernel.hpp"

namespace dcft {
namespace {

/// Largest space for which the interner is a direct-mapped NodeId array
/// (4 bytes per state of the *whole* space). Beyond this we fall back to a
/// hash map keyed by state index.
constexpr StateIndex kDirectMapMax = StateIndex{1} << 25;

/// Frontier levels smaller than this stay on the fused serial path even
/// when multiple workers are available: for small levels the staging
/// buffers + chunk dispatch of the parallel path cost more than the
/// expansion itself (token_ring n=7 at 2 threads regressed 221ms -> 327ms
/// before this threshold existed). Recorded in telemetry as the gauge
/// verify/explore/parallel_threshold; the count of levels under it
/// (verify/explore/levels_below_threshold) is a function of the canonical
/// BFS only, hence identical for every thread count.
constexpr std::uint64_t kParallelFrontierMin = 16384;

/// Cap on speculative reserve() sizing (states) so pathological spaces do
/// not pre-allocate unbounded memory.
constexpr std::size_t kReserveCap = std::size_t{1} << 22;

/// Chunk-private successor records produced by one worker for one slice of
/// a BFS level. For each node of the slice, in order: `counts` holds
/// (#program successors, #fault successors) and `recs` holds those
/// successors contiguously — program records first, then fault records,
/// each as (action index, target state).
struct ChunkBuf {
    std::vector<std::pair<std::uint32_t, StateIndex>> recs;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> counts;
};

}  // namespace

TransitionSystem::TransitionSystem(const Program& program,
                                   const FaultClass* faults,
                                   const Predicate& init, unsigned n_threads)
    : space_(program.space_ptr()), program_(program) {
    if (faults != nullptr) {
        fault_action_names_.reserve(faults->actions().size());
        for (const auto& fac : faults->actions())
            fault_action_names_.push_back(fac.name());
    }
    explore(faults, init, resolve_verifier_threads(n_threads));
}

void TransitionSystem::explore(const FaultClass* faults,
                               const Predicate& init, unsigned n_threads) {
    const bool telemetry = obs::enabled();
    const obs::ScopedSpan span("verify/explore");
    const StateIndex n_states = space_->num_states();

    // Compile the guarded commands once per exploration (guard bytecode,
    // divmod-free effects, whole-space enabled bitsets for fully compiled
    // guards). DCFT_NO_COMPILE=1 keeps everything on the interpreted
    // Action/Predicate path — the differential oracle.
    std::unique_ptr<CompiledProgram> compiled;
    std::vector<const BitVec*> prog_gbits;
    std::vector<const BitVec*> fault_gbits;
    if (!compile_disabled()) {
        const obs::ScopedSpan cspan("verify/compile");
        compiled = std::make_unique<CompiledProgram>(program_, faults);
        // Whole-space guard bitsets pay off only when they can be filled
        // with word-level algebra; guards with opaque subtrees would need
        // a full-space scan, so those stay on per-state bytecode instead
        // (which touches only reachable states).
        auto collect = [](const CompiledActionSet& set,
                          std::vector<const BitVec*>& out) {
            out.reserve(set.size());
            for (const CompiledAction& a : set.actions()) {
                if (a.guard_fully_compiled()) {
                    a.ensure_guard_bits();
                    out.push_back(&a.guard_bits());
                } else {
                    out.push_back(nullptr);
                }
            }
        };
        collect(compiled->program_actions(), prog_gbits);
        if (compiled->has_faults())
            collect(compiled->fault_actions(), fault_gbits);
    }

    // Expands one state: evaluates each guard (bitset probe, bytecode, or
    // interpreted predicate) and appends each enabled action's successors
    // via on_prog/on_fault(action index, target). Successor order is
    // identical on both paths: actions in declaration order, each
    // action's successors in its statement order.
    auto expand = [&](StateIndex s, std::vector<StateIndex>& scratch,
                      auto&& on_prog, auto&& on_fault) {
        if (compiled != nullptr) {
            const auto pacts = compiled->program_actions().actions();
            for (std::uint32_t a = 0; a < pacts.size(); ++a) {
                const CompiledAction& ka = pacts[a];
                const BitVec* gb = prog_gbits[a];
                if (gb != nullptr ? !gb->test(s) : !ka.enabled(s)) continue;
                scratch.clear();
                ka.successors(s, scratch);
                for (StateIndex t : scratch) on_prog(a, t);
            }
            if (compiled->has_faults()) {
                const auto facts = compiled->fault_actions().actions();
                for (std::uint32_t a = 0; a < facts.size(); ++a) {
                    const CompiledAction& ka = facts[a];
                    const BitVec* gb = fault_gbits[a];
                    if (gb != nullptr ? !gb->test(s) : !ka.enabled(s))
                        continue;
                    scratch.clear();
                    ka.successors(s, scratch);
                    for (StateIndex t : scratch) on_fault(a, t);
                }
            }
            return;
        }
        for (std::uint32_t a = 0; a < program_.num_actions(); ++a) {
            scratch.clear();
            program_.action(a).successors(*space_, s, scratch);
            for (StateIndex t : scratch) on_prog(a, t);
        }
        if (faults != nullptr) {
            std::uint32_t a = 0;
            for (const auto& fac : faults->actions()) {
                scratch.clear();
                fac.successors(*space_, s, scratch);
                for (StateIndex t : scratch) on_fault(a, t);
                ++a;
            }
        }
    };

    direct_mapped_ = n_states <= kDirectMapMax;
    if (direct_mapped_) {
        node_map_.assign(static_cast<std::size_t>(n_states), kNoNode);
    }

    // Reserve from space-size heuristics: explicit-state instances are
    // usually mostly reachable, so size to the space (capped).
    const std::size_t guess =
        static_cast<std::size_t>(std::min<StateIndex>(n_states, kReserveCap));
    states_.reserve(guess);
    parent_.reserve(guess);
    prog_offsets_.reserve(guess + 1);
    fault_offsets_.reserve(guess + 1);
    if (!direct_mapped_) node_hash_.reserve(guess);
    // Edge vectors dominate the working set of dense explorations; growing
    // them by doubling re-copies tens of MB mid-BFS. Reserve one slot per
    // (state, action) — an upper bound for deterministic actions — capped.
    // reserve() only allocates address space; untouched tail pages are
    // never committed.
    constexpr std::size_t kEdgeReserveCap = std::size_t{1} << 24;
    prog_edges_.reserve(std::min<std::size_t>(
        guess * std::max<std::size_t>(program_.num_actions(), 1),
        kEdgeReserveCap));
    if (faults != nullptr)
        fault_edges_.reserve(std::min<std::size_t>(
            guess * std::max<std::size_t>(faults->actions().size(), 1),
            kEdgeReserveCap));

    // When the seed covers the whole space, the ascending-order root
    // interning makes node id == state index; every later intern is the
    // identity and the map probe (a random access into a multi-MB array —
    // the hottest memory traffic of dense explorations) can be skipped.
    // Set after seeding.
    bool identity_nodes = false;

    // Interns t (first discovery appends it to the next BFS level with
    // `from` as its BFS-tree parent). Serial — called only from the merge
    // pass, in canonical order.
    auto intern = [&](StateIndex t, NodeId from) -> NodeId {
        if (identity_nodes) return static_cast<NodeId>(t);
        if (direct_mapped_) {
            NodeId& slot = node_map_[static_cast<std::size_t>(t)];
            if (slot == kNoNode) {
                slot = static_cast<NodeId>(states_.size());
                states_.push_back(t);
                parent_.push_back(from);
            }
            return slot;
        }
        auto [it, inserted] =
            node_hash_.emplace(t, static_cast<NodeId>(states_.size()));
        if (inserted) {
            states_.push_back(t);
            parent_.push_back(from);
        }
        return it->second;
    };

    // Seed: bulk-evaluate init over the space (each state exactly once,
    // chunked across workers) and intern the satisfying states in
    // ascending order — the canonical root numbering.
    const BitVec init_bits = [&] {
        const obs::ScopedSpan seed_span("verify/explore/seed");
        if (compiled != nullptr) {
            BitVec b(n_states);
            fill_guard_bits(compiled->cspace(), init, b);
            return b;
        }
        return eval_bits(*space_, init, n_threads);
    }();
    initial_.reserve(static_cast<std::size_t>(init_bits.popcount()));
    init_bits.for_each_set([&](std::uint64_t s) {
        const NodeId id =
            intern(static_cast<StateIndex>(s), static_cast<NodeId>(0));
        parent_[id] = id;  // roots are their own parent
        initial_.push_back(id);
    });

    identity_nodes = states_.size() == static_cast<std::size_t>(n_states);

    prog_offsets_.push_back(0);
    fault_offsets_.push_back(0);

    // Level-synchronous BFS. Workers expand disjoint contiguous slices of
    // the current level into chunk-private buffers; the merge pass then
    // walks the buffers in slice order, interning targets and appending
    // CSR rows. Because nodes are expanded in id order and their successor
    // records are merged in expansion order, discovery order — and with it
    // node numbering, edge order, and the BFS parent tree — is identical
    // to the sequential FIFO exploration, for every thread count.
    std::vector<ChunkBuf> bufs;
    std::vector<StateIndex> succ;  // scratch for the fused serial path
    std::uint64_t n_levels = 0;    // telemetry: BFS depth / frontier stats
    std::uint64_t frontier_max = 0;
    std::uint64_t levels_below_threshold = 0;
    std::size_t level_begin = 0;
    while (level_begin < states_.size()) {
        const obs::ScopedSpan level_span("verify/explore/level");
        const std::size_t level_end = states_.size();
        const std::uint64_t level_size = level_end - level_begin;
        ++n_levels;
        frontier_max = std::max(frontier_max, level_size);
        // Small levels stay serial regardless of the worker budget: the
        // staging/merge overhead dominates under the threshold.
        const bool small_level = level_size < kParallelFrontierMin;
        if (small_level) ++levels_below_threshold;
        const unsigned chunks =
            small_level ? 1
                        : parallel_chunk_count(level_size, n_threads,
                                               /*align=*/1);

        if (chunks <= 1) {
            // Fused serial path: one worker would process the whole level,
            // so skip the staging buffers and intern/append inline. This is
            // exactly the sequential FIFO BFS, hence trivially canonical.
            for (std::size_t i = level_begin; i < level_end; ++i) {
                const StateIndex s = states_[i];
                const NodeId node = static_cast<NodeId>(i);
                expand(
                    s, succ,
                    [&](std::uint32_t a, StateIndex t) {
                        prog_edges_.push_back(Edge{a, intern(t, node)});
                    },
                    [&](std::uint32_t a, StateIndex t) {
                        fault_edges_.push_back(Edge{a, intern(t, node)});
                    });
                prog_offsets_.push_back(prog_edges_.size());
                fault_offsets_.push_back(fault_edges_.size());
            }
            level_begin = level_end;
            continue;
        }

        if (bufs.size() < chunks) bufs.resize(chunks);

        parallel_chunks(
            level_size, n_threads, /*align=*/1,
            [&](unsigned c, std::uint64_t begin, std::uint64_t end) {
                ChunkBuf& buf = bufs[c];
                buf.recs.clear();
                buf.counts.clear();
                std::vector<StateIndex> succ;
                for (std::uint64_t i = begin; i < end; ++i) {
                    const StateIndex s = states_[level_begin + i];
                    std::uint32_t n_prog = 0, n_fault = 0;
                    expand(
                        s, succ,
                        [&](std::uint32_t a, StateIndex t) {
                            buf.recs.emplace_back(a, t);
                            ++n_prog;
                        },
                        [&](std::uint32_t a, StateIndex t) {
                            buf.recs.emplace_back(a, t);
                            ++n_fault;
                        });
                    buf.counts.emplace_back(n_prog, n_fault);
                }
            });

        // Serial merge in canonical order.
        NodeId node = static_cast<NodeId>(level_begin);
        for (unsigned c = 0; c < chunks; ++c) {
            const ChunkBuf& buf = bufs[c];
            std::size_t r = 0;
            for (const auto& [n_prog, n_fault] : buf.counts) {
                for (std::uint32_t k = 0; k < n_prog; ++k, ++r) {
                    const auto& [a, t] = buf.recs[r];
                    prog_edges_.push_back(Edge{a, intern(t, node)});
                }
                prog_offsets_.push_back(prog_edges_.size());
                for (std::uint32_t k = 0; k < n_fault; ++k, ++r) {
                    const auto& [a, t] = buf.recs[r];
                    fault_edges_.push_back(Edge{a, intern(t, node)});
                }
                fault_offsets_.push_back(fault_edges_.size());
                ++node;
            }
        }
        DCFT_ASSERT(node == static_cast<NodeId>(level_end),
                    "TransitionSystem: level merge out of sync");
        level_begin = level_end;
    }

    // Telemetry flush: one registry access per exploration, never per
    // state. All of these are functions of the canonical BFS, so their
    // values are identical for every thread count (pinned by
    // tests/obs/telemetry_test).
    if (telemetry) {
        auto& reg = obs::Registry::global();
        reg.counter("verify/explorations").add(1);
        // Both threshold counters are functions of the canonical BFS (the
        // level sizes), never of the worker budget, so they stay identical
        // across thread counts like every other verify/explore/ counter.
        reg.counter("verify/explore/parallel_threshold")
            .set(kParallelFrontierMin);
        reg.counter("verify/explore/levels_below_threshold")
            .add(levels_below_threshold);
        reg.counter("verify/explore/compiled")
            .add(compiled != nullptr ? 1 : 0);
        reg.counter("verify/explore/levels").add(n_levels);
        reg.counter("verify/explore/frontier_peak").record_max(frontier_max);
        reg.counter("verify/explore/nodes").add(states_.size());
        reg.counter("verify/explore/initial_states").add(initial_.size());
        reg.counter("verify/explore/program_edges").add(prog_edges_.size());
        reg.counter("verify/explore/fault_edges").add(fault_edges_.size());
        // Every node is discovered by exactly one interning call; every
        // interning call is an initial seed or an edge target.
        const std::uint64_t intern_calls = initial_.size() +
                                           prog_edges_.size() +
                                           fault_edges_.size();
        reg.counter("verify/explore/interner_misses").add(states_.size());
        reg.counter("verify/explore/interner_hits")
            .add(intern_calls - states_.size());
    }
}

BitVec TransitionSystem::state_bits() const {
    BitVec bits(space_->num_states());
    for (const StateIndex s : states_) bits.set(s);
    return bits;
}

void TransitionSystem::build_predecessors(CsrList& out,
                                          bool include_faults) const {
    const obs::ScopedSpan span("verify/preds_csr");
    obs::count("verify/preds_csr/builds");
    const std::size_t n = states_.size();
    out.offsets_.assign(n + 1, 0);
    for (const Edge& e : prog_edges_) ++out.offsets_[e.to + 1];
    if (include_faults)
        for (const Edge& e : fault_edges_) ++out.offsets_[e.to + 1];
    for (std::size_t i = 1; i <= n; ++i)
        out.offsets_[i] += out.offsets_[i - 1];
    out.items_.resize(out.offsets_.empty() ? 0 : out.offsets_[n]);
    // Fill in ascending source order (program edges before fault edges per
    // source), matching the order the lazy seed builder produced.
    std::vector<std::uint64_t> cursor(out.offsets_.begin(),
                                      out.offsets_.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
        for (const Edge& e : program_edges(u))
            out.items_[cursor[e.to]++] = u;
        if (include_faults)
            for (const Edge& e : fault_edges(u))
                out.items_[cursor[e.to]++] = u;
    }
}

bool TransitionSystem::has_state(StateIndex s) const {
    if (direct_mapped_)
        return s < node_map_.size() &&
               node_map_[static_cast<std::size_t>(s)] != kNoNode;
    return node_hash_.count(s) != 0;
}

NodeId TransitionSystem::node_of(StateIndex s) const {
    if (direct_mapped_) {
        DCFT_EXPECTS(s < node_map_.size() &&
                         node_map_[static_cast<std::size_t>(s)] != kNoNode,
                     "TransitionSystem::node_of: state not reachable");
        return node_map_[static_cast<std::size_t>(s)];
    }
    auto it = node_hash_.find(s);
    DCFT_EXPECTS(it != node_hash_.end(),
                 "TransitionSystem::node_of: state not reachable");
    return it->second;
}

bool TransitionSystem::enabled(NodeId n, std::uint32_t a) const {
    DCFT_EXPECTS(a < program_.num_actions(), "action index out of range");
    return program_.action(a).enabled(*space_, states_[n]);
}

std::vector<StateIndex> TransitionSystem::witness_path(NodeId n) const {
    DCFT_EXPECTS(n < states_.size(), "witness_path: node out of range");
    std::vector<StateIndex> path;
    NodeId cur = n;
    for (;;) {
        path.push_back(states_[cur]);
        if (parent_[cur] == cur) break;
        cur = parent_[cur];
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<WitnessStep> TransitionSystem::witness_trace(NodeId n) const {
    DCFT_EXPECTS(n < states_.size(), "witness_trace: node out of range");
    std::vector<NodeId> chain;
    for (NodeId cur = n;;) {
        chain.push_back(cur);
        if (parent_[cur] == cur) break;
        cur = parent_[cur];
    }
    std::reverse(chain.begin(), chain.end());

    std::vector<WitnessStep> out;
    out.reserve(chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) {
        WitnessStep step;
        step.state = states_[chain[i]];
        step.state_repr = space_->format(step.state);
        if (i > 0) {
            // Recover the acting action of the BFS tree edge u -> v.
            // Program edges are searched first, matching exploration order
            // (a program edge that discovered v wins over a later fault
            // edge to the same node).
            const NodeId u = chain[i - 1];
            const NodeId v = chain[i];
            bool found = false;
            for (const Edge& e : program_edges(u)) {
                if (e.to == v) {
                    step.action = program_.action(e.action).name();
                    step.fault = false;
                    found = true;
                    break;
                }
            }
            if (!found) {
                for (const Edge& e : fault_edges(u)) {
                    if (e.to == v) {
                        step.action = fault_action_names_[e.action];
                        step.fault = true;
                        found = true;
                        break;
                    }
                }
            }
            DCFT_ASSERT(found, "witness_trace: BFS tree edge not recorded");
        }
        out.push_back(std::move(step));
    }
    return out;
}

std::string TransitionSystem::format_witness(NodeId n) const {
    constexpr std::size_t kMaxShown = 6;
    const std::vector<StateIndex> path = witness_path(n);
    std::string out;
    const std::size_t start =
        path.size() > kMaxShown ? path.size() - kMaxShown : 0;
    if (start > 0) out += "... -> ";
    for (std::size_t i = start; i < path.size(); ++i) {
        if (i > start) out += " -> ";
        out += space_->format(path[i]);
    }
    return out;
}

}  // namespace dcft
