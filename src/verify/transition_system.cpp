#include "verify/transition_system.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"

namespace dcft {

TransitionSystem::TransitionSystem(const Program& program,
                                   const FaultClass* faults,
                                   const Predicate& init)
    : space_(program.space_ptr()), program_(program) {
    // Seed with every state satisfying init (exhaustive scan of the space).
    std::deque<NodeId> frontier;
    const StateIndex n_states = space_->num_states();
    for (StateIndex s = 0; s < n_states; ++s) {
        if (!init.eval(*space_, s)) continue;
        const NodeId id = static_cast<NodeId>(states_.size());
        states_.push_back(s);
        node_of_.emplace(s, id);
        initial_.push_back(id);
        parent_.push_back(id);  // roots are their own parent
        frontier.push_back(id);
    }
    prog_edges_.resize(states_.size());
    fault_edges_.resize(states_.size());

    std::vector<StateIndex> succ;
    NodeId current = 0;
    auto intern = [&](StateIndex t) -> NodeId {
        auto [it, inserted] =
            node_of_.emplace(t, static_cast<NodeId>(states_.size()));
        if (inserted) {
            states_.push_back(t);
            prog_edges_.emplace_back();
            fault_edges_.emplace_back();
            parent_.push_back(current);
            frontier.push_back(it->second);
        }
        return it->second;
    };

    while (!frontier.empty()) {
        const NodeId n = frontier.front();
        frontier.pop_front();
        current = n;
        const StateIndex s = states_[n];
        for (std::uint32_t a = 0; a < program_.num_actions(); ++a) {
            succ.clear();
            program_.action(a).successors(*space_, s, succ);
            for (StateIndex t : succ) {
                // intern() may grow the edge vectors; sequence it first.
                const NodeId to = intern(t);
                prog_edges_[n].push_back(Edge{a, to});
            }
        }
        if (faults != nullptr) {
            std::uint32_t a = 0;
            for (const auto& fac : faults->actions()) {
                succ.clear();
                fac.successors(*space_, s, succ);
                for (StateIndex t : succ) {
                    const NodeId to = intern(t);
                    fault_edges_[n].push_back(Edge{a, to});
                }
                ++a;
            }
        }
    }
}

NodeId TransitionSystem::node_of(StateIndex s) const {
    auto it = node_of_.find(s);
    DCFT_EXPECTS(it != node_of_.end(),
                 "TransitionSystem::node_of: state not reachable");
    return it->second;
}

bool TransitionSystem::enabled(NodeId n, std::uint32_t a) const {
    DCFT_EXPECTS(a < program_.num_actions(), "action index out of range");
    return program_.action(a).enabled(*space_, states_[n]);
}

std::size_t TransitionSystem::num_program_edges() const {
    std::size_t total = 0;
    for (const auto& edges : prog_edges_) total += edges.size();
    return total;
}

std::vector<StateIndex> TransitionSystem::witness_path(NodeId n) const {
    DCFT_EXPECTS(n < states_.size(), "witness_path: node out of range");
    std::vector<StateIndex> path;
    NodeId cur = n;
    for (;;) {
        path.push_back(states_[cur]);
        if (parent_[cur] == cur) break;
        cur = parent_[cur];
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::string TransitionSystem::format_witness(NodeId n) const {
    constexpr std::size_t kMaxShown = 6;
    const std::vector<StateIndex> path = witness_path(n);
    std::string out;
    const std::size_t start =
        path.size() > kMaxShown ? path.size() - kMaxShown : 0;
    if (start > 0) out += "... -> ";
    for (std::size_t i = start; i < path.size(); ++i) {
        if (i > start) out += " -> ";
        out += space_->format(path[i]);
    }
    return out;
}

const std::vector<std::vector<NodeId>>& TransitionSystem::predecessors(
    bool include_faults) const {
    auto& cache = include_faults ? preds_all_ : preds_prog_;
    if (!cache.empty() || states_.empty()) return cache;
    cache.resize(states_.size());
    for (NodeId n = 0; n < states_.size(); ++n) {
        for (const Edge& e : prog_edges_[n]) cache[e.to].push_back(n);
        if (include_faults)
            for (const Edge& e : fault_edges_[n]) cache[e.to].push_back(n);
    }
    return cache;
}

}  // namespace dcft
