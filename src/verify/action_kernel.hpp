// Compiled action kernels: guard bytecode + divmod-free effects.
//
// The interpreted exploration path pays three indirections per successor:
// a std::function guard (often a tree of captured lambdas), a
// std::function effect, and mixed-radix divmod inside StateSpace::set.
// This layer compiles a guarded command once per exploration:
//
//   * guards with structural metadata (Predicate::NodeKind) lower to a
//     small postfix bytecode over CompiledSpace digit reads — no
//     std::function dispatch; opaque subtrees fall back to a kCall op
//     that invokes Predicate::eval for just that subtree;
//   * the whole-space *guard bitset* fills word-level enabled masks per
//     action (periodic range fills for var==const leaves, word algebra
//     for and/or/not, word copies for set-backed operands), so the BFS
//     inner loop tests one bit per (state, action);
//   * effects with structural metadata (Action::EffectForm) become
//     stride-delta arithmetic on the packed index; kGeneric effects call
//     the original statement.
//
// Compiled and interpreted paths are semantically identical by
// construction (structured effects generate their interpreted lambda from
// the same fields; guards always agree with Predicate::eval) and the
// differential tests pin successor sequences bit-for-bit. Set
// DCFT_NO_COMPILE=1 to force every consumer back onto the interpreted
// path — the differential oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bitvec.hpp"
#include "gc/action.hpp"
#include "gc/compiled.hpp"
#include "gc/predicate.hpp"
#include "gc/program.hpp"

namespace dcft {

/// True iff DCFT_NO_COMPILE is set (non-empty, not "0"): consumers must
/// use the interpreted Action/Predicate path. Re-read on every call so
/// tests can flip it per scope.
bool compile_disabled();

/// Postfix bytecode for one guard predicate. Compiled from the structural
/// metadata of a Predicate; opaque subtrees become kCall ops.
class GuardCode {
public:
    /// Compiles p. Every structured node lowers to a dedicated op; kOpaque
    /// (and pathological nesting deeper than the eval stack) lowers to
    /// kCall on the subtree, which simply invokes Predicate::eval.
    GuardCode(const CompiledSpace& cs, const Predicate& p);

    /// Evaluates the guard at state s without std::function dispatch on
    /// any structured node.
    bool eval(const CompiledSpace& cs, StateIndex s) const;

    /// Number of kCall fallback ops (0 = fully compiled).
    std::size_t num_opaque_ops() const { return opaque_.size(); }

private:
    friend void fill_guard_bits(const CompiledSpace& cs, const Predicate& p,
                                BitVec& out);

    struct Op {
        enum class K : std::uint8_t {
            kTrue,
            kFalse,
            kVarEqConst,
            kVarNeConst,
            kVarEqVar,
            kVarNeVar,
            kTestBits,  ///< set-backed leaf: bits[idx].test(s)
            kCall,      ///< opaque leaf: opaque[idx].eval(space, s)
            kAnd,
            kOr,
            kNot,
        };
        K k;
        VarId var = 0;
        VarId var2 = 0;
        Value value = 0;
        std::uint32_t idx = 0;
    };

    static constexpr int kMaxStack = 64;

    std::vector<Op> ops_;
    std::vector<std::shared_ptr<const BitVec>> bits_;
    std::vector<Predicate> opaque_;
};

/// Fills `out` (sized to the space) with the states satisfying p, using
/// word-level algebra wherever p's structure allows: periodic range fills
/// for var-vs-const leaves, word copies for set-backed leaves, word
/// and/or/not for connectives. Unstructured subtrees fall back to a
/// per-state scan of just that subtree. `out` is overwritten.
void fill_guard_bits(const CompiledSpace& cs, const Predicate& p,
                     BitVec& out);

/// One compiled guarded command.
class CompiledAction {
public:
    CompiledAction(std::shared_ptr<const CompiledSpace> cs, Action action);

    const Action& action() const { return action_; }

    /// Guard via bytecode (no std::function dispatch on structured nodes).
    bool enabled(StateIndex s) const { return guard_.eval(*cs_, s); }

    /// Appends the successors of s. Precondition: enabled(s). Structured
    /// effects run on CompiledSpace stride arithmetic; kGeneric effects
    /// call the original statement. The successor sequence is identical
    /// to Action::successors at every enabled state.
    ///
    /// Defined inline: this is the per-edge hot path of every exploration
    /// (millions of calls per build) and must not pay a cross-TU call. The
    /// effect form is cached by value at construction for the same reason.
    void successors(StateIndex s, std::vector<StateIndex>& out) const {
        using EK = Action::EffectForm::Kind;
        const CompiledSpace& cs = *cs_;
        switch (form_.kind) {
            case EK::kSkip:
                out.push_back(s);
                return;
            case EK::kAssignConst:
                out.push_back(cs.set(s, form_.var, form_.value));
                return;
            case EK::kAssignVar:
                out.push_back(cs.set(s, form_.var, cs.get(s, form_.var2)));
                return;
            case EK::kAssignAddMod:
                out.push_back(cs.set(
                    s, form_.var,
                    (cs.get(s, form_.var2) + form_.value) % form_.modulus));
                return;
            case EK::kAssignChoice: {
                const Value cur = cs.get(s, form_.var);
                for (const Value c : form_.choices)
                    out.push_back(cs.set_digit(s, form_.var, cur, c));
                return;
            }
            case EK::kCorruptAny: {
                for (const VarId v : form_.vars) {
                    const Value cur = cs.get(s, v);
                    const Value dom = cs.domain(v);
                    for (Value c = 0; c < dom; ++c)
                        if (c != cur)
                            out.push_back(cs.set_digit(s, v, cur, c));
                }
                return;
            }
            case EK::kGeneric:
            default:
                action_.apply_effect(cs.space(), s, out);
                return;
        }
    }

    /// Whole-space enabled bitset; built on first call (single-threaded),
    /// read-only afterwards. Callers that will read concurrently must call
    /// ensure_guard_bits() from one thread first.
    const BitVec& guard_bits() const;

    /// Builds the guard bitset now (idempotent). Call before sharing this
    /// object across exploration workers.
    void ensure_guard_bits() const;

    /// Whether the guard compiled without kCall fallbacks.
    bool guard_fully_compiled() const { return guard_.num_opaque_ops() == 0; }

    /// Number of kCall fallback ops in the compiled guard (telemetry:
    /// verify/kernel/kcall_fallbacks; 0 = fully compiled).
    std::size_t guard_opaque_ops() const { return guard_.num_opaque_ops(); }

    /// The cached structural effect form (kGeneric = opaque effect). The
    /// batch kernel lowers non-generic forms to flat stride arithmetic.
    const Action::EffectForm& effect_form() const { return form_; }

private:
    std::shared_ptr<const CompiledSpace> cs_;
    Action action_;
    Action::EffectForm form_;  ///< cached copy — no accessor call per edge
    GuardCode guard_;
    mutable std::unique_ptr<BitVec> guard_bits_;  // lazy, built once
};

/// A compiled set of actions over one space (a program's actions, or a
/// fault class's). Successor enumeration preserves the interpreted
/// iteration order: actions in declaration order, each action's
/// successors in its own order.
class CompiledActionSet {
public:
    CompiledActionSet(std::shared_ptr<const StateSpace> space,
                      std::span<const Action> actions);

    /// Shares an existing compiled space (e.g. the program's) instead of
    /// building a new one.
    CompiledActionSet(std::shared_ptr<const CompiledSpace> cs,
                      std::span<const Action> actions);

    const CompiledSpace& cspace() const { return *cs_; }
    std::shared_ptr<const CompiledSpace> cspace_ptr() const { return cs_; }

    std::span<const CompiledAction> actions() const { return actions_; }
    std::size_t size() const { return actions_.size(); }
    bool empty() const { return actions_.empty(); }
    const CompiledAction& operator[](std::size_t i) const {
        return actions_[i];
    }

    /// Guard-checked successors of s under every action, in order —
    /// matches Program::successors / FaultClass::successors exactly.
    void successors(StateIndex s, std::vector<StateIndex>& out) const;

    /// Precomputes every action's whole-space guard bitset (idempotent;
    /// call single-threaded before concurrent exploration).
    void ensure_guard_bits() const;

private:
    std::shared_ptr<const CompiledSpace> cs_;
    std::vector<CompiledAction> actions_;
};

/// Compiled program + optional fault class sharing one CompiledSpace —
/// the unit the transition-system builder and the fixpoint loops consume.
class CompiledProgram {
public:
    /// Compiles `program` and, when non-null, `faults` over one shared
    /// CompiledSpace.
    CompiledProgram(const Program& program, const FaultClass* faults);

    const CompiledSpace& cspace() const { return *cs_; }
    std::shared_ptr<const CompiledSpace> cspace_ptr() const { return cs_; }
    const CompiledActionSet& program_actions() const { return program_; }
    bool has_faults() const { return faults_ != nullptr; }
    const CompiledActionSet& fault_actions() const { return *faults_; }

    /// Precomputes all guard bitsets (program + faults).
    void ensure_guard_bits() const;

private:
    std::shared_ptr<const CompiledSpace> cs_;
    CompiledActionSet program_;
    std::unique_ptr<CompiledActionSet> faults_;
};

}  // namespace dcft
