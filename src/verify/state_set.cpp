#include "verify/state_set.hpp"

namespace dcft {

Predicate predicate_of(std::shared_ptr<const StateSet> set,
                       std::string name) {
    DCFT_EXPECTS(set != nullptr, "predicate_of requires a set");
    // Alias the set's bit vector so the predicate keeps the StateSet alive
    // while exposing the words to the bulk word-level paths.
    std::shared_ptr<const BitVec> bits(set, &set->bits());
    return Predicate::from_bits(std::move(name), std::move(bits));
}

StateSet materialize(const StateSpace& space, const Predicate& p) {
    return StateSet(eval_bits(space, p, /*n_threads=*/1));
}

StateSet materialize_parallel(const StateSpace& space, const Predicate& p,
                              unsigned n_threads) {
    return StateSet(eval_bits(space, p, n_threads));
}

}  // namespace dcft
