#include "verify/encapsulation.hpp"

#include <algorithm>
#include <optional>

namespace dcft {
namespace {

/// Does ac ever change a variable in `vars`?
bool touches(const StateSpace& space, const Action& ac, const VarSet& vars) {
    std::vector<StateIndex> succ;
    const auto members = vars.members();
    for (StateIndex s = 0; s < space.num_states(); ++s) {
        if (!ac.enabled(space, s)) continue;
        succ.clear();
        ac.successors(space, s, succ);
        for (StateIndex t : succ)
            for (VarId v : members)
                if (space.get(t, v) != space.get(s, v)) return true;
    }
    return false;
}

/// Finds the action of p that `ac` is based on: either `ac` itself appears
/// in p (same shared implementation), or an ancestor in its provenance
/// chain does.
std::optional<Action> base_in(const Action& ac, const Program& p) {
    Action cur = ac;
    for (;;) {
        for (const auto& pac : p.actions())
            if (pac.id() == cur.id()) return pac;
        if (!cur.has_base()) return std::nullopt;
        cur = cur.base();
    }
}

}  // namespace

CheckResult check_encapsulates(const Program& p_prime, const Program& p) {
    const StateSpace& space = p_prime.space();
    std::vector<StateIndex> succ, base_succ;
    std::vector<StateIndex> proj, base_proj;

    for (const auto& ac : p_prime.actions()) {
        if (!touches(space, ac, p.vars())) continue;  // st' only — exempt

        const auto base = base_in(ac, p);
        if (!base) {
            return CheckResult::failure(
                "encapsulation violated: action '" + ac.name() + "' of " +
                p_prime.name() + " updates variables of " + p.name() +
                " but is not derived from any of its actions");
        }

        for (StateIndex s = 0; s < space.num_states(); ++s) {
            if (!ac.enabled(space, s)) continue;
            // The guard g /\ g' must imply the base guard g.
            if (!base->enabled(space, s)) {
                return CheckResult::failure(
                    "encapsulation violated: '" + ac.name() +
                    "' is enabled at " + space.format(s) +
                    " where its base action '" + base->name() + "' is not");
            }
            // The effect on p's variables must be exactly st's effect.
            succ.clear();
            base_succ.clear();
            ac.successors(space, s, succ);
            base->successors(space, s, base_succ);
            proj.clear();
            base_proj.clear();
            for (StateIndex t : succ)
                proj.push_back(space.project(t, p.vars()));
            for (StateIndex t : base_succ)
                base_proj.push_back(space.project(t, p.vars()));
            std::sort(proj.begin(), proj.end());
            proj.erase(std::unique(proj.begin(), proj.end()), proj.end());
            std::sort(base_proj.begin(), base_proj.end());
            base_proj.erase(std::unique(base_proj.begin(), base_proj.end()),
                            base_proj.end());
            if (proj != base_proj) {
                return CheckResult::failure(
                    "encapsulation violated: at " + space.format(s) +
                    ", action '" + ac.name() + "' updates the variables of " +
                    p.name() + " differently from its base '" + base->name() +
                    "'");
            }
        }
    }
    return CheckResult::success();
}

}  // namespace dcft
