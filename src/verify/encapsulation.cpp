#include "verify/encapsulation.hpp"

#include <algorithm>
#include <optional>

#include "common/bitvec.hpp"

namespace dcft {
namespace {

/// Does ac ever change a variable in `vars`? The guard is evaluated in
/// bulk (once per state) and only the enabled states are visited.
bool touches(const StateSpace& space, const Action& ac, const VarSet& vars,
             const BitVec& enabled_bits) {
    std::vector<StateIndex> succ;
    const auto members = vars.members();
    bool found = false;
    enabled_bits.for_each_set([&](std::uint64_t s_raw) {
        if (found) return;
        const StateIndex s = static_cast<StateIndex>(s_raw);
        succ.clear();
        ac.successors(space, s, succ);
        for (StateIndex t : succ)
            for (VarId v : members)
                if (space.get(t, v) != space.get(s, v)) {
                    found = true;
                    return;
                }
    });
    return found;
}

/// Finds the action of p that `ac` is based on: either `ac` itself appears
/// in p (same shared implementation), or an ancestor in its provenance
/// chain does.
std::optional<Action> base_in(const Action& ac, const Program& p) {
    Action cur = ac;
    for (;;) {
        for (const auto& pac : p.actions())
            if (pac.id() == cur.id()) return pac;
        if (!cur.has_base()) return std::nullopt;
        cur = cur.base();
    }
}

}  // namespace

CheckResult check_encapsulates(const Program& p_prime, const Program& p) {
    const StateSpace& space = p_prime.space();
    std::vector<StateIndex> succ, base_succ;
    std::vector<StateIndex> proj, base_proj;

    for (const auto& ac : p_prime.actions()) {
        // Evaluate the guard once per state; every scan below visits only
        // the enabled states.
        const BitVec enabled_bits = eval_bits(space, ac.guard());
        if (!touches(space, ac, p.vars(), enabled_bits))
            continue;  // st' only — exempt

        const auto base = base_in(ac, p);
        if (!base) {
            return CheckResult::failure(
                "encapsulation violated: action '" + ac.name() + "' of " +
                p_prime.name() + " updates variables of " + p.name() +
                " but is not derived from any of its actions");
        }

        // Bulk-evaluate the base guard too: the per-state loop below then
        // probes two bitsets instead of re-evaluating either guard.
        const BitVec base_enabled = eval_bits(space, base->guard());

        for (StateIndex s = 0; s < space.num_states(); ++s) {
            if (!enabled_bits.test(s)) continue;
            // The guard g /\ g' must imply the base guard g.
            if (!base_enabled.test(s)) {
                return CheckResult::failure(
                    "encapsulation violated: '" + ac.name() +
                    "' is enabled at " + space.format(s) +
                    " where its base action '" + base->name() + "' is not");
            }
            // The effect on p's variables must be exactly st's effect.
            succ.clear();
            base_succ.clear();
            ac.successors(space, s, succ);
            base->successors(space, s, base_succ);
            proj.clear();
            base_proj.clear();
            for (StateIndex t : succ)
                proj.push_back(space.project(t, p.vars()));
            for (StateIndex t : base_succ)
                base_proj.push_back(space.project(t, p.vars()));
            std::sort(proj.begin(), proj.end());
            proj.erase(std::unique(proj.begin(), proj.end()), proj.end());
            std::sort(base_proj.begin(), base_proj.end());
            base_proj.erase(std::unique(base_proj.begin(), base_proj.end()),
                            base_proj.end());
            if (proj != base_proj) {
                return CheckResult::failure(
                    "encapsulation violated: at " + space.format(s) +
                    ", action '" + ac.name() + "' updates the variables of " +
                    p.name() + " differently from its base '" + base->name() +
                    "'");
            }
        }
    }
    return CheckResult::success();
}

}  // namespace dcft
