// Invariant calculation (Section 2.2.1: "one way to calculate an invariant
// of p is to characterize the set of states reachable under execution of
// p ... one may prefer invariants that properly include such a reachable
// set").
//
// dcft offers both directions:
//   reachable_invariant   — the smallest closed set containing some
//                           initial states (forward closure);
//   largest_safety_invariant — the *largest* set that is closed in p and
//                           from which no computation can ever violate the
//                           safety specification (greatest fixpoint:
//                           repeatedly remove states that are unsafe or
//                           have a successor outside the candidate set).
//
// Every invariant of p for the safety part of a specification is contained
// in the largest one — a property the test suite checks.
#pragma once

#include <memory>

#include "gc/program.hpp"
#include "spec/safety_spec.hpp"
#include "verify/state_set.hpp"

namespace dcft {

/// The smallest predicate containing `initial` that is closed in p.
Predicate reachable_invariant(const Program& p, const Predicate& initial);

/// The largest predicate S such that S is closed in p, every S-state is
/// allowed by `safety`, and every program transition from S is allowed.
/// May be empty (bottom) when no state can be made safe.
Predicate largest_safety_invariant(const Program& p,
                                   const SafetySpec& safety);

}  // namespace dcft
