// Closure checks (Section 2.2.1: "S is closed in p" iff p refines cl(S)
// from true).
#pragma once

#include "gc/program.hpp"
#include "verify/check_result.hpp"

namespace dcft {

/// Checks that S is closed in p: from every state of the space where S
/// holds, every successor under every action of p satisfies S.
CheckResult check_closed(const Program& p, const Predicate& s);

/// Checks that every action of f preserves S (the fault half of the
/// F-span condition, Section 2.3).
CheckResult check_preserved(const FaultClass& f, const Predicate& s);

/// Early-exit closure check: 'S closed in p' (and preserved by every
/// action of f, when f is non-null), decided by exploring p [] f from S
/// with the stop predicate !S. Every S-state is a root of that
/// exploration, so any violating transition is discovered at depth 1 —
/// the scan touches |S| states plus one successor level instead of
/// sweeping the whole space, and it terminates at the first (canonically
/// least node id) escaping state with a replayable witness.
/// Verdict-equivalent to check_closed(p, s) && check_preserved(*f, s);
/// with f == nullptr the failure message is identical to check_closed's
/// (same state order, action order, successor order). With faults the
/// reported violation is the canonically first escaping *state*, which
/// may attribute the escape to a fault action where the two-pass check
/// would have reported a later program violation first.
CheckResult check_closed_reachable(const Program& p, const FaultClass* f,
                                   const Predicate& s,
                                   unsigned n_threads = 0);

}  // namespace dcft
