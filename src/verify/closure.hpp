// Closure checks (Section 2.2.1: "S is closed in p" iff p refines cl(S)
// from true).
#pragma once

#include "gc/program.hpp"
#include "verify/check_result.hpp"

namespace dcft {

/// Checks that S is closed in p: from every state of the space where S
/// holds, every successor under every action of p satisfies S.
CheckResult check_closed(const Program& p, const Predicate& s);

/// Checks that every action of f preserves S (the fault half of the
/// F-span condition, Section 2.3).
CheckResult check_preserved(const FaultClass& f, const Predicate& s);

}  // namespace dcft
