#include "verify/fairness.hpp"

#include <algorithm>
#include <deque>

#include "obs/telemetry.hpp"

namespace dcft {
namespace {

/// Iterative Tarjan SCC over the sub-graph of program edges whose endpoints
/// both satisfy `in_h`. Returns component ids (dense, otherwise arbitrary);
/// nodes outside H get component id UINT32_MAX.
struct SccResult {
    std::vector<std::uint32_t> comp;
    std::uint32_t num_comps = 0;
};

constexpr std::uint32_t kNoComp = ~std::uint32_t{0};

SccResult tarjan_scc(const TransitionSystem& ts, const std::vector<char>& in_h) {
    const std::size_t n = ts.num_nodes();
    SccResult result;
    result.comp.assign(n, kNoComp);

    std::vector<std::uint32_t> index(n, kNoComp), low(n, 0);
    std::vector<char> on_stack(n, 0);
    std::vector<NodeId> stack;
    std::uint32_t next_index = 0;

    struct Frame {
        NodeId node;
        std::size_t edge;
    };
    std::vector<Frame> call;

    for (NodeId root = 0; root < n; ++root) {
        if (!in_h[root] || index[root] != kNoComp) continue;
        call.push_back(Frame{root, 0});
        index[root] = low[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = 1;
        while (!call.empty()) {
            Frame& f = call.back();
            const auto& edges = ts.program_edges(f.node);
            bool descended = false;
            while (f.edge < edges.size()) {
                const NodeId w = edges[f.edge].to;
                ++f.edge;
                if (!in_h[w]) continue;
                if (index[w] == kNoComp) {
                    call.push_back(Frame{w, 0});
                    index[w] = low[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = 1;
                    descended = true;
                    break;
                }
                if (on_stack[w]) low[f.node] = std::min(low[f.node], index[w]);
            }
            if (descended) continue;
            // f.node finished.
            const NodeId v = f.node;
            call.pop_back();
            if (!call.empty())
                low[call.back().node] = std::min(low[call.back().node], low[v]);
            if (low[v] == index[v]) {
                const std::uint32_t c = result.num_comps++;
                for (;;) {
                    const NodeId w = stack.back();
                    stack.pop_back();
                    on_stack[w] = 0;
                    result.comp[w] = c;
                    if (w == v) break;
                }
            }
        }
    }
    return result;
}

}  // namespace

std::vector<char> eval_on_nodes(const TransitionSystem& ts,
                                const Predicate& p) {
    std::vector<char> out(ts.num_nodes());
    // Set-backed predicates answer with a bit probe per node instead of a
    // std::function call.
    if (const auto& bits = p.backing_bits();
        bits != nullptr && bits->size_bits() == ts.space().num_states()) {
        for (NodeId n = 0; n < ts.num_nodes(); ++n)
            out[n] = bits->test(ts.state_of(n)) ? 1 : 0;
        return out;
    }
    for (NodeId n = 0; n < ts.num_nodes(); ++n)
        out[n] = p.eval(ts.space(), ts.state_of(n)) ? 1 : 0;
    return out;
}

std::vector<char> fair_avoidance_set(const TransitionSystem& ts,
                                     const std::vector<char>& target) {
    const std::size_t n = ts.num_nodes();
    std::vector<char> in_h(n);
    for (std::size_t i = 0; i < n; ++i) in_h[i] = target[i] ? 0 : 1;

    std::vector<char> avoid(n, 0);
    std::deque<NodeId> frontier;

    // Finite maximal computations: terminal !target nodes.
    for (NodeId v = 0; v < n; ++v) {
        if (in_h[v] && ts.terminal(v)) {
            avoid[v] = 1;
            frontier.push_back(v);
        }
    }

    // Infinite fair computations confined to !target: feasible SCCs.
    const SccResult scc = tarjan_scc(ts, in_h);
    if (scc.num_comps > 0) {
        std::vector<std::vector<NodeId>> members(scc.num_comps);
        for (NodeId v = 0; v < n; ++v)
            if (scc.comp[v] != kNoComp) members[scc.comp[v]].push_back(v);

        const std::size_t num_actions = ts.num_program_actions();
        std::vector<char> has_internal(num_actions);
        for (std::uint32_t c = 0; c < scc.num_comps; ++c) {
            const auto& nodes = members[c];
            // Internal edges per action, and whether any exist at all.
            std::fill(has_internal.begin(), has_internal.end(), 0);
            bool any_internal = false;
            for (NodeId v : nodes) {
                for (const auto& e : ts.program_edges(v)) {
                    if (in_h[e.to] && scc.comp[e.to] == c) {
                        has_internal[e.action] = 1;
                        any_internal = true;
                    }
                }
            }
            if (!any_internal) continue;  // trivial SCC, no self-loop
            bool feasible = true;
            for (std::uint32_t a = 0; a < num_actions && feasible; ++a) {
                if (has_internal[a]) continue;
                bool enabled_everywhere = true;
                for (NodeId v : nodes) {
                    if (!ts.enabled(v, a)) {
                        enabled_everywhere = false;
                        break;
                    }
                }
                if (enabled_everywhere) feasible = false;
            }
            if (feasible) {
                for (NodeId v : nodes) {
                    if (!avoid[v]) {
                        avoid[v] = 1;
                        frontier.push_back(v);
                    }
                }
            }
        }
    }

    // Backward closure within !target over program edges: a node that can
    // reach an avoidance node without touching target also avoids. Only
    // touch the (lazily built) predecessor cache when there is anything to
    // close over — in passing checks the avoidance seed is empty and the
    // cache is never materialized.
    if (!frontier.empty()) {
        const auto& preds = ts.predecessors(/*include_faults=*/false);
        while (!frontier.empty()) {
            const NodeId v = frontier.front();
            frontier.pop_front();
            for (NodeId u : preds[v]) {
                if (in_h[u] && !avoid[u]) {
                    avoid[u] = 1;
                    frontier.push_back(u);
                }
            }
        }
    }
    return avoid;
}

CheckResult check_leads_to(const TransitionSystem& ts, const Predicate& p,
                           const Predicate& q, bool include_fault_edges) {
    const obs::ScopedSpan span("verify/liveness");
    obs::count("verify/obligations/liveness");
    const std::vector<char> target = eval_on_nodes(ts, q);
    std::vector<char> bad = fair_avoidance_set(ts, target);

    if (include_fault_edges) {
        // A violating computation may also use finitely many fault steps
        // inside !q before its program-only suffix; extend backwards over
        // program + fault edges within !q. Skipped entirely (no predecessor
        // cache build) when there is nothing to extend.
        std::deque<NodeId> frontier;
        for (NodeId v = 0; v < ts.num_nodes(); ++v)
            if (bad[v]) frontier.push_back(v);
        if (!frontier.empty()) {
            const auto& preds = ts.predecessors(/*include_faults=*/true);
            while (!frontier.empty()) {
                const NodeId v = frontier.front();
                frontier.pop_front();
                for (NodeId u : preds[v]) {
                    if (!target[u] && !bad[u]) {
                        bad[u] = 1;
                        frontier.push_back(u);
                    }
                }
            }
        }
    }

    for (NodeId v = 0; v < ts.num_nodes(); ++v) {
        if (!target[v] && bad[v] && p.eval(ts.space(), ts.state_of(v))) {
            return CheckResult::failure(
                "leads-to violated: " + p.name() + " ~~> " + q.name() +
                    " fails from state " +
                    ts.space().format(ts.state_of(v)) +
                    (ts.terminal(v) ? " (maximal/terminal state)"
                                    : " (fair computation avoids target)") +
                    "; reached via: " + ts.format_witness(v),
                ts.witness_trace(v));
        }
    }
    return CheckResult::success();
}

CheckResult check_reaches(const TransitionSystem& ts, const Predicate& target,
                          bool include_fault_edges) {
    return check_leads_to(ts, Predicate::top(), target, include_fault_edges);
}

}  // namespace dcft
