// Deciding liveness under the paper's computation model (Section 2.1/2.3):
// computations are p-fair (every continuously enabled program action is
// eventually executed), p-maximal (finite computations end in states where
// no program action is enabled), and contain finitely many fault steps.
//
// The core query is leads-to: P ~~> Q. A violation is a computation that
// reaches a P-state and stays in !Q forever. Because faults are finite,
// such a computation decomposes into a finite prefix inside !Q (program and
// fault steps) followed by a fair, maximal, program-only run inside !Q.
// fair_avoidance_set computes the start states of such program-only runs
// exactly, by SCC analysis:
//
//   A fair infinite program-only run confined to !Q exists from n iff n can
//   reach (inside !Q) an SCC C of the !Q-restricted program graph such that
//   every program action enabled at *all* states of C has a transition that
//   stays inside C. (If an action is enabled everywhere in C but always
//   exits C, any run confined to any subset of C starves it — weak fairness
//   rules the run out; the condition is also sufficient, by constructing a
//   run that tours C and fires each such action infinitely often.)
//   Finite maximal runs are the terminal !Q states.
#pragma once

#include "verify/check_result.hpp"
#include "verify/transition_system.hpp"

namespace dcft {

/// For each node of ts: true iff some fair maximal *program-only*
/// computation starting there never visits a node satisfying `target`.
/// `target` is indexed by NodeId.
std::vector<char> fair_avoidance_set(const TransitionSystem& ts,
                                     const std::vector<char>& target);

/// Evaluates a predicate at every node of ts.
std::vector<char> eval_on_nodes(const TransitionSystem& ts,
                                const Predicate& p);

/// Checks P ~~> Q over all computations captured by ts (fault edges are
/// taken finitely often when `include_fault_edges`; they are always exempt
/// from fairness). Considers every node of ts as potentially visited.
CheckResult check_leads_to(const TransitionSystem& ts, const Predicate& p,
                           const Predicate& q, bool include_fault_edges);

/// Checks that every computation from the nodes of ts eventually reaches
/// `target` (true ~~> target).
CheckResult check_reaches(const TransitionSystem& ts, const Predicate& target,
                          bool include_fault_edges);

}  // namespace dcft
