#include "verify/detection_predicate.hpp"

#include "common/parallel.hpp"

namespace dcft {

std::shared_ptr<const StateSet> weakest_detection_set(const StateSpace& space,
                                                      const Action& ac,
                                                      const SafetySpec& spec) {
    const StateIndex n = space.num_states();
    BitVec out(n);
    // Chunks are word-aligned so workers never share a word of `out`.
    parallel_chunks(
        n, default_verifier_threads(), BitVec::kWordBits,
        [&](unsigned, std::uint64_t begin, std::uint64_t end) {
            std::vector<StateIndex> succ;
            for (StateIndex s = begin; s < end; ++s) {
                if (!ac.enabled(space, s)) {
                    out.set(s);  // vacuous: ac cannot execute here
                    continue;
                }
                succ.clear();
                ac.successors(space, s, succ);
                bool safe = true;
                for (StateIndex t : succ) {
                    if (!spec.transition_allowed(space, s, t) ||
                        !spec.state_allowed(space, t)) {
                        safe = false;
                        break;
                    }
                }
                if (safe) out.set(s);
            }
        });
    return std::make_shared<StateSet>(std::move(out));
}

Predicate weakest_detection_predicate(const StateSpace& space,
                                      const Action& ac,
                                      const SafetySpec& spec) {
    return predicate_of(weakest_detection_set(space, ac, spec),
                        "wdp(" + ac.name() + ")");
}

bool is_detection_predicate(const StateSpace& space, const Predicate& x,
                            const Action& ac, const SafetySpec& spec) {
    const auto weakest = weakest_detection_set(space, ac, spec);
    // x is a detection predicate iff x => weakest — one bulk evaluation of
    // x, then a word-level containment check.
    const BitVec x_bits = eval_bits(space, x);
    return x_bits.is_subset_of(weakest->bits());
}

}  // namespace dcft
