#include "verify/detection_predicate.hpp"

namespace dcft {

std::shared_ptr<const StateSet> weakest_detection_set(const StateSpace& space,
                                                      const Action& ac,
                                                      const SafetySpec& spec) {
    auto out = std::make_shared<StateSet>(space.num_states());
    std::vector<StateIndex> succ;
    for (StateIndex s = 0; s < space.num_states(); ++s) {
        if (!ac.enabled(space, s)) {
            out->insert(s);  // vacuous: ac cannot execute here
            continue;
        }
        succ.clear();
        ac.successors(space, s, succ);
        bool safe = true;
        for (StateIndex t : succ) {
            if (!spec.transition_allowed(space, s, t) ||
                !spec.state_allowed(space, t)) {
                safe = false;
                break;
            }
        }
        if (safe) out->insert(s);
    }
    return out;
}

Predicate weakest_detection_predicate(const StateSpace& space,
                                      const Action& ac,
                                      const SafetySpec& spec) {
    return predicate_of(weakest_detection_set(space, ac, spec),
                        "wdp(" + ac.name() + ")");
}

bool is_detection_predicate(const StateSpace& space, const Predicate& x,
                            const Action& ac, const SafetySpec& spec) {
    const auto weakest = weakest_detection_set(space, ac, spec);
    for (StateIndex s = 0; s < space.num_states(); ++s)
        if (x.eval(space, s) && !weakest->contains(s)) return false;
    return true;
}

}  // namespace dcft
