// Explicit transition systems over program (and fault) actions.
//
// The verifier works on the reachable fragment of the state space: nodes
// are states reached from an initial predicate by program actions and,
// optionally, fault actions. Program and fault edges are kept separate
// because the paper treats them asymmetrically — computations are p-fair
// and p-maximal, and fault actions occur only finitely often (Section 2.3).
//
// Performance architecture (see DESIGN.md):
//  * Exploration is level-synchronous parallel BFS: each frontier level is
//    split into contiguous chunks whose successor sets are computed by
//    worker threads into chunk-private buffers; a serial merge pass then
//    interns newly discovered states in canonical order. Node numbering,
//    edge order, and witness paths are therefore bit-for-bit identical to
//    the sequential FIFO BFS for every thread count.
//  * The interner is a direct-mapped std::vector<NodeId> over the packed
//    state indices (O(1) array lookup per successor) for spaces up to
//    ~2^26 states, falling back to a hash map beyond that.
//  * Edges are stored CSR (compressed sparse row): flat offsets[] /
//    edges[] arrays built append-only during the merge, giving
//    cache-friendly iteration everywhere the checkers consume adjacency.
//  * The predecessor CSRs (program-only and program+fault) are built
//    lazily on first request, guarded by a std::once_flag, so checkers
//    that never walk edges backwards (e.g. safety scans) do not pay for
//    them — while a const TransitionSystem& stays safely shareable across
//    checker threads.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvec.hpp"
#include "gc/program.hpp"
#include "verify/check_result.hpp"

namespace dcft {

/// Node identifier inside one TransitionSystem (dense, 0-based).
using NodeId = std::uint32_t;

/// Explicit-state transition graph of p (optionally p [] F) restricted to
/// the states reachable from an initial set.
class TransitionSystem {
public:
    struct Edge {
        std::uint32_t action;  ///< index into actions() / fault_actions()
        NodeId to;

        friend bool operator==(const Edge&, const Edge&) = default;
    };

    /// Read-only CSR adjacency: rows are nodes, lists[n] is a contiguous
    /// span. Used for the predecessor caches.
    class CsrList {
    public:
        std::span<const NodeId> operator[](NodeId n) const {
            return {items_.data() + offsets_[n], offsets_[n + 1] - offsets_[n]};
        }
        std::size_t num_items() const { return items_.size(); }

    private:
        friend class TransitionSystem;
        std::vector<std::uint64_t> offsets_;  ///< size num_nodes() + 1
        std::vector<NodeId> items_;
    };

    /// Builds the reachable fragment from all states satisfying `init`.
    /// If `faults` is non-null, fault transitions participate in
    /// reachability and are recorded as fault edges.
    ///
    /// `n_threads` bounds the exploration worker count (0 = the process
    /// default, see default_verifier_threads()). The resulting system —
    /// node numbering, edge order, witness paths — is identical for every
    /// thread count.
    TransitionSystem(const Program& program, const FaultClass* faults,
                     const Predicate& init, unsigned n_threads = 0);

    const StateSpace& space() const { return *space_; }
    const Program& program() const { return program_; }

    std::size_t num_nodes() const { return states_.size(); }
    StateIndex state_of(NodeId n) const { return states_[n]; }

    /// Node of a state, if the state is in the reachable fragment.
    bool has_state(StateIndex s) const;
    NodeId node_of(StateIndex s) const;

    /// Nodes whose states satisfied `init` at construction time.
    const std::vector<NodeId>& initial_nodes() const { return initial_; }

    std::span<const Edge> program_edges(NodeId n) const {
        return {prog_edges_.data() + prog_offsets_[n],
                prog_offsets_[n + 1] - prog_offsets_[n]};
    }
    std::span<const Edge> fault_edges(NodeId n) const {
        return {fault_edges_.data() + fault_offsets_[n],
                fault_offsets_[n + 1] - fault_offsets_[n]};
    }

    std::size_t num_program_actions() const { return program_.num_actions(); }

    /// Whether program action `a` is enabled at node n.
    bool enabled(NodeId n, std::uint32_t a) const;

    /// Whether no program action is enabled at node n (p-maximal end state).
    bool terminal(NodeId n) const {
        return prog_offsets_[n] == prog_offsets_[n + 1];
    }

    /// Total number of program edges (for diagnostics and benches).
    std::size_t num_program_edges() const { return prog_edges_.size(); }
    /// Total number of fault edges.
    std::size_t num_fault_edges() const { return fault_edges_.size(); }

    /// Reverse adjacency over program edges (and fault edges if requested).
    /// Built lazily on first request behind a std::once_flag, so concurrent
    /// calls on a const TransitionSystem are safe and the cost is only paid
    /// by checkers that actually walk edges backwards.
    const CsrList& predecessors(bool include_faults) const {
        if (include_faults) {
            std::call_once(preds_all_once_,
                           [this] { build_predecessors(preds_all_, true); });
            return preds_all_;
        }
        std::call_once(preds_prog_once_,
                       [this] { build_predecessors(preds_prog_, false); });
        return preds_prog_;
    }

    /// Bitset over the *whole* state space marking exactly the states of
    /// this system's nodes. For a system of p [] F explored from an
    /// invariant this is the fault span (the reachable closure of the
    /// invariant under program and fault steps).
    BitVec state_bits() const;

    /// States along a shortest exploration path from some initial node to
    /// n (inclusive); used to report counterexample witnesses.
    std::vector<StateIndex> witness_path(NodeId n) const;

    /// witness_path(n) as a structured, replayable trace: each step carries
    /// the formatted state plus the provenance (name, fault flag) of the
    /// action that produced it along the BFS tree.
    std::vector<WitnessStep> witness_trace(NodeId n) const;

    /// Name of fault action `a` (as recorded at construction; empty
    /// FaultClass-less systems have none).
    const std::string& fault_action_name(std::uint32_t a) const {
        return fault_action_names_[a];
    }

    /// "s0 -> s1 -> ... -> sk" rendering of witness_path(n), capped to the
    /// last few states for long paths.
    std::string format_witness(NodeId n) const;

private:
    void explore(const FaultClass* faults, const Predicate& init,
                 unsigned n_threads);
    void build_predecessors(CsrList& out, bool include_faults) const;

    std::shared_ptr<const StateSpace> space_;
    Program program_;
    /// Names of the fault actions (index-aligned with fault edge action
    /// ids), retained for witness-trace provenance.
    std::vector<std::string> fault_action_names_;
    std::vector<StateIndex> states_;  ///< node -> state, BFS discovery order
    std::vector<NodeId> initial_;
    std::vector<NodeId> parent_;  ///< BFS tree; parent_[n] == n at roots

    // CSR edge storage: offsets have num_nodes()+1 entries; edges of node n
    // are [offsets[n], offsets[n+1]). Program edges of a node are ordered
    // by action index then successor order; fault edges likewise.
    std::vector<std::uint64_t> prog_offsets_;
    std::vector<Edge> prog_edges_;
    std::vector<std::uint64_t> fault_offsets_;
    std::vector<Edge> fault_edges_;

    // Interner / reverse lookup. Direct-mapped for small spaces (node_map_
    // has space_->num_states() entries, kNoNode = absent); hash map beyond.
    static constexpr NodeId kNoNode = ~NodeId{0};
    std::vector<NodeId> node_map_;
    std::unordered_map<StateIndex, NodeId> node_hash_;
    bool direct_mapped_ = false;

    // Lazily built predecessor CSRs, one once_flag each so asking for the
    // program-only reverse graph never pays for the (often much larger)
    // program+fault one. `mutable` + std::once_flag keeps the const
    // accessor thread-safe: the first caller builds, everyone else blocks
    // on the flag and then reads immutable data.
    mutable std::once_flag preds_prog_once_;
    mutable std::once_flag preds_all_once_;
    mutable CsrList preds_prog_;
    mutable CsrList preds_all_;
};

}  // namespace dcft
