// Explicit transition systems over program (and fault) actions.
//
// The verifier works on the reachable fragment of the state space: nodes
// are states reached from an initial predicate by program actions and,
// optionally, fault actions. Program and fault edges are kept separate
// because the paper treats them asymmetrically — computations are p-fair
// and p-maximal, and fault actions occur only finitely often (Section 2.3).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gc/program.hpp"

namespace dcft {

/// Node identifier inside one TransitionSystem (dense, 0-based).
using NodeId = std::uint32_t;

/// Explicit-state transition graph of p (optionally p [] F) restricted to
/// the states reachable from an initial set.
class TransitionSystem {
public:
    struct Edge {
        std::uint32_t action;  ///< index into actions() / fault_actions()
        NodeId to;
    };

    /// Builds the reachable fragment from all states satisfying `init`.
    /// If `faults` is non-null, fault transitions participate in
    /// reachability and are recorded as fault edges.
    TransitionSystem(const Program& program, const FaultClass* faults,
                     const Predicate& init);

    const StateSpace& space() const { return *space_; }
    const Program& program() const { return program_; }

    std::size_t num_nodes() const { return states_.size(); }
    StateIndex state_of(NodeId n) const { return states_[n]; }

    /// Node of a state, if the state is in the reachable fragment.
    bool has_state(StateIndex s) const { return node_of_.count(s) != 0; }
    NodeId node_of(StateIndex s) const;

    /// Nodes whose states satisfied `init` at construction time.
    const std::vector<NodeId>& initial_nodes() const { return initial_; }

    const std::vector<Edge>& program_edges(NodeId n) const {
        return prog_edges_[n];
    }
    const std::vector<Edge>& fault_edges(NodeId n) const {
        return fault_edges_[n];
    }

    std::size_t num_program_actions() const { return program_.num_actions(); }

    /// Whether program action `a` is enabled at node n.
    bool enabled(NodeId n, std::uint32_t a) const;

    /// Whether no program action is enabled at node n (p-maximal end state).
    bool terminal(NodeId n) const { return prog_edges_[n].empty(); }

    /// Total number of program edges (for diagnostics and benches).
    std::size_t num_program_edges() const;

    /// Reverse adjacency over program edges (and fault edges if requested),
    /// built lazily on first use.
    const std::vector<std::vector<NodeId>>& predecessors(
        bool include_faults) const;

    /// States along a shortest exploration path from some initial node to
    /// n (inclusive); used to report counterexample witnesses.
    std::vector<StateIndex> witness_path(NodeId n) const;

    /// "s0 -> s1 -> ... -> sk" rendering of witness_path(n), capped to the
    /// last few states for long paths.
    std::string format_witness(NodeId n) const;

private:
    std::shared_ptr<const StateSpace> space_;
    Program program_;
    std::vector<StateIndex> states_;
    std::unordered_map<StateIndex, NodeId> node_of_;
    std::vector<NodeId> initial_;
    std::vector<std::vector<Edge>> prog_edges_;
    std::vector<std::vector<Edge>> fault_edges_;
    std::vector<NodeId> parent_;  ///< BFS tree; parent_[n] == n at roots
    mutable std::vector<std::vector<NodeId>> preds_prog_;
    mutable std::vector<std::vector<NodeId>> preds_all_;
};

}  // namespace dcft
