// Explicit transition systems over program (and fault) actions.
//
// The verifier works on the reachable fragment of the state space: nodes
// are states reached from an initial predicate by program actions and,
// optionally, fault actions. Program and fault edges are kept separate
// because the paper treats them asymmetrically — computations are p-fair
// and p-maximal, and fault actions occur only finitely often (Section 2.3).
//
// Performance architecture (see DESIGN.md §7):
//  * Exploration is level-synchronous parallel BFS: each frontier level is
//    split into contiguous chunks whose successor sets are computed by
//    worker threads into chunk-private buffers. Newly discovered states
//    are interned by a two-pass deterministic merge (parallel per-chunk
//    claim + dedup, a serial prefix sum over chunk counts in canonical
//    chunk order, then parallel id publication and edge writes into
//    pre-sized CSR slices) — there is no serial intern/append section.
//    Node numbering, edge order, and witness paths are bit-for-bit
//    identical to the sequential FIFO BFS for every thread count.
//  * The interner is three-tiered: when the initial set covers the whole
//    space, node id == state index and no reverse map is allocated at all;
//    spaces up to DCFT_DIRECT_MAP_MAX states (default 2^25) use a
//    direct-mapped NodeId array (O(1) array probe per successor); larger
//    spaces use a sharded open-addressing fingerprint table
//    (SparseNodeTable) sized from the initial-set cardinality.
//  * Safety-style obligations may register a stop predicate
//    (ExploreOptions::stop_on): the exploration then terminates at the
//    first — canonically least node id, hence deterministic — discovered
//    state satisfying it, instead of materializing the full graph. The
//    resulting fragment keeps the canonical node numbering as a prefix of
//    the full graph's, so witnesses agree with full-graph scans.
//  * Edges are stored CSR (compressed sparse row): flat offsets[] /
//    edges[] arrays, giving cache-friendly iteration everywhere the
//    checkers consume adjacency.
//  * The predecessor CSRs (program-only and program+fault) are built
//    lazily on first request, guarded by a std::once_flag, so checkers
//    that never walk edges backwards (e.g. safety scans) do not pay for
//    them — while a const TransitionSystem& stays safely shareable across
//    checker threads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "gc/program.hpp"
#include "verify/check_result.hpp"
#include "verify/spill.hpp"

namespace dcft {

/// Node identifier inside one TransitionSystem (dense, 0-based).
using NodeId = std::uint32_t;

class SparseNodeTable;  // sharded open-addressing interner (internal)

/// Exploration knobs beyond the (program, faults, init) triple.
struct ExploreOptions {
    /// Worker-thread bound (0 = the process default, see
    /// default_verifier_threads()). The resulting system is identical for
    /// every thread count.
    unsigned n_threads = 0;

    /// When non-null, the exploration stops at the first discovered state
    /// satisfying this predicate (checked once per newly interned state,
    /// in canonical node-id order at each BFS level). The stop state and
    /// every node of its level are retained; nodes past the last expanded
    /// level carry empty edge rows. Must outlive the constructor call.
    const Predicate* stop_on = nullptr;

    /// Out-of-core mode: node and CSR arrays live in mmap-backed spill
    /// files and sealed BFS levels are advised out of RSS, so peak
    /// resident memory tracks the active frontier window instead of the
    /// whole graph (see DESIGN.md §7). The resulting graph is bit-for-bit
    /// identical to an in-core build. DCFT_SPILL=1 forces this on.
    bool spill = false;
};

/// Explicit-state transition graph of p (optionally p [] F) restricted to
/// the states reachable from an initial set.
class TransitionSystem {
public:
    /// Sentinel node id ("absent"), also returned by first_bad_node.
    static constexpr NodeId kNoNode = ~NodeId{0};

    struct Edge {
        std::uint32_t action;  ///< index into actions() / fault_actions()
        NodeId to;

        friend bool operator==(const Edge&, const Edge&) = default;
    };

    /// Read-only CSR adjacency: rows are nodes, lists[n] is a contiguous
    /// span. Used for the predecessor caches.
    class CsrList {
    public:
        std::span<const NodeId> operator[](NodeId n) const {
            return {items_.data() + offsets_[n], offsets_[n + 1] - offsets_[n]};
        }
        std::size_t num_items() const { return items_.size(); }

    private:
        friend class TransitionSystem;
        SpillVector<std::uint64_t> offsets_;  ///< size num_nodes() + 1
        SpillVector<NodeId> items_;
    };

    /// Builds the reachable fragment from all states satisfying `init`.
    /// If `faults` is non-null, fault transitions participate in
    /// reachability and are recorded as fault edges.
    ///
    /// `n_threads` bounds the exploration worker count (0 = the process
    /// default, see default_verifier_threads()). The resulting system —
    /// node numbering, edge order, witness paths — is identical for every
    /// thread count.
    TransitionSystem(const Program& program, const FaultClass* faults,
                     const Predicate& init, unsigned n_threads = 0);

    /// As above with explicit options (early-exit stop predicate).
    TransitionSystem(const Program& program, const FaultClass* faults,
                     const Predicate& init, const ExploreOptions& options);

    /// Flat-array bundle for adopting a stored graph (verify/graph_store):
    /// the exact member arrays of a completed exploration, typically
    /// backed by SpillFile::adopt_region mappings of a `dcft.graph` file.
    struct AdoptedArrays {
        SpillVector<StateIndex> states;
        std::vector<NodeId> initial;
        SpillVector<NodeId> parent;
        SpillVector<std::uint64_t> prog_offsets;
        SpillVector<Edge> prog_edges;
        SpillVector<std::uint64_t> fault_offsets;
        SpillVector<Edge> fault_edges;
        bool identity_nodes = false;  ///< node id == state index
    };

    /// Reconstructs a complete system from stored arrays without
    /// re-exploration. The interner (reverse state -> node map) is NOT
    /// part of the snapshot; it is rebuilt lazily on the first
    /// has_state()/node_of() call, so adoption itself is O(mmap).
    static std::shared_ptr<TransitionSystem> adopt(
        const Program& program, std::vector<std::string> fault_action_names,
        AdoptedArrays&& arrays);

    ~TransitionSystem();

    const StateSpace& space() const { return *space_; }
    const Program& program() const { return program_; }

    std::size_t num_nodes() const { return states_.size(); }
    StateIndex state_of(NodeId n) const { return states_[n]; }

    /// Whether the exploration ran to exhaustion. Always true when no stop
    /// predicate was registered; false iff the stop predicate fired.
    /// Incomplete systems are early-exit fragments: every discovered node
    /// and its canonical numbering is a prefix of the full graph's, but
    /// nodes of the last level carry no outgoing edges and terminal() is
    /// meaningless for them.
    bool complete() const { return complete_; }

    /// The node the stop predicate fired on. Only valid when !complete();
    /// this is the least node id of any state satisfying the stop
    /// predicate in the *full* graph (the canonical first violation), so
    /// witnesses agree with full-graph scans (see first_bad_node).
    NodeId bad_node() const;

    /// Least node id whose state satisfies `bad`, or kNoNode. On a
    /// complete graph this is exactly the node an early-exit exploration
    /// with stop_on = &bad would have reported — the scan the early-exit
    /// consumers use when the cache already holds the full graph.
    NodeId first_bad_node(const Predicate& bad) const;

    /// Node of a state, if the state is in the reachable fragment.
    bool has_state(StateIndex s) const;
    NodeId node_of(StateIndex s) const;

    /// Nodes whose states satisfied `init` at construction time.
    const std::vector<NodeId>& initial_nodes() const { return initial_; }

    std::span<const Edge> program_edges(NodeId n) const {
        return {prog_edges_.data() + prog_offsets_[n],
                prog_offsets_[n + 1] - prog_offsets_[n]};
    }
    std::span<const Edge> fault_edges(NodeId n) const {
        return {fault_edges_.data() + fault_offsets_[n],
                fault_offsets_[n + 1] - fault_offsets_[n]};
    }

    std::size_t num_program_actions() const { return program_.num_actions(); }

    /// Whether program action `a` is enabled at node n.
    bool enabled(NodeId n, std::uint32_t a) const;

    /// Whether no program action is enabled at node n (p-maximal end state).
    /// Only meaningful on complete() systems (an early-exit fragment has
    /// unexpanded frontier nodes with empty rows).
    bool terminal(NodeId n) const {
        return prog_offsets_[n] == prog_offsets_[n + 1];
    }

    /// Total number of program edges (for diagnostics and benches).
    std::size_t num_program_edges() const { return prog_edges_.size(); }
    /// Total number of fault edges.
    std::size_t num_fault_edges() const { return fault_edges_.size(); }

    /// Raw CSR arrays, exactly as explored — the byte layout the graph
    /// store serializes. Stable for the lifetime of the system.
    std::span<const StateIndex> raw_states() const {
        return {states_.data(), states_.size()};
    }
    std::span<const NodeId> raw_parent() const {
        return {parent_.data(), parent_.size()};
    }
    std::span<const std::uint64_t> raw_prog_offsets() const {
        return {prog_offsets_.data(), prog_offsets_.size()};
    }
    std::span<const Edge> raw_prog_edges() const {
        return {prog_edges_.data(), prog_edges_.size()};
    }
    std::span<const std::uint64_t> raw_fault_offsets() const {
        return {fault_offsets_.data(), fault_offsets_.size()};
    }
    std::span<const Edge> raw_fault_edges() const {
        return {fault_edges_.data(), fault_edges_.size()};
    }
    /// Whether the identity interner tier is active (node id == state
    /// index; nothing allocated). Recorded in graph snapshots.
    bool identity_interner() const { return identity_nodes_; }

    /// Approximate bytes of RAM/page-cache this system keeps resident:
    /// node + CSR arrays, the interner tier, and the initial list. The
    /// unit of the exploration cache's byte-budget accounting.
    std::uint64_t resident_bytes() const;

    /// Whether this system was built out-of-core (ExploreOptions::spill
    /// or DCFT_SPILL).
    bool spilled() const { return spilled_; }
    /// Total bytes currently held in spill files (0 for in-core systems).
    std::uint64_t spill_bytes() const;
    /// Bytes advised out of resident memory during the build (0 in-core).
    std::uint64_t spill_released_bytes() const;

    /// Reverse adjacency over program edges (and fault edges if requested).
    /// Built lazily on first request behind a std::once_flag, so concurrent
    /// calls on a const TransitionSystem are safe and the cost is only paid
    /// by checkers that actually walk edges backwards.
    const CsrList& predecessors(bool include_faults) const {
        if (include_faults) {
            std::call_once(preds_all_once_,
                           [this] { build_predecessors(preds_all_, true); });
            return preds_all_;
        }
        std::call_once(preds_prog_once_,
                       [this] { build_predecessors(preds_prog_, false); });
        return preds_prog_;
    }

    /// Bitset over the *whole* state space marking exactly the states of
    /// this system's nodes. For a system of p [] F explored from an
    /// invariant this is the fault span (the reachable closure of the
    /// invariant under program and fault steps).
    BitVec state_bits() const;

    /// States along a shortest exploration path from some initial node to
    /// n (inclusive); used to report counterexample witnesses.
    std::vector<StateIndex> witness_path(NodeId n) const;

    /// witness_path(n) as a structured, replayable trace: each step carries
    /// the formatted state plus the provenance (name, fault flag) of the
    /// action that produced it along the BFS tree.
    std::vector<WitnessStep> witness_trace(NodeId n) const;

    /// Name of fault action `a` (as recorded at construction; empty
    /// FaultClass-less systems have none).
    const std::string& fault_action_name(std::uint32_t a) const {
        return fault_action_names_[a];
    }
    std::size_t num_fault_actions() const {
        return fault_action_names_.size();
    }

    /// "s0 -> s1 -> ... -> sk" rendering of witness_path(n), capped to the
    /// last few states for long paths.
    std::string format_witness(NodeId n) const;

private:
    /// Adoption constructor (see adopt()); interner left for lazy rebuild.
    TransitionSystem(const Program& program,
                     std::vector<std::string> fault_action_names,
                     AdoptedArrays&& arrays);

    void explore(const FaultClass* faults, const Predicate& init,
                 unsigned n_threads, const Predicate* stop_on, bool spill);
    void build_predecessors(CsrList& out, bool include_faults) const;
    /// Builds the reverse state -> node map of an adopted system on first
    /// use (direct map or sparse table, by the usual tier rule).
    void ensure_interner() const;

    std::shared_ptr<const StateSpace> space_;
    Program program_;
    /// Names of the fault actions (index-aligned with fault edge action
    /// ids), retained for witness-trace provenance.
    std::vector<std::string> fault_action_names_;
    /// node -> state, BFS discovery order. Spillable: sealed levels are
    /// the "cold frontier segments" advised out of RSS in spill mode.
    SpillVector<StateIndex> states_;
    std::vector<NodeId> initial_;
    SpillVector<NodeId> parent_;  ///< BFS tree; parent_[n] == n at roots

    // CSR edge storage: offsets have num_nodes()+1 entries; edges of node n
    // are [offsets[n], offsets[n+1]). Program edges of a node are ordered
    // by action index then successor order; fault edges likewise.
    // Spillable: completed levels stream to the mmap arena in spill mode.
    SpillVector<std::uint64_t> prog_offsets_;
    SpillVector<Edge> prog_edges_;
    SpillVector<std::uint64_t> fault_offsets_;
    SpillVector<Edge> fault_edges_;
    bool spilled_ = false;

    // Interner / reverse lookup — one of three tiers (see file comment):
    // identity (init covered the space: node id == state index, nothing
    // allocated), direct-mapped (node_map_ has space_->num_states()
    // entries, kNoNode = absent), or the sharded sparse table.
    bool identity_nodes_ = false;
    bool direct_mapped_ = false;
    /// Adopted systems defer the reverse map to the first has_state()/
    /// node_of() call (ensure_interner); `mutable` + once_flag keeps the
    /// const accessors thread-safe, exactly like the predecessor CSRs.
    bool interner_lazy_ = false;
    mutable std::once_flag interner_once_;
    mutable std::vector<NodeId> node_map_;
    mutable std::unique_ptr<SparseNodeTable> sparse_;

    // Early-exit state (see complete() / bad_node()).
    bool complete_ = true;
    NodeId bad_node_ = kNoNode;

    // Lazily built predecessor CSRs, one once_flag each so asking for the
    // program-only reverse graph never pays for the (often much larger)
    // program+fault one. `mutable` + std::once_flag keeps the const
    // accessor thread-safe: the first caller builds, everyone else blocks
    // on the flag and then reads immutable data.
    mutable std::once_flag preds_prog_once_;
    mutable std::once_flag preds_all_once_;
    mutable CsrList preds_prog_;
    mutable CsrList preds_all_;
};

}  // namespace dcft
