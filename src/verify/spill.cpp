#include "verify/spill.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "obs/trace.hpp"

namespace dcft {
namespace {

constexpr std::size_t kPage = 4096;
/// Release granularity: batch MADV_DONTNEED calls so per-level hints on
/// small levels do not degenerate into syscall spam.
constexpr std::size_t kReleaseChunk = std::size_t{1} << 22;  // 4 MiB

std::size_t round_up_page(std::size_t n) {
    return (n + kPage - 1) & ~(kPage - 1);
}

std::string spill_directory() {
    if (const char* d = std::getenv("DCFT_SPILL_DIR"); d != nullptr && *d)
        return d;
    if (const char* t = std::getenv("TMPDIR"); t != nullptr && *t) return t;
    return "/tmp";
}

/// Process-wide pool of RAM arenas (see SpillFile::acquire_ram). Bounded
/// so long-lived processes that once built a huge in-core graph do not
/// hold its arenas forever.
struct ArenaPool {
    std::mutex mu;
    std::vector<std::unique_ptr<SpillFile>> arenas;
    std::size_t total_bytes = 0;
};

ArenaPool& arena_pool() {
    static ArenaPool* pool = new ArenaPool;  // leaked: outlives any static
    return *pool;
}

constexpr std::size_t kPoolMaxArenas = 16;
constexpr std::size_t kPoolMaxBytes = std::size_t{256} << 20;  // 256 MiB

}  // namespace

bool spill_enabled() { return env_flag_enabled("DCFT_SPILL"); }

std::unique_ptr<SpillFile> SpillFile::acquire_ram(std::size_t bytes_hint) {
    ArenaPool& pool = arena_pool();
    std::lock_guard<std::mutex> lock(pool.mu);
    if (pool.arenas.empty()) return std::make_unique<SpillFile>(false);
    // Best fit: the smallest arena already covering the request (no new
    // faults at all); else the largest one (fewest fresh pages to fault
    // when it grows).
    auto best = pool.arenas.end();
    for (auto it = pool.arenas.begin(); it != pool.arenas.end(); ++it) {
        const std::size_t cap = (*it)->capacity();
        if (best == pool.arenas.end()) {
            best = it;
            continue;
        }
        const std::size_t bcap = (*best)->capacity();
        const bool fits = cap >= bytes_hint, bfits = bcap >= bytes_hint;
        if (fits != bfits ? fits : (fits ? cap < bcap : cap > bcap))
            best = it;
    }
    std::unique_ptr<SpillFile> f = std::move(*best);
    pool.arenas.erase(best);
    pool.total_bytes -= f->capacity();
    return f;
}

std::unique_ptr<SpillFile> SpillFile::create_named(const std::string& path) {
    auto f = std::make_unique<SpillFile>(true);
    f->fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
    if (f->fd_ < 0)
        throw std::runtime_error("SpillFile: cannot create " + path + ": " +
                                 std::strerror(errno));
    return f;
}

std::unique_ptr<SpillFile> SpillFile::adopt_region(int fd, std::size_t offset,
                                                   std::size_t bytes) {
    if ((offset & (kPage - 1)) != 0)
        throw std::runtime_error("SpillFile: adopt_region offset unaligned");
    auto f = std::make_unique<SpillFile>(false);
    f->adopted_ = true;
    if (bytes == 0) return f;  // empty section: no mapping at all
    const std::size_t cap = round_up_page(bytes);
    void* p = ::mmap(nullptr, cap, PROT_READ | PROT_WRITE, MAP_PRIVATE, fd,
                     static_cast<off_t>(offset));
    if (p == MAP_FAILED)
        throw std::runtime_error(std::string("SpillFile: adopt mmap: ") +
                                 std::strerror(errno));
    f->base_ = p;
    f->cap_ = cap;
    return f;
}

void SpillFile::recycle(std::unique_ptr<SpillFile> f) {
    if (f == nullptr || f->file_backed_ || f->adopted_ ||
        f->base_ == nullptr)
        return;
    ArenaPool& pool = arena_pool();
    std::lock_guard<std::mutex> lock(pool.mu);
    if (pool.arenas.size() >= kPoolMaxArenas ||
        pool.total_bytes + f->capacity() > kPoolMaxBytes)
        return;  // pool full: let the mapping go
    pool.total_bytes += f->capacity();
    pool.arenas.push_back(std::move(f));
}

SpillFile::~SpillFile() {
    if (base_ != nullptr) ::munmap(base_, cap_);
    if (fd_ >= 0) ::close(fd_);
}

void* SpillFile::grow(std::size_t bytes) {
    const std::size_t new_cap = round_up_page(bytes);
    if (new_cap <= cap_) return base_;
    if (adopted_)
        throw std::runtime_error(
            "SpillFile: adopted store mappings are fixed-capacity");
    if (!file_backed_) {
        // RAM mode: private anonymous arena. Fresh pages are kernel-zeroed
        // on first touch, which is what lets SpillVector::resize skip
        // explicit zero-fill; MADV_HUGEPAGE collapses the multi-MB CSR
        // arrays to a handful of faults.
        void* p = base_ == nullptr
                      ? ::mmap(nullptr, new_cap, PROT_READ | PROT_WRITE,
                               MAP_PRIVATE | MAP_ANONYMOUS, -1, 0)
                      : ::mremap(base_, cap_, new_cap, MREMAP_MAYMOVE);
        if (p == MAP_FAILED)
            throw std::runtime_error(std::string("SpillFile: anon mmap: ") +
                                     std::strerror(errno));
        base_ = p;
        cap_ = new_cap;
#ifdef MADV_HUGEPAGE
        (void)::madvise(base_, cap_, MADV_HUGEPAGE);
#endif
        return base_;
    }
    if (fd_ < 0) {
        // Unlinked temp file: vanishes with the last descriptor/mapping,
        // so crashed runs leave nothing behind. O_TMPFILE where available,
        // mkstemp+unlink as the portable fallback.
        const std::string dir = spill_directory();
#ifdef O_TMPFILE
        fd_ = ::open(dir.c_str(), O_TMPFILE | O_RDWR | O_EXCL, 0600);
#endif
        if (fd_ < 0) {
            std::string tmpl = dir + "/dcft-spill-XXXXXX";
            fd_ = ::mkstemp(tmpl.data());
            if (fd_ >= 0) ::unlink(tmpl.c_str());
        }
        if (fd_ < 0)
            throw std::runtime_error("SpillFile: cannot create spill file in " +
                                     dir + ": " + std::strerror(errno));
    }
    if (::ftruncate(fd_, static_cast<off_t>(new_cap)) != 0)
        throw std::runtime_error(std::string("SpillFile: ftruncate: ") +
                                 std::strerror(errno));
    void* p = base_ == nullptr
                  ? ::mmap(nullptr, new_cap, PROT_READ | PROT_WRITE,
                           MAP_SHARED, fd_, 0)
                  : ::mremap(base_, cap_, new_cap, MREMAP_MAYMOVE);
    if (p == MAP_FAILED)
        throw std::runtime_error(std::string("SpillFile: mmap/mremap: ") +
                                 std::strerror(errno));
    base_ = p;
    cap_ = new_cap;
    return base_;
}

std::size_t SpillFile::release_prefix(std::size_t bytes) {
    // Anonymous pages would be *discarded* by MADV_DONTNEED — releasing is
    // a spill-mode-only operation.
    if (base_ == nullptr || !file_backed_) return 0;
    std::size_t upto = bytes & ~(kPage - 1);
    if (upto > cap_) upto = cap_;
    if (upto < released_mark_ + kReleaseChunk) return 0;
    const std::size_t begin = released_mark_;
    // Seal: this prefix is now immutable and about to leave the resident
    // set. Both instants are functions of the byte layout only, so their
    // counts stay identical across thread counts (pinned by trace_test).
    if (obs::trace_enabled()) {
        static const std::uint32_t id = obs::trace_name("verify/spill/seal");
        obs::trace_instant(id, upto);
    }
    // MAP_SHARED file pages: DONTNEED only unmaps them from this process —
    // dirty contents move to the page cache, nothing is discarded.
    if (::madvise(static_cast<char*>(base_) + begin, upto - begin,
                  MADV_DONTNEED) != 0)
        return 0;
    released_mark_ = upto;
    released_total_ += upto - begin;
    if (obs::trace_enabled()) {
        static const std::uint32_t id =
            obs::trace_name("verify/spill/release");
        obs::trace_instant(id, upto - begin);
    }
    return upto - begin;
}

void SpillFile::prefetch(std::size_t begin, std::size_t end) const {
    if (base_ == nullptr || !file_backed_ || end <= begin) return;
    const std::size_t b = begin & ~(kPage - 1);
    std::size_t e = round_up_page(end);
    if (e > cap_) e = cap_;
    if (e > b)
        (void)::madvise(static_cast<char*>(base_) + b, e - b, MADV_WILLNEED);
}

}  // namespace dcft
