// Dense sets of states, used for reachable sets, fault spans, and computed
// predicates (e.g. weakest detection predicates).
//
// A StateSet is a BitVec over the packed state indices plus a cached
// cardinality. Besides the point operations (insert / contains), it exposes
// the word-level set algebra the bulk-evaluation paths of the verifier
// compose with: once predicates are materialized, intersection, union,
// complement and difference are O(|space|/64) word operations.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/bitvec.hpp"
#include "common/check.hpp"
#include "gc/predicate.hpp"
#include "gc/state_space.hpp"

namespace dcft {

/// A subset of the states of a StateSpace, stored as a bitset over the
/// packed state indices. Suitable for the explicit-state spaces dcft
/// targets (up to ~10^8 states).
class StateSet {
public:
    explicit StateSet(StateIndex num_states) : bits_(num_states) {}

    /// Adopts an already-computed bit vector (count via popcount).
    explicit StateSet(BitVec bits)
        : bits_(std::move(bits)),
          count_(static_cast<StateIndex>(bits_.popcount())) {}

    StateIndex universe_size() const {
        return static_cast<StateIndex>(bits_.size_bits());
    }

    bool contains(StateIndex s) const {
        DCFT_EXPECTS(s < bits_.size_bits(), "StateSet: state out of range");
        return bits_.test(s);
    }

    /// Inserts s; returns true if it was newly inserted.
    bool insert(StateIndex s) {
        DCFT_EXPECTS(s < bits_.size_bits(), "StateSet: state out of range");
        if (!bits_.test_and_set(s)) return false;
        ++count_;
        return true;
    }

    StateIndex count() const { return count_; }
    bool empty() const { return count_ == 0; }

    template <typename Fn>
    void for_each(Fn&& fn) const {
        bits_.for_each_set([&fn](std::uint64_t s) {
            fn(static_cast<StateIndex>(s));
        });
    }

    /// The raw word-packed representation (padding bits are zero).
    const BitVec& bits() const { return bits_; }

    // -- word-level set algebra (all operands must share a universe) --

    StateSet& operator&=(const StateSet& o) {
        bits_ &= o.bits_;
        recount();
        return *this;
    }

    StateSet& operator|=(const StateSet& o) {
        bits_ |= o.bits_;
        recount();
        return *this;
    }

    /// Removes every member of o (set difference).
    StateSet& subtract(const StateSet& o) {
        bits_.subtract(o.bits_);
        recount();
        return *this;
    }

    /// Complements in place within the universe.
    StateSet& complement() {
        bits_.complement();
        count_ = static_cast<StateIndex>(bits_.size_bits()) - count_;
        return *this;
    }

    bool intersects(const StateSet& o) const {
        return bits_.intersects(o.bits_);
    }

    bool is_subset_of(const StateSet& o) const {
        return bits_.is_subset_of(o.bits_);
    }

    friend bool operator==(const StateSet& a, const StateSet& b) {
        return a.bits_ == b.bits_;
    }

private:
    void recount() { count_ = static_cast<StateIndex>(bits_.popcount()); }

    BitVec bits_;
    StateIndex count_ = 0;
};

/// A Predicate backed by an explicit StateSet (shared, immutable). The
/// result is set-backed (Predicate::backing_bits()), so the verifier's bulk
/// paths evaluate it with word operations.
Predicate predicate_of(std::shared_ptr<const StateSet> set, std::string name);

/// All states of `space` satisfying p, as an explicit set. Each state is
/// evaluated exactly once; set-backed predicates are copied word-wise.
StateSet materialize(const StateSpace& space, const Predicate& p);

/// materialize() with the evaluation scan chunked across up to n_threads
/// workers (0 = default_verifier_threads()). The result is identical for
/// every thread count.
StateSet materialize_parallel(const StateSpace& space, const Predicate& p,
                              unsigned n_threads = 0);

}  // namespace dcft
