// Dense sets of states, used for reachable sets, fault spans, and computed
// predicates (e.g. weakest detection predicates).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "gc/predicate.hpp"
#include "gc/state_space.hpp"

namespace dcft {

/// A subset of the states of a StateSpace, stored as a bitset over the
/// packed state indices. Suitable for the explicit-state spaces dcft
/// targets (up to ~10^8 states).
class StateSet {
public:
    explicit StateSet(StateIndex num_states)
        : num_states_(num_states),
          bits_((static_cast<std::size_t>(num_states) + 63) / 64, 0) {}

    StateIndex universe_size() const { return num_states_; }

    bool contains(StateIndex s) const {
        DCFT_EXPECTS(s < num_states_, "StateSet: state out of range");
        return (bits_[s >> 6] >> (s & 63)) & 1;
    }

    /// Inserts s; returns true if it was newly inserted.
    bool insert(StateIndex s) {
        DCFT_EXPECTS(s < num_states_, "StateSet: state out of range");
        const std::uint64_t mask = std::uint64_t{1} << (s & 63);
        if (bits_[s >> 6] & mask) return false;
        bits_[s >> 6] |= mask;
        ++count_;
        return true;
    }

    StateIndex count() const { return count_; }
    bool empty() const { return count_ == 0; }

    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (std::size_t w = 0; w < bits_.size(); ++w) {
            std::uint64_t word = bits_[w];
            while (word != 0) {
                const int bit = __builtin_ctzll(word);
                fn(static_cast<StateIndex>(w * 64 + bit));
                word &= word - 1;
            }
        }
    }

private:
    StateIndex num_states_;
    std::vector<std::uint64_t> bits_;
    StateIndex count_ = 0;
};

/// A Predicate backed by an explicit StateSet (shared, immutable).
inline Predicate predicate_of(std::shared_ptr<const StateSet> set,
                              std::string name) {
    DCFT_EXPECTS(set != nullptr, "predicate_of requires a set");
    return Predicate(std::move(name),
                     [set = std::move(set)](const StateSpace&, StateIndex s) {
                         return set->contains(s);
                     });
}

/// All states of `space` satisfying p, as an explicit set.
inline StateSet materialize(const StateSpace& space, const Predicate& p) {
    StateSet out(space.num_states());
    for (StateIndex s = 0; s < space.num_states(); ++s)
        if (p.eval(space, s)) out.insert(s);
    return out;
}

}  // namespace dcft
