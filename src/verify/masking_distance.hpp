// Graded tolerance: the masking distance of p under F (Castro, D'Argenio,
// Demasi, Putruele — "Measuring Masking Fault-Tolerance").
//
// The boolean verdicts of check_tolerance say *whether* p masks F; the
// masking distance says *how many* fault occurrences p absorbs before the
// safety part of SPEC breaks. It is defined by a turn-based game between
// the nominal (fault-free) system and the system under faults: the
// verifier moves on program transitions, trying to keep every computation
// inside SPEC's safety part; the refuter moves on fault transitions,
// trying to drive some computation out of it. The value of the game is
//
//   d  =  min over all safety-violating computation prefixes of p [] F
//         (from the invariant) of the number of fault steps they contain,
//
// with d = infinity ("masking") when no prefix violates safety at all. A
// fault step that is itself the violating transition counts: a system that
// breaks on its very first fault has d = 1; d = 0 means the program
// violates safety with no fault at all (an immediate violation, already
// visible in the fault-free system).
//
// Product-game construction over the CSR graph: the game positions are
// pairs (v, k) — v a node of the p [] F system explored from the
// invariant, k the number of refuter (fault) moves played so far. Because
// the nominal system is exactly the program-only subgraph, the product
// collapses into *layers*: verifier moves stay inside layer k, refuter
// moves step from layer k to layer k+1, and layer 0 is the fault-free
// system itself. The solver is the level-synchronous fixpoint the
// verifier already uses everywhere, specialized to this 0/1 edge
// weighting: close layer k under program edges (weight 0), then expand
// the fault edges (weight 1) to seed layer k+1. Each node is visited once,
// at its minimal fault distance, so the sweep is O(nodes + edges) no
// matter how large d is.
//
// Determinism contract: the solver runs on the recorded CSR edges of a
// TransitionSystem, which are bit-identical for every exploration thread
// count; layers are closed in canonical node-id order. The distance, the
// game-size counters, and the min-fault witness are therefore identical
// for every thread count (pinned by the masking-distance test and the
// graded/game-vs-explicit fuzz oracle).
//
// Relation to the boolean pipeline (checked as a theorem by the tests):
// d = infinity  iff  the fail-safe in-presence obligation of
// check_tolerance holds — safety of SPEC over the whole fault span. The
// masking *grade* additionally demands liveness, so check_masking ok
// implies d = infinity but not conversely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spec/problem_spec.hpp"
#include "verify/check_result.hpp"
#include "verify/transition_system.hpp"

namespace dcft {

/// Outcome of one masking-distance game.
struct MaskingDistanceResult {
    /// d = infinity: no computation of p [] F from the invariant violates
    /// the safety part of SPEC, however many faults occur.
    bool masking = false;
    /// The distance (min fault steps to a safety violation). Only
    /// meaningful when !masking.
    std::uint64_t distance = 0;
    /// Game positions visited (each graph node enters the game exactly
    /// once, at its minimal fault layer).
    std::uint64_t game_nodes = 0;
    /// Layers materialized = max fault distance reached + 1; layer 0 is
    /// the fault-free subgame.
    std::uint64_t game_layers = 0;
    /// Min-fault violating prefix (replayable, with action provenance);
    /// empty when masking. Contains exactly `distance` fault steps.
    std::vector<WitnessStep> witness;
    /// Human-readable summary: the violation and its witness, or the
    /// masking statement.
    std::string reason;

    /// Number of fault steps on the witness (== distance when !masking).
    std::uint64_t witness_faults() const;
};

/// Solves the masking-distance game on a pre-built, complete p [] F
/// system (its initial nodes are the invariant states). `safety` is the
/// safety part of the problem specification.
MaskingDistanceResult masking_distance_on(const TransitionSystem& ts_pf,
                                          const SafetySpec& safety);

/// Masking distance of p under f, for SPEC's safety part, from the
/// invariant. Shares the p [] F exploration with check_tolerance through
/// the process-wide ExplorationCache (the invariant is materialized the
/// same way, so the graph key is identical): after a verify grid this is
/// a pure graph replay.
MaskingDistanceResult masking_distance(const Program& p, const FaultClass& f,
                                       const ProblemSpec& spec,
                                       const Predicate& invariant);

}  // namespace dcft
