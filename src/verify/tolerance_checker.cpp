#include "verify/tolerance_checker.hpp"

#include "verify/refinement.hpp"

namespace dcft {

ToleranceReport check_tolerance(const Program& p, const FaultClass& f,
                                const ProblemSpec& spec,
                                const Predicate& invariant, Tolerance grade) {
    ToleranceReport report;
    report.invariant_size = count_satisfying(p.space(), invariant);
    report.in_absence = refines_spec(p, spec, invariant);

    const FaultSpan span = compute_fault_span(p, f, invariant);
    report.fault_span = span.predicate;
    report.span_size = span.states->count();

    report.in_presence = refines_weakened(p, &f, spec, grade, span.predicate,
                                          invariant);
    return report;
}

ToleranceReport check_failsafe(const Program& p, const FaultClass& f,
                               const ProblemSpec& spec,
                               const Predicate& invariant) {
    return check_tolerance(p, f, spec, invariant, Tolerance::FailSafe);
}

ToleranceReport check_nonmasking(const Program& p, const FaultClass& f,
                                 const ProblemSpec& spec,
                                 const Predicate& invariant) {
    return check_tolerance(p, f, spec, invariant, Tolerance::Nonmasking);
}

ToleranceReport check_masking(const Program& p, const FaultClass& f,
                              const ProblemSpec& spec,
                              const Predicate& invariant) {
    return check_tolerance(p, f, spec, invariant, Tolerance::Masking);
}

}  // namespace dcft
