#include "verify/tolerance_checker.hpp"

#include <memory>
#include <utility>

#include "obs/telemetry.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/fairness.hpp"
#include "verify/refinement.hpp"
#include "verify/state_set.hpp"

namespace dcft {

// One tolerance verdict needs the same two graphs over and over: the
// program-only system from the invariant (absence of faults) and the
// p [] F system from the invariant (presence of faults). The seed pipeline
// re-enumerated successors for each obligation — closure sweep, fault-span
// reachability, and a fresh exploration per refines_spec call. Here each
// graph is explored exactly once and every obligation is evaluated on the
// recorded CSR edges:
//
//   * the invariant is materialized into a bitset once, so every later
//     membership question is a word probe instead of a std::function call
//     (the name is preserved, so diagnostics are unchanged);
//   * the node set of the p [] F system *is* the canonical fault span (the
//     reachable closure of the invariant under program and fault steps),
//     so the span predicate falls out of the exploration for free;
//   * refines_spec_on replays closure/safety/liveness on the recorded
//     edges — the successor sets are identical to what fresh enumerations
//     would produce, so all verdicts match the definitional pipeline
//     (cross-checked by the tolerance and app test suites).
ToleranceReport check_tolerance(const Program& p, const FaultClass& f,
                                const ProblemSpec& spec,
                                const Predicate& invariant, Tolerance grade) {
    return check_tolerance(p, f, spec, invariant, grade, ToleranceOptions{});
}

ToleranceReport check_tolerance(const Program& p, const FaultClass& f,
                                const ProblemSpec& spec,
                                const Predicate& invariant, Tolerance grade,
                                const ToleranceOptions& options) {
    const obs::ScopedSpan span("verify/check_tolerance");
    obs::count("verify/tolerance_queries");
    const StateSpace& space = p.space();
    ToleranceReport report;

    // Materialize the invariant once; downstream checks probe bits.
    auto inv_states = [&] {
        const obs::ScopedSpan mspan("verify/check_tolerance/materialize");
        return std::make_shared<StateSet>(
            materialize_parallel(space, invariant));
    }();
    const Predicate inv = predicate_of(inv_states, invariant.name());
    report.invariant_size = inv_states->count();

    // In the absence of faults: p refines SPEC from S. Both explorations
    // go through the process-wide cache, so the three grade queries of
    // `dcft verify` (and synthesis re-checks over unchanged programs)
    // build each distinct graph exactly once.
    ExplorationCache& cache = ExplorationCache::global();
    {
        const auto ts_p = cache.get_or_build(p, nullptr, inv);
        report.in_absence = refines_spec_on(*ts_p, nullptr, spec, inv);
    }

    // Early-exit applicability (ToleranceOptions): safety-style grades
    // with a transition-free safety part. FailSafe drops liveness by
    // definition; Masking qualifies only when the spec has none.
    const bool early_applicable =
        options.early_exit && spec.safety().state_only() &&
        (grade == Tolerance::FailSafe ||
         (grade == Tolerance::Masking &&
          spec.liveness().obligations().empty()));

    // One exploration of p [] F from the invariant; its node set is the
    // canonical fault span T. On the early-exit path the spec's bad-state
    // predicate rides along as a stop condition: closure of T on its own
    // graph is trivially true (T *is* the node set), so the first failure
    // of the default in-presence pipeline is exactly the least bad node —
    // the node the stop predicate fires on.
    std::shared_ptr<const TransitionSystem> ts_pf_ptr;
    if (early_applicable) {
        const ProblemSpec eff =
            grade == Tolerance::FailSafe ? spec.failsafe_weakening() : spec;
        const Predicate bad = eff.safety().bad_states();
        ts_pf_ptr = cache.get_or_build_early_exit(p, &f, inv, bad);
        if (!ts_pf_ptr->complete()) {
            // Fired: report the exact failure the full safety scan would
            // have produced, over the explored prefix of the span.
            const TransitionSystem& frag = *ts_pf_ptr;
            const NodeId b = frag.bad_node();
            obs::count("verify/check_tolerance/early_exit");
            obs::count("verify/obligations/safety");
            obs::count("verify/obligations/failed");
            report.in_presence = CheckResult::failure(
                "safety violated: state " + space.format(frag.state_of(b)) +
                    " is excluded by " + eff.safety().name() +
                    "; witness: " + frag.format_witness(b),
                frag.witness_trace(b));
            auto span_states =
                std::make_shared<StateSet>(frag.state_bits());
            report.fault_span = predicate_of(
                span_states, "span(" + p.name() + "," + f.name() + "," +
                                 invariant.name() + ")");
            report.span_size = span_states->count();
            report.span_complete = false;
            report.deepest_trace = frag.witness_trace(b);
            return report;
        }
        // The stop predicate never fired (or the cache already held the
        // complete graph): fall through to the default evaluation — same
        // graph, byte-identical results.
    } else {
        ts_pf_ptr = cache.get_or_build(p, &f, inv);
    }
    const TransitionSystem& ts_pf = *ts_pf_ptr;
    auto span_states = std::make_shared<StateSet>(ts_pf.state_bits());
    Predicate span_pred = predicate_of(
        span_states, "span(" + p.name() + "," + f.name() + "," +
                         invariant.name() + ")");
    report.fault_span = span_pred;
    report.span_size = span_states->count();
    // Exploration witness: the BFS path to the deepest (last-discovered)
    // node of the p [] F system. Cheap (one parent-chain walk) and always
    // replayable — run reports use it for passing queries.
    if (ts_pf.num_nodes() > 0) {
        report.deepest_trace = ts_pf.witness_trace(
            static_cast<NodeId>(ts_pf.num_nodes() - 1));
    }

    // In the presence of faults, from T, on the same graph.
    switch (grade) {
        case Tolerance::Masking:
            report.in_presence = refines_spec_on(ts_pf, &f, spec, span_pred);
            break;
        case Tolerance::FailSafe:
            report.in_presence =
                refines_spec_on(ts_pf, &f, spec.failsafe_weakening(),
                                span_pred);
            break;
        case Tolerance::Nonmasking: {
            // Convergence T ~~> S on the recorded graph; the program-only
            // tail obligation 'p refines SPEC from S' is exactly the
            // absence-of-faults check already computed above.
            if (CheckResult r = check_reaches(ts_pf, inv, true); !r) {
                report.in_presence = CheckResult::failure(
                    "nonmasking: computations do not converge to " +
                        inv.name() + ": " + r.reason,
                    std::move(r.witness));
            } else {
                report.in_presence = report.in_absence;
            }
            break;
        }
    }
    return report;
}

ToleranceReport check_failsafe(const Program& p, const FaultClass& f,
                               const ProblemSpec& spec,
                               const Predicate& invariant) {
    return check_tolerance(p, f, spec, invariant, Tolerance::FailSafe);
}

ToleranceReport check_nonmasking(const Program& p, const FaultClass& f,
                                 const ProblemSpec& spec,
                                 const Predicate& invariant) {
    return check_tolerance(p, f, spec, invariant, Tolerance::Nonmasking);
}

ToleranceReport check_masking(const Program& p, const FaultClass& f,
                              const ProblemSpec& spec,
                              const Predicate& invariant) {
    return check_tolerance(p, f, spec, invariant, Tolerance::Masking);
}

}  // namespace dcft
