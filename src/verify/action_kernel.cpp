#include "verify/action_kernel.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "common/check.hpp"
#include "common/env.hpp"
#include "obs/telemetry.hpp"

namespace dcft {

bool compile_disabled() {
    return env_flag_enabled("DCFT_NO_COMPILE");
}

// ---------------------------------------------------------------------------
// GuardCode: compile + eval
// ---------------------------------------------------------------------------

namespace {

using NK = Predicate::NodeKind;

}  // namespace

GuardCode::GuardCode(const CompiledSpace& cs, const Predicate& p) {
    (void)cs;
    int depth = 0;
    int max_depth = 0;
    auto push_op = [&](Op op, int pops) {
        depth -= pops;
        ++depth;
        max_depth = std::max(max_depth, depth);
        ops_.push_back(op);
    };
    // Recursive lambda over predicate structure.
    auto emit = [&](auto&& self, const Predicate& q) -> void {
        Op op{};
        switch (q.node_kind()) {
            case NK::kTrue:
                op.k = Op::K::kTrue;
                push_op(op, 0);
                return;
            case NK::kFalse:
                op.k = Op::K::kFalse;
                push_op(op, 0);
                return;
            case NK::kVarEqConst:
            case NK::kVarNeConst:
                op.k = q.node_kind() == NK::kVarEqConst ? Op::K::kVarEqConst
                                                        : Op::K::kVarNeConst;
                op.var = q.node_var();
                op.value = q.node_value();
                push_op(op, 0);
                return;
            case NK::kVarEqVar:
            case NK::kVarNeVar:
                op.k = q.node_kind() == NK::kVarEqVar ? Op::K::kVarEqVar
                                                      : Op::K::kVarNeVar;
                op.var = q.node_var();
                op.var2 = q.node_var2();
                push_op(op, 0);
                return;
            case NK::kBacked:
                op.k = Op::K::kTestBits;
                op.idx = static_cast<std::uint32_t>(bits_.size());
                bits_.push_back(q.backing_bits());
                push_op(op, 0);
                return;
            case NK::kAnd:
            case NK::kOr: {
                const auto kids = q.node_operands();
                DCFT_ASSERT(kids.size() >= 2, "GuardCode: malformed node");
                self(self, kids[0]);
                for (std::size_t i = 1; i < kids.size(); ++i) {
                    self(self, kids[i]);
                    Op conn{};
                    conn.k = q.node_kind() == NK::kAnd ? Op::K::kAnd
                                                       : Op::K::kOr;
                    push_op(conn, 2);
                }
                return;
            }
            case NK::kNot: {
                const auto kids = q.node_operands();
                DCFT_ASSERT(kids.size() == 1, "GuardCode: malformed not");
                self(self, kids[0]);
                Op n{};
                n.k = Op::K::kNot;
                push_op(n, 1);
                return;
            }
            case NK::kOpaque:
            default:
                op.k = Op::K::kCall;
                op.idx = static_cast<std::uint32_t>(opaque_.size());
                opaque_.push_back(q);
                push_op(op, 0);
                return;
        }
    };
    emit(emit, p);
    if (max_depth > kMaxStack) {
        // Pathological nesting: fall back to one opaque call on the root.
        ops_.clear();
        bits_.clear();
        opaque_.clear();
        opaque_.push_back(p);
        Op op{};
        op.k = Op::K::kCall;
        op.idx = 0;
        ops_.push_back(op);
    }
    DCFT_ASSERT(!ops_.empty(), "GuardCode: empty program");
}

bool GuardCode::eval(const CompiledSpace& cs, StateIndex s) const {
    // Single-op guards (the common case: one comparison, one bitset test)
    // skip the stack machine entirely.
    if (ops_.size() == 1) {
        const Op& op = ops_[0];
        switch (op.k) {
            case Op::K::kTrue:
                return true;
            case Op::K::kFalse:
                return false;
            case Op::K::kVarEqConst:
                return cs.get(s, op.var) == op.value;
            case Op::K::kVarNeConst:
                return cs.get(s, op.var) != op.value;
            case Op::K::kVarEqVar:
                return cs.get(s, op.var) == cs.get(s, op.var2);
            case Op::K::kVarNeVar:
                return cs.get(s, op.var) != cs.get(s, op.var2);
            case Op::K::kTestBits:
                return bits_[op.idx]->test(s);
            case Op::K::kCall:
                return opaque_[op.idx].eval(cs.space(), s);
            default:
                break;
        }
    }
    bool stack[kMaxStack];
    int top = -1;
    for (const Op& op : ops_) {
        switch (op.k) {
            case Op::K::kTrue:
                stack[++top] = true;
                break;
            case Op::K::kFalse:
                stack[++top] = false;
                break;
            case Op::K::kVarEqConst:
                stack[++top] = cs.get(s, op.var) == op.value;
                break;
            case Op::K::kVarNeConst:
                stack[++top] = cs.get(s, op.var) != op.value;
                break;
            case Op::K::kVarEqVar:
                stack[++top] = cs.get(s, op.var) == cs.get(s, op.var2);
                break;
            case Op::K::kVarNeVar:
                stack[++top] = cs.get(s, op.var) != cs.get(s, op.var2);
                break;
            case Op::K::kTestBits:
                stack[++top] = bits_[op.idx]->test(s);
                break;
            case Op::K::kCall:
                stack[++top] = opaque_[op.idx].eval(cs.space(), s);
                break;
            case Op::K::kAnd:
                stack[top - 1] = stack[top - 1] && stack[top];
                --top;
                break;
            case Op::K::kOr:
                stack[top - 1] = stack[top - 1] || stack[top];
                --top;
                break;
            case Op::K::kNot:
                stack[top] = !stack[top];
                break;
        }
    }
    DCFT_ASSERT(top == 0, "GuardCode: unbalanced program");
    return stack[0];
}

// ---------------------------------------------------------------------------
// fill_guard_bits: word-level materialization from predicate structure
// ---------------------------------------------------------------------------

namespace {

/// Sets bits [begin, end) of bv (word-level).
void set_range(BitVec& bv, std::uint64_t begin, std::uint64_t end) {
    if (begin >= end) return;
    BitVec::Word* words = bv.data();
    const std::uint64_t wb = begin >> 6;
    const std::uint64_t we = (end - 1) >> 6;
    const BitVec::Word mb = ~BitVec::Word{0} << (begin & 63);
    const BitVec::Word me =
        ~BitVec::Word{0} >> (63 - ((end - 1) & 63));
    if (wb == we) {
        words[wb] |= mb & me;
        return;
    }
    words[wb] |= mb;
    for (std::uint64_t w = wb + 1; w < we; ++w) words[w] = ~BitVec::Word{0};
    words[we] |= me;
}

/// ORs the periodic pattern var==c into `out` (out not cleared here).
///
/// The pattern repeats with period stride*domain bits. For long periods a
/// handful of word-level range fills suffice; for short periods (small
/// strides — the common low-order variables) that would degenerate into
/// millions of sub-word fills, so instead one word-aligned tile of
/// lcm(period, 64) bits is materialized once and OR-replicated across the
/// output, one word copy per output word.
void or_var_eq(const CompiledSpace& cs, VarId v, Value c, BitVec& out) {
    const std::uint64_t t = static_cast<std::uint64_t>(cs.stride(v));
    const std::uint64_t d = static_cast<std::uint64_t>(cs.domain(v));
    const std::uint64_t n = cs.num_states();
    const std::uint64_t period = t * d;
    const std::uint64_t begin = static_cast<std::uint64_t>(c) * t;
    if (begin >= n) return;
    if (n / period <= 64) {
        for (std::uint64_t base = begin; base < n; base += period)
            set_range(out, base, std::min(base + t, n));
        return;
    }
    // Many short periods. lcm(period, 64) bits is a whole number of
    // periods *and* of words, so the word sequence of the pattern repeats
    // with that tile; n / period > 64 implies the tile fits inside n.
    const std::uint64_t tile_words = period / std::gcd<std::uint64_t>(period, 64);
    const std::uint64_t tile_bits = tile_words * 64;
    BitVec tile(tile_bits);
    for (std::uint64_t base = begin; base < tile_bits; base += period)
        set_range(tile, base, std::min(base + t, tile_bits));
    BitVec::Word* wout = out.data();
    const BitVec::Word* wt = tile.data();
    const std::uint64_t full_words = n >> 6;
    std::uint64_t k = 0;
    for (std::uint64_t w = 0; w < full_words; ++w) {
        wout[w] |= wt[k];
        if (++k == tile_words) k = 0;
    }
    // Final partial word: keep the padding bits above n clear.
    if ((n & 63) != 0)
        wout[full_words] |=
            wt[k] & (~BitVec::Word{0} >> (64 - (n & 63)));
}

/// Per-state fallback scan of an unstructured subtree (out not cleared).
void or_scan(const CompiledSpace& cs, const Predicate& p, BitVec& out) {
    obs::count("verify/compile/guard_bits_scans");
    const StateSpace& sp = cs.space();
    const std::uint64_t n = cs.num_states();
    for (StateIndex s = 0; s < n; ++s)
        if (p.eval(sp, s)) out.set(s);
}

void fill_rec(const CompiledSpace& cs, const Predicate& p, BitVec& out) {
    const std::uint64_t n = cs.num_states();
    switch (p.node_kind()) {
        case NK::kTrue:
            out.set_all();
            return;
        case NK::kFalse:
            out.clear_all();
            return;
        case NK::kBacked: {
            const auto& b = p.backing_bits();
            if (b != nullptr && b->size_bits() == n) {
                out = *b;
                return;
            }
            out.clear_all();
            or_scan(cs, p, out);
            return;
        }
        case NK::kVarEqConst:
            out.clear_all();
            or_var_eq(cs, p.node_var(), p.node_value(), out);
            return;
        case NK::kVarNeConst:
            out.clear_all();
            or_var_eq(cs, p.node_var(), p.node_value(), out);
            out.complement();
            return;
        case NK::kVarEqVar:
        case NK::kVarNeVar: {
            out.clear_all();
            BitVec ta(n), tb(n);
            const Value da = cs.domain(p.node_var());
            const Value db = cs.domain(p.node_var2());
            const Value dmin = std::min(da, db);
            for (Value c = 0; c < dmin; ++c) {
                ta.clear_all();
                or_var_eq(cs, p.node_var(), c, ta);
                tb.clear_all();
                or_var_eq(cs, p.node_var2(), c, tb);
                ta &= tb;
                out |= ta;
            }
            if (p.node_kind() == NK::kVarNeVar) out.complement();
            return;
        }
        case NK::kAnd:
        case NK::kOr: {
            const auto kids = p.node_operands();
            DCFT_ASSERT(kids.size() >= 2, "fill_guard_bits: malformed node");
            fill_rec(cs, kids[0], out);
            BitVec tmp(n);
            for (std::size_t i = 1; i < kids.size(); ++i) {
                fill_rec(cs, kids[i], tmp);
                if (p.node_kind() == NK::kAnd)
                    out &= tmp;
                else
                    out |= tmp;
            }
            return;
        }
        case NK::kNot: {
            const auto kids = p.node_operands();
            DCFT_ASSERT(kids.size() == 1, "fill_guard_bits: malformed not");
            fill_rec(cs, kids[0], out);
            out.complement();
            return;
        }
        case NK::kOpaque:
        default:
            out.clear_all();
            or_scan(cs, p, out);
            return;
    }
}

}  // namespace

void fill_guard_bits(const CompiledSpace& cs, const Predicate& p,
                     BitVec& out) {
    DCFT_EXPECTS(out.size_bits() == cs.num_states(),
                 "fill_guard_bits: bitset/universe size mismatch");
    fill_rec(cs, p, out);
}

// ---------------------------------------------------------------------------
// CompiledAction
// ---------------------------------------------------------------------------

CompiledAction::CompiledAction(std::shared_ptr<const CompiledSpace> cs,
                               Action action)
    : cs_(std::move(cs)),
      action_(std::move(action)),
      form_(action_.effect_form()),
      guard_(*cs_, action_.guard()) {
    obs::count("verify/compile/actions");
    if (!guard_fully_compiled())
        obs::count("verify/compile/opaque_guard_fallbacks");
}

const BitVec& CompiledAction::guard_bits() const {
    ensure_guard_bits();
    return *guard_bits_;
}

void CompiledAction::ensure_guard_bits() const {
    if (guard_bits_ != nullptr) return;
    const obs::ScopedSpan span("verify/compile/guard_bits");
    auto bits = std::make_unique<BitVec>(cs_->num_states());
    fill_guard_bits(*cs_, action_.guard(), *bits);
    guard_bits_ = std::move(bits);
    obs::count("verify/compile/guard_bits_built");
}

// ---------------------------------------------------------------------------
// CompiledActionSet / CompiledProgram
// ---------------------------------------------------------------------------

CompiledActionSet::CompiledActionSet(std::shared_ptr<const StateSpace> space,
                                     std::span<const Action> actions)
    : CompiledActionSet(compile_space(std::move(space)), actions) {}

CompiledActionSet::CompiledActionSet(std::shared_ptr<const CompiledSpace> cs,
                                     std::span<const Action> actions)
    : cs_(std::move(cs)) {
    DCFT_EXPECTS(cs_ != nullptr, "CompiledActionSet: null compiled space");
    actions_.reserve(actions.size());
    for (const Action& a : actions) actions_.emplace_back(cs_, a);
}

void CompiledActionSet::successors(StateIndex s,
                                   std::vector<StateIndex>& out) const {
    for (const CompiledAction& a : actions_)
        if (a.enabled(s)) a.successors(s, out);
}

void CompiledActionSet::ensure_guard_bits() const {
    for (const CompiledAction& a : actions_) a.ensure_guard_bits();
}

CompiledProgram::CompiledProgram(const Program& program,
                                 const FaultClass* faults)
    : cs_(compile_space(program.space_ptr())),
      program_(cs_, program.actions()) {
    if (faults != nullptr) {
        DCFT_EXPECTS(&faults->space() == &program.space(),
                     "CompiledProgram: fault class over a different space");
        faults_ = std::make_unique<CompiledActionSet>(cs_, faults->actions());
    }
}

void CompiledProgram::ensure_guard_bits() const {
    program_.ensure_guard_bits();
    if (faults_ != nullptr) faults_->ensure_guard_bits();
}

}  // namespace dcft
