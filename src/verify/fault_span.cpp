#include "verify/fault_span.hpp"

#include "verify/closure.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/reachability.hpp"

namespace dcft {

FaultSpan compute_fault_span(const Program& p, const FaultClass& f,
                             const Predicate& invariant) {
    // The node set of the cached p [] F exploration *is* the canonical
    // fault span; a prior (or later) tolerance query over the same triple
    // shares the graph.
    const auto ts = ExplorationCache::global().get_or_build(p, &f, invariant);
    auto states = std::make_shared<StateSet>(ts->state_bits());
    Predicate pred = predicate_of(
        states, "span(" + p.name() + "," + f.name() + "," + invariant.name() +
                    ")");
    return FaultSpan{std::move(states), std::move(pred)};
}

CheckResult check_is_fault_span(const Program& p, const FaultClass& f,
                                const Predicate& invariant,
                                const Predicate& span) {
    if (!implies_everywhere(p.space(), invariant, span))
        return CheckResult::failure("fault span: " + invariant.name() +
                                    " does not imply " + span.name());
    if (CheckResult r = check_closed(p, span); !r) return r;
    if (CheckResult r = check_preserved(f, span); !r) return r;
    return CheckResult::success();
}

}  // namespace dcft
