#include "verify/closure.hpp"

#include <memory>

#include "common/bitvec.hpp"
#include "common/check.hpp"
#include "obs/telemetry.hpp"
#include "verify/action_kernel.hpp"
#include "verify/exploration_cache.hpp"

namespace dcft {
namespace {

CheckResult check_preserved_by(const StateSpace& space,
                               std::span<const Action> actions,
                               const Predicate& s, const char* what) {
    // Evaluate the predicate exactly once per state, then test membership
    // of every successor with bit probes instead of repeated evaluation.
    // Guards and effects run compiled (bytecode + stride arithmetic)
    // unless DCFT_NO_COMPILE forces the interpreted oracle.
    const BitVec s_bits = eval_bits(space, s);
    std::unique_ptr<CompiledActionSet> compiled;
    if (!compile_disabled()) {
        // Non-owning alias: the set lives only inside this call.
        std::shared_ptr<const StateSpace> sp(std::shared_ptr<void>{}, &space);
        compiled = std::make_unique<CompiledActionSet>(std::move(sp), actions);
    }
    std::vector<StateIndex> succ;
    CheckResult result = CheckResult::success();
    s_bits.for_each_set([&](std::uint64_t st_raw) {
        if (!result.ok) return;
        const StateIndex st = static_cast<StateIndex>(st_raw);
        for (std::size_t ai = 0; ai < actions.size(); ++ai) {
            succ.clear();
            if (compiled != nullptr) {
                const CompiledAction& ka = (*compiled)[ai];
                if (!ka.enabled(st)) continue;
                ka.successors(st, succ);
            } else {
                actions[ai].successors(space, st, succ);
            }
            for (StateIndex t : succ) {
                if (!s_bits.test(t)) {
                    result = CheckResult::failure(
                        std::string(what) + ": predicate " + s.name() +
                        " not preserved by action '" + actions[ai].name() +
                        "' from " + space.format(st) + " to " +
                        space.format(t));
                    return;
                }
            }
        }
    });
    return result;
}

}  // namespace

CheckResult check_closed(const Program& p, const Predicate& s) {
    return check_preserved_by(p.space(), p.actions(), s,
                              ("closed in " + p.name()).c_str());
}

CheckResult check_preserved(const FaultClass& f, const Predicate& s) {
    return check_preserved_by(f.space(), f.actions(), s,
                              ("preserved by " + f.name()).c_str());
}

CheckResult check_closed_reachable(const Program& p, const FaultClass* f,
                                   const Predicate& s, unsigned n_threads) {
    const obs::ScopedSpan span("verify/closure");
    obs::count("verify/obligations/closure");
    const Predicate escape = !s;
    const auto ts = ExplorationCache::global().get_or_build_early_exit(
        p, f, s, escape, n_threads);
    const NodeId b =
        ts->complete() ? ts->first_bad_node(escape) : ts->bad_node();
    if (b == TransitionSystem::kNoNode) return CheckResult::success();

    // Reconstruct the closure-style message from the BFS tree edge that
    // discovered the escaping state. Its parent has a strictly smaller
    // node id (b is the least escaping node, and every root satisfies s),
    // so the parent satisfies s — the reported transition is exactly an
    // s -> !s step.
    std::vector<WitnessStep> trace = ts->witness_trace(b);
    DCFT_EXPECTS(trace.size() >= 2,
                 "escaping state cannot be a root (roots satisfy s)");
    const WitnessStep& last = trace.back();
    const WitnessStep& prev = trace[trace.size() - 2];
    const std::string what =
        last.fault ? ("preserved by " + f->name()) : ("closed in " + p.name());
    std::string reason = what + ": predicate " + s.name() +
                         " not preserved by action '" + last.action +
                         "' from " + prev.state_repr + " to " +
                         last.state_repr;
    return CheckResult::failure(std::move(reason), std::move(trace));
}

}  // namespace dcft
