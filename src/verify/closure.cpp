#include "verify/closure.hpp"

#include <memory>

#include "common/bitvec.hpp"
#include "verify/action_kernel.hpp"

namespace dcft {
namespace {

CheckResult check_preserved_by(const StateSpace& space,
                               std::span<const Action> actions,
                               const Predicate& s, const char* what) {
    // Evaluate the predicate exactly once per state, then test membership
    // of every successor with bit probes instead of repeated evaluation.
    // Guards and effects run compiled (bytecode + stride arithmetic)
    // unless DCFT_NO_COMPILE forces the interpreted oracle.
    const BitVec s_bits = eval_bits(space, s);
    std::unique_ptr<CompiledActionSet> compiled;
    if (!compile_disabled()) {
        // Non-owning alias: the set lives only inside this call.
        std::shared_ptr<const StateSpace> sp(std::shared_ptr<void>{}, &space);
        compiled = std::make_unique<CompiledActionSet>(std::move(sp), actions);
    }
    std::vector<StateIndex> succ;
    CheckResult result = CheckResult::success();
    s_bits.for_each_set([&](std::uint64_t st_raw) {
        if (!result.ok) return;
        const StateIndex st = static_cast<StateIndex>(st_raw);
        for (std::size_t ai = 0; ai < actions.size(); ++ai) {
            succ.clear();
            if (compiled != nullptr) {
                const CompiledAction& ka = (*compiled)[ai];
                if (!ka.enabled(st)) continue;
                ka.successors(st, succ);
            } else {
                actions[ai].successors(space, st, succ);
            }
            for (StateIndex t : succ) {
                if (!s_bits.test(t)) {
                    result = CheckResult::failure(
                        std::string(what) + ": predicate " + s.name() +
                        " not preserved by action '" + actions[ai].name() +
                        "' from " + space.format(st) + " to " +
                        space.format(t));
                    return;
                }
            }
        }
    });
    return result;
}

}  // namespace

CheckResult check_closed(const Program& p, const Predicate& s) {
    return check_preserved_by(p.space(), p.actions(), s,
                              ("closed in " + p.name()).c_str());
}

CheckResult check_preserved(const FaultClass& f, const Predicate& s) {
    return check_preserved_by(f.space(), f.actions(), s,
                              ("preserved by " + f.name()).c_str());
}

}  // namespace dcft
