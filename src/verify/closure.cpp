#include "verify/closure.hpp"

namespace dcft {
namespace {

CheckResult check_preserved_by(const StateSpace& space,
                               std::span<const Action> actions,
                               const Predicate& s, const char* what) {
    std::vector<StateIndex> succ;
    for (StateIndex st = 0; st < space.num_states(); ++st) {
        if (!s.eval(space, st)) continue;
        for (const auto& ac : actions) {
            succ.clear();
            ac.successors(space, st, succ);
            for (StateIndex t : succ) {
                if (!s.eval(space, t)) {
                    return CheckResult::failure(
                        std::string(what) + ": predicate " + s.name() +
                        " not preserved by action '" + ac.name() +
                        "' from " + space.format(st) + " to " +
                        space.format(t));
                }
            }
        }
    }
    return CheckResult::success();
}

}  // namespace

CheckResult check_closed(const Program& p, const Predicate& s) {
    return check_preserved_by(p.space(), p.actions(), s,
                              ("closed in " + p.name()).c_str());
}

CheckResult check_preserved(const FaultClass& f, const Predicate& s) {
    return check_preserved_by(f.space(), f.actions(), s,
                              ("preserved by " + f.name()).c_str());
}

}  // namespace dcft
