// Block-compiled batch exploration kernels.
//
// The per-state interpret loop of PR 3 pays, for every (state, action):
// a guard-bitset probe, a virtual-free but branchy successors() switch, a
// scratch std::vector round-trip, and one magic-multiply decode per digit
// read. BatchKernel specializes a CompiledProgram once per exploration
// into flat per-action records and then amortizes all of that over
// *blocks* of states:
//
//   * guard words are loaded once per 64-state block (one L1 load per
//     action per 64 states instead of one bit probe per state) and folded
//     into a per-state action mask walked with ctz — emission order stays
//     actions-in-declaration-order per state, the CSR contract;
//   * over contiguous ascending state runs (the identity-interner tier:
//     init covers the space, node id == state index) an *odometer* keeps
//     every variable digit incrementally — amortized O(1) per state, no
//     divides, no magic multiplies — and successors become pure
//     stride-delta adds (sweep());
//   * successor records are written straight into the caller's buffers —
//     the parallel merge's ChunkBuf records or the pre-sized CSR slices —
//     never through a per-state std::vector<StateIndex>;
//   * per-action successor counts are exact for every structured effect
//     kind, so count_edges() sizes CSR slices precisely from guard-bitset
//     popcounts and the sweep writes with bump pointers, no reallocation.
//
// A program is batchable when every action (program and fault) has a
// fully compiled guard (whole-space bitset available), a structured
// effect form (anything but kGeneric), the space is on the CompiledSpace
// fast path, and each action set fits a 64-bit mask. Everything else
// falls back to the scalar per-state path, which remains bit-for-bit
// identical. DCFT_NO_BATCH=1 forces the scalar path — the differential
// oracle for this layer (DCFT_NO_COMPILE remains the ground truth below
// both).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/bitvec.hpp"
#include "verify/action_kernel.hpp"
#include "verify/transition_system.hpp"

namespace dcft {

/// True iff DCFT_NO_BATCH is set truthy: explorations must stay on the
/// scalar per-state path. Re-read per call so tests can flip it per scope.
bool batch_disabled();

/// Static batch-compilation coverage of one compiled program — what the
/// report surfaces per program so kernel coverage is observable.
struct BatchCoverage {
    std::size_t actions = 0;            ///< program + fault actions
    std::size_t fully_compiled = 0;     ///< guards without kCall fallbacks
    std::size_t structured_effects = 0; ///< effects with a non-generic form
    std::size_t batchable_actions = 0;  ///< both of the above
    std::size_t kcall_ops = 0;          ///< total kCall fallback ops
    bool batchable = false;  ///< whole program eligible for the batch path
};

/// Coverage of `cp` without building any guard bitsets (cheap; used by
/// `dcft verify --report` and the telemetry flush).
BatchCoverage batch_coverage(const CompiledProgram& cp);

class BatchKernel {
public:
    using Edge = TransitionSystem::Edge;
    using Rec = std::pair<std::uint32_t, StateIndex>;
    using Counts = std::pair<std::uint32_t, std::uint32_t>;

    /// Specializes `cp` against the guard bitsets the exploration already
    /// collected (nullptr entries = guard not fully compiled). The spans
    /// must outlive the kernel; bitsets must already be built.
    BatchKernel(const CompiledProgram& cp,
                std::span<const BitVec* const> prog_gbits,
                std::span<const BitVec* const> fault_gbits);

    /// Whether sweep()/count_edges()/expand_frontier() may be used.
    bool batchable() const { return batchable_; }

    /// Exact (program, fault) edge counts emitted by states [begin, end).
    /// `begin` must be 64-aligned. Pure popcount over guard-bitset words.
    std::pair<std::uint64_t, std::uint64_t> count_edges(StateIndex begin,
                                                       StateIndex end) const;

    /// Output slice of one sweep segment: absolute CSR arrays plus the
    /// running edge cursors at `begin` (from count_edges prefix sums).
    struct SweepSlice {
        Edge* prog_edges;               ///< absolute edge array base
        Edge* fault_edges;              ///< absolute fault edge array base
        std::uint64_t* prog_offsets;    ///< absolute offsets array base
        std::uint64_t* fault_offsets;   ///< absolute offsets array base
        std::uint64_t prog_cursor;      ///< edges emitted before `begin`
        std::uint64_t fault_cursor;
    };

    /// Fused guard+successor sweep over the contiguous identity run
    /// [begin, end): for every state s (node id == s) writes its program
    /// and fault edges at the bump cursors and offsets[s+1]. `begin` must
    /// be 64-aligned. Requires batchable(). Single writer per slice;
    /// disjoint slices may run concurrently.
    void sweep(StateIndex begin, StateIndex end, SweepSlice slice) const;

    /// Scalar-free expansion of an arbitrary frontier slice: appends the
    /// (action, target) records and per-state (n_prog, n_fault) counts in
    /// exactly the ChunkBuf layout (program records of a state first,
    /// then fault records). Returns (program, fault) record totals.
    /// Requires batchable().
    std::pair<std::uint64_t, std::uint64_t> expand_frontier(
        const StateIndex* states, std::size_t n, std::vector<Rec>& recs,
        std::vector<Counts>& counts) const;

private:
    /// One action lowered to flat batch form. Strides are signed so the
    /// delta arithmetic matches CompiledSpace::set_digit bit-for-bit.
    ///
    /// Every single-successor kind is lowered to one unified table form
    ///     target(s) = s + (tab[d[src]] - d[var]) * stride
    /// (kSkip: stride 0; kAssignConst: constant tab; kAssignVar: identity
    /// tab over var2; kAssignAddMod: tab[x] = (x + value) % modulus
    /// precomputed with C++ semantics). The sweep inner loop then pays one
    /// tiny-table load per edge — no modulo, no per-kind dispatch.
    struct Spec {
        Action::EffectForm::Kind kind;
        VarId var = 0;
        VarId var2 = 0;
        std::int64_t stride = 0;   ///< stride(var)
        Value value = 0;           ///< const / addend
        Value modulus = 0;         ///< kAssignAddMod
        VarId src = 0;             ///< tab index variable (det kinds)
        std::vector<Value> tab;    ///< new-value table over dom(src)
        std::vector<Value> choices;
        struct CorruptVar {
            VarId v;
            std::int64_t stride;
            Value dom;
        };
        std::vector<CorruptVar> corrupt;
        std::uint32_t max_succ = 0;  ///< exact successors per enabled state
        const std::uint64_t* gw = nullptr;  ///< guard bitset words
    };

    static bool lower(const CompiledAction& ka, const CompiledSpace& cs,
                      const BitVec* gbits, Spec& out);

    const CompiledSpace& cs_;
    std::vector<Spec> prog_;
    std::vector<Spec> fault_;
    std::vector<Value> doms_;  ///< per-variable domain (odometer radices)
    bool batchable_ = false;
};

}  // namespace dcft
