// Process-wide memoization of explored transition systems.
//
// One tolerance verdict explores the same two graphs (p from S, p [] F
// from S); `dcft verify` asks for three grades over the same pair; masking
// synthesis re-checks candidates against the same fault class repeatedly.
// Before this cache each of those calls re-ran the full BFS. The cache
// keys a built TransitionSystem by *content identity*:
//
//   (space identity, program name, program action identities,
//    fault-class name + action identities (or "no faults"),
//    the exact initial-state bit set)
//
// Action identity is Action::id() — the shared immutable implementation
// pointer — so any transformation that changes an action (restriction,
// encapsulation, synthesis edits) produces new ids and therefore a new
// key; renaming a program changes the program-name component. Both are
// covered by the invalidation tests.
//
// The initial predicate is compared by its *materialized bit set* (hash
// first, exact word comparison on candidate hits), so differently-named
// but extensionally equal initial predicates share an entry, and hash
// collisions cannot produce a wrong graph.
//
// Entries are LRU-evicted beyond DCFT_EXPLORE_CACHE_CAP (default 8).
// DCFT_NO_EXPLORE_CACHE=1 bypasses the cache entirely (every call
// builds); benches clear() inside timed loops so repeated queries measure
// real exploration work.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "gc/program.hpp"
#include "verify/transition_system.hpp"

namespace dcft {

/// True iff DCFT_NO_EXPLORE_CACHE is set (non-empty, not "0").
bool exploration_cache_disabled();

class ExplorationCache {
public:
    /// The process-wide cache used by the verdict and synthesis pipelines.
    static ExplorationCache& global();

    /// Returns the transition system of (program [, faults]) restricted to
    /// the states reachable from `init`, building and caching it on miss.
    /// Thread-safe; a miss builds under the cache lock (concurrent callers
    /// of the same key wait and then hit).
    std::shared_ptr<const TransitionSystem> get_or_build(
        const Program& program, const FaultClass* faults,
        const Predicate& init, unsigned n_threads = 0);

    /// Drops every entry (benches use this to time real explorations).
    void clear();

    std::size_t size() const;

    /// Maximum number of retained entries (DCFT_EXPLORE_CACHE_CAP,
    /// default 8, re-read per insertion).
    static std::size_t capacity();

private:
    struct Entry {
        const StateSpace* space;
        std::string program_name;
        std::vector<const void*> program_actions;
        bool has_faults;
        std::string fault_name;
        std::vector<const void*> fault_actions;
        std::uint64_t init_hash;
        BitVec init_bits;  ///< exact key component (collision-proof)
        std::shared_ptr<const TransitionSystem> ts;
    };

    mutable std::mutex mutex_;
    std::list<Entry> entries_;  ///< front = most recently used
};

}  // namespace dcft
