// Process-wide memoization of explored transition systems.
//
// One tolerance verdict explores the same two graphs (p from S, p [] F
// from S); `dcft verify` asks for three grades over the same pair; masking
// synthesis re-checks candidates against the same fault class repeatedly.
// Before this cache each of those calls re-ran the full BFS. The cache
// keys a built TransitionSystem by *content identity*:
//
//   (space uid, program name, program action identities,
//    fault-class name + action identities (or "no faults"),
//    the exact initial-state bit set)
//
// Identity is ABA-proof by construction:
//  * The space component is StateSpace::uid() — a process-unique,
//    monotonically increasing generation id assigned per object — never
//    the raw address. A destroyed space whose storage the allocator hands
//    to a new space can therefore never resurrect a stale entry.
//  * Action identity is Action::id() (the shared immutable implementation
//    pointer), and the key stores the Action *values* themselves, pinning
//    the implementations alive for the entry's lifetime so their ids
//    cannot be recycled either. This matters for fault classes in
//    particular: a TransitionSystem does not retain its FaultClass, so
//    without pinning, a rebuilt fault class could reuse a freed id and
//    collide with a stale entry (the regression test rebuilds fault
//    classes in a loop to pin this).
//  * Any transformation that changes an action (restriction,
//    encapsulation, synthesis edits) produces new ids and therefore a new
//    key; renaming a program changes the program-name component.
//
// The initial predicate is compared by its *materialized bit set* (hash
// first, exact word comparison on candidate hits), so differently-named
// but extensionally equal initial predicates share an entry, and hash
// collisions cannot produce a wrong graph.
//
// Concurrency: the mutex guards only the entry list. A miss inserts an
// in-flight entry carrying a std::shared_future and runs the BFS *outside*
// the lock; concurrent requests for the same key park on the future (one
// build per key), while unrelated keys build fully concurrently — one
// large exploration no longer serializes the verdict pipelines (the
// concurrency regression test pins this). A build that throws removes its
// entry and propagates the exception to every waiter.
//
// Eviction is both entry- and byte-aware. Entries are LRU-evicted beyond
// DCFT_EXPLORE_CACHE_CAP (default 8); additionally, every completed entry
// records the resident footprint of its TransitionSystem
// (TransitionSystem::resident_bytes — nodes + CSR + interner) and, when
// DCFT_EXPLORE_CACHE_BYTES is set, ready entries are LRU-evicted from the
// tail until the cache fits the byte budget (the most recent entry is
// always retained so a single over-budget graph still serves its own
// verdict pipeline). In-flight builds are never byte-evicted — their
// footprint is unknown and evicting them would break same-key dedup.
// Counters: verify/explore_cache/evictions (entry cap),
// verify/explore_cache/byte_evictions, and the resident_bytes gauge.
//
// Persistent store integration: when DCFT_GRAPH_STORE names a directory
// (see verify/graph_store.hpp), a miss first tries to mmap-adopt a stored
// snapshot — including on the early-exit path, where a stored *complete*
// graph is answered via first_bad_node exactly like an in-memory hit —
// and a completed fresh build is published back to the store.
// DCFT_NO_EXPLORE_CACHE=1 bypasses the cache entirely (every call
// builds); benches clear() inside timed loops so repeated queries measure
// real exploration work.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "gc/program.hpp"
#include "verify/transition_system.hpp"

namespace dcft {

/// True iff DCFT_NO_EXPLORE_CACHE is set to a truthy value (see
/// common/env.hpp for the shared DCFT_* truthiness rule).
bool exploration_cache_disabled();

class ExplorationCache {
public:
    /// The process-wide cache used by the verdict and synthesis pipelines.
    static ExplorationCache& global();

    /// Returns the transition system of (program [, faults]) restricted to
    /// the states reachable from `init`, building and caching it on miss.
    /// Thread-safe; the lock covers map operations only. Concurrent
    /// requests for the same key share one build (all callers receive the
    /// same shared_ptr); requests for different keys build concurrently.
    std::shared_ptr<const TransitionSystem> get_or_build(
        const Program& program, const FaultClass* faults,
        const Predicate& init, unsigned n_threads = 0);

    /// Early-exit variant for safety-style obligations. Returns either
    ///  * the cached *complete* graph of (program [, faults], init) when
    ///    one is already resident (callers then use first_bad_node), or
    ///  * a fresh exploration with `stop_on` registered: the result is an
    ///    early-exit fragment when the predicate fired (bad_node() set) or
    ///    the full graph when it never fired.
    /// Cache discipline: fragments are NEVER inserted — a subsequent
    /// get_or_build for the same key can therefore never be served an
    /// incomplete graph — while a fresh build that ran to exhaustion IS
    /// published (it is exactly the graph get_or_build would have built).
    /// An in-flight full build of the same key is not waited on: the
    /// fragment is typically far cheaper than parking on a large BFS.
    std::shared_ptr<const TransitionSystem> get_or_build_early_exit(
        const Program& program, const FaultClass* faults,
        const Predicate& init, const Predicate& stop_on,
        unsigned n_threads = 0);

    /// Drops every entry (benches use this to time real explorations).
    /// In-flight builds complete normally for their waiters; they are
    /// simply forgotten.
    void clear();

    /// Number of entries, including in-flight builds.
    std::size_t size() const;

    /// Maximum number of retained entries (DCFT_EXPLORE_CACHE_CAP,
    /// default 8, re-read per insertion).
    static std::size_t capacity();

    /// Byte budget over the resident footprints of completed entries
    /// (DCFT_EXPLORE_CACHE_BYTES; 0 = unlimited, the default).
    static std::uint64_t byte_budget();

    /// Sum of the recorded resident bytes of completed entries.
    std::uint64_t resident_bytes() const;

private:
    struct Key {
        std::uint64_t space_uid = 0;
        std::string program_name;
        /// Pinned copies: keep the Action implementations (and through
        /// them their ids) alive for the entry's lifetime.
        std::vector<Action> program_actions;
        bool has_faults = false;
        std::string fault_name;
        std::vector<Action> fault_actions;
        std::uint64_t init_hash = 0;
        BitVec init_bits;  ///< exact key component (collision-proof)
    };

    struct Entry {
        Key key;
        std::uint64_t token;  ///< identifies this entry for error removal
        std::shared_future<std::shared_ptr<const TransitionSystem>> ts;
        /// TransitionSystem::resident_bytes once the build completed;
        /// 0 while in flight (such entries are never byte-evicted).
        std::uint64_t bytes = 0;
    };

    /// Removes the entry carrying `token` if it is still present (used
    /// when a build fails; waiters get the exception via the future).
    void remove_entry(std::uint64_t token);

    /// Records the completed entry's footprint and enforces the byte
    /// budget (LRU from the tail, ready entries only, front retained).
    void note_ready_bytes(std::uint64_t token, std::uint64_t bytes);

    /// Inserts a ready entry for (program [, faults], init) unless one is
    /// already present; returns true when inserted. Shared by the
    /// early-exit publish and the store-load paths.
    bool publish_if_absent(
        const StateSpace& space, const Program& program,
        const FaultClass* faults, std::uint64_t init_hash,
        const BitVec& init_bits,
        const std::shared_ptr<const TransitionSystem>& ts);

    /// Whether `k` identifies (program [, faults], init_bits) — the one
    /// key comparison, shared by the full and early-exit lookups.
    static bool matches(const Key& k, const StateSpace& space,
                        const Program& program, const FaultClass* faults,
                        std::uint64_t init_hash, const BitVec& init_bits);

    /// Builds the pinned key for (program [, faults], init_bits).
    static Key make_key(const StateSpace& space, const Program& program,
                        const FaultClass* faults, std::uint64_t init_hash,
                        BitVec init_bits);

    mutable std::mutex mutex_;
    std::list<Entry> entries_;  ///< front = most recently used
    std::uint64_t next_token_ = 0;
};

}  // namespace dcft
