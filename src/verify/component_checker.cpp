#include "verify/component_checker.hpp"

namespace dcft {

CheckResult check_detector(const Program& d, const DetectorClaim& claim) {
    return refines_spec(d, detects_spec(claim.witness, claim.detection),
                        claim.context);
}

CheckResult check_corrector(const Program& c, const CorrectorClaim& claim) {
    return refines_spec(c, corrects_spec(claim.witness, claim.correction),
                        claim.context);
}

CheckResult check_tolerant_detector(const Program& d, const FaultClass& f,
                                    const DetectorClaim& claim,
                                    Tolerance grade, const Predicate& span) {
    const ProblemSpec spec = detects_spec(claim.witness, claim.detection);
    if (CheckResult r = refines_spec(d, spec, claim.context); !r)
        return CheckResult::failure("in the absence of faults: " + r.reason);
    if (CheckResult r = refines_weakened(d, &f, spec, grade, span,
                                         claim.context);
        !r)
        return CheckResult::failure("in the presence of " + f.name() + ": " +
                                    r.reason);
    return CheckResult::success();
}

CheckResult check_tolerant_corrector(const Program& c, const FaultClass& f,
                                     const CorrectorClaim& claim,
                                     Tolerance grade, const Predicate& span) {
    const ProblemSpec spec = corrects_spec(claim.witness, claim.correction);
    if (CheckResult r = refines_spec(c, spec, claim.context); !r)
        return CheckResult::failure("in the absence of faults: " + r.reason);
    if (CheckResult r = refines_weakened(c, &f, spec, grade, span,
                                         claim.context);
        !r)
        return CheckResult::failure("in the presence of " + f.name() + ": " +
                                    r.reason);
    return CheckResult::success();
}

}  // namespace dcft
