// Refinement checks (Section 2.2.1 of the paper).
//
//   refines_spec(p, SPEC, from)      — 'p refines SPEC from S': S closed in
//     p, and every computation of p from S is in SPEC (safety over every
//     visited state/transition; liveness under p-fairness/p-maximality).
//     With a fault class, checks 'p [] F refines SPEC from T' under
//     Assumption 2 (finitely many fault occurrences).
//
//   refines_program(p', p, from)     — 'p' refines p from S' up to
//     stuttering: S closed in p', and every step of p' from S either leaves
//     the variables of p unchanged or projects onto a step of p. (The
//     paper's examples — pf refining p while setting the witness Z1 — are
//     refinements of exactly this kind.)
//
//   converges(p, f, from, to)        — 'p [] F refines (true)*(p | to)
//     from `from`': every computation eventually reaches `to`.
#pragma once

#include "spec/problem_spec.hpp"
#include "verify/check_result.hpp"
#include "verify/transition_system.hpp"

namespace dcft {

struct RefinesOptions {
    /// When set, checks 'p [] F refines ... from `from`'.
    const FaultClass* faults = nullptr;

    /// Opt-in early exit for safety-style queries. Applies only when the
    /// spec has no liveness obligations and its safety part is
    /// state_only(): the exploration then registers
    /// (spec.safety().bad_states() || !from) as a stop predicate and
    /// terminates at the first (canonically least node id) violating
    /// state instead of materializing the full graph. The verdict is
    /// identical to the default path; on failure the counterexample is
    /// the canonically first violating *state* (closure escape or bad
    /// state, whichever is discovered first), which may differ from the
    /// default path's closure-first report order while remaining a valid
    /// minimal-depth witness. Liveness specs and non-state-only safety
    /// silently fall back to the full pipeline.
    bool early_exit = false;
};

/// 'p refines SPEC from `from`' (or 'p [] F refines SPEC from `from`').
CheckResult refines_spec(const Program& p, const ProblemSpec& spec,
                         const Predicate& from, const RefinesOptions& opts = {});

/// refines_spec evaluated on a pre-built transition system, so one
/// exploration can carry several obligations (see check_tolerance).
///
/// `ts` must have been built over the same program with the same fault
/// class (`faults` selects whether fault edges participate), and every
/// state satisfying `from` must be a node of `ts` — e.g. `ts` was explored
/// from `from` itself, or `from` denotes a subset of ts.state_bits().
/// Closure of `from` is checked on the recorded edges; the successor sets
/// are identical to what a fresh enumeration would produce, so verdicts
/// (and, when `ts` was explored from `from`, messages) match refines_spec.
CheckResult refines_spec_on(const TransitionSystem& ts,
                            const FaultClass* faults, const ProblemSpec& spec,
                            const Predicate& from);

/// 'p_prime refines p from `from`' up to stuttering on the variables of p.
CheckResult refines_program(const Program& p_prime, const Program& p,
                            const Predicate& from);

/// 'p [] F refines (true)*(p | to) from `from`': every computation (with
/// finitely many fault steps if f != nullptr) eventually reaches `to`.
CheckResult converges(const Program& p, const FaultClass* f,
                      const Predicate& from, const Predicate& to);

/// The grade-weakened refinement used for tolerant components and
/// tolerance checking:
///   masking    — refines_spec of SPEC itself;
///   fail-safe  — refines_spec of the safety part only;
///   nonmasking — (true)*SPEC via a recovery predicate `via`: the
///                computation converges to `via`, `via` is closed in p, and
///                p (program-only) refines SPEC from `via`.
CheckResult refines_weakened(const Program& p, const FaultClass* f,
                             const ProblemSpec& spec, Tolerance grade,
                             const Predicate& from, const Predicate& via);

}  // namespace dcft
