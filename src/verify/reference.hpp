// Reference (seed-era) verifier implementations, retained on purpose.
//
// When the verifier core moved to CSR storage, a direct-mapped interner,
// level-synchronous parallel exploration and bulk predicate evaluation
// (see DESIGN.md, "Performance architecture"), the original sequential
// implementations were kept here, verbatim in structure, for two jobs:
//
//   1. *Differential oracle.* The property tests assert that the optimized
//      TransitionSystem reproduces the reference exploration bit-for-bit —
//      node numbering, edge sets, BFS parents, witness paths — on
//      randomized programs, for every thread count; and that the optimized
//      verdict pipeline agrees with the reference pipeline.
//   2. *Benchmark baseline.* bench_verifier reports speedups of the
//      optimized paths against these functions, so the numbers in
//      BENCH_verifier.json measure real end-to-end wins rather than
//      vibes.
//
// Everything here is deliberately naive: FIFO-queue BFS with a hash-map
// interner and vector-of-vectors adjacency, per-state std::function
// predicate evaluation, and a verdict pipeline that re-enumerates
// successors for each obligation. Do not "optimize" this file — its value
// is that it stays the simple spec-like implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "spec/problem_spec.hpp"
#include "verify/check_result.hpp"
#include "verify/state_set.hpp"
#include "verify/tolerance_checker.hpp"
#include "verify/transition_system.hpp"

namespace dcft::reference {

struct RefEdge {
    std::uint32_t action;
    NodeId to;

    friend bool operator==(const RefEdge&, const RefEdge&) = default;
};

/// The seed's explicit transition system: sequential FIFO-queue
/// exploration, std::unordered_map interner, one std::vector of edges per
/// node, per-state init evaluation, and a lazily built vector-of-vectors
/// predecessor cache.
class RefTransitionSystem {
public:
    RefTransitionSystem(const Program& program, const FaultClass* faults,
                        const Predicate& init);

    const StateSpace& space() const { return *space_; }
    const Program& program() const { return program_; }

    std::size_t num_nodes() const { return states_.size(); }
    StateIndex state_of(NodeId n) const { return states_[n]; }
    const std::vector<StateIndex>& states() const { return states_; }
    const std::vector<NodeId>& parents() const { return parent_; }
    const std::vector<NodeId>& initial_nodes() const { return initial_; }

    const std::vector<RefEdge>& program_edges(NodeId n) const {
        return prog_edges_[n];
    }
    const std::vector<RefEdge>& fault_edges(NodeId n) const {
        return fault_edges_[n];
    }
    std::size_t num_program_edges() const;

    bool enabled(NodeId n, std::uint32_t a) const;
    bool terminal(NodeId n) const { return prog_edges_[n].empty(); }

    /// Lazily built on first call, exactly like the seed (no once_flag —
    /// the reference is single-threaded by construction).
    const std::vector<std::vector<NodeId>>& predecessors(
        bool include_faults) const;

    std::vector<StateIndex> witness_path(NodeId n) const;
    std::string format_witness(NodeId n) const;

private:
    std::shared_ptr<const StateSpace> space_;
    Program program_;
    std::vector<StateIndex> states_;
    std::vector<NodeId> initial_;
    std::vector<NodeId> parent_;
    std::vector<std::vector<RefEdge>> prog_edges_;
    std::vector<std::vector<RefEdge>> fault_edges_;
    std::unordered_map<StateIndex, NodeId> node_of_;
    mutable std::optional<std::vector<std::vector<NodeId>>> preds_prog_;
    mutable std::optional<std::vector<std::vector<NodeId>>> preds_all_;
};

/// Seed closure / fault-preservation checks: exhaustive per-state
/// predicate evaluation, fresh successor enumeration.
CheckResult ref_check_closed(const Program& p, const Predicate& s);
CheckResult ref_check_preserved(const FaultClass& f, const Predicate& s);

/// Seed reachability: FIFO queue over point insertions.
StateSet ref_reachable_states(const Program& p, const FaultClass* f,
                              const Predicate& from);

/// Seed leads-to under p-fairness/p-maximality (Tarjan SCC + avoidance
/// closure) with per-node std::function predicate evaluation.
CheckResult ref_check_leads_to(const RefTransitionSystem& ts,
                               const Predicate& p, const Predicate& q,
                               bool include_fault_edges);
CheckResult ref_check_reaches(const RefTransitionSystem& ts,
                              const Predicate& target,
                              bool include_fault_edges);

/// Seed refinement pipeline: closure sweep, then a fresh exploration, then
/// safety and liveness on it.
CheckResult ref_refines_spec(const Program& p, const ProblemSpec& spec,
                             const Predicate& from,
                             const FaultClass* faults = nullptr);
CheckResult ref_converges(const Program& p, const FaultClass* f,
                          const Predicate& from, const Predicate& to);

/// Seed tolerance verdict: separate invariant count, absence check, fault
/// span reachability, and presence check — each re-enumerating successors.
ToleranceReport ref_check_tolerance(const Program& p, const FaultClass& f,
                                    const ProblemSpec& spec,
                                    const Predicate& invariant,
                                    Tolerance grade);

}  // namespace dcft::reference
