#include "verify/invariant.hpp"

#include <deque>

#include "verify/reachability.hpp"

namespace dcft {

Predicate reachable_invariant(const Program& p, const Predicate& initial) {
    auto reach = std::make_shared<StateSet>(
        reachable_states(p, nullptr, initial));
    return predicate_of(std::move(reach),
                        "reach(" + p.name() + "," + initial.name() + ")");
}

Predicate largest_safety_invariant(const Program& p,
                                   const SafetySpec& safety) {
    const StateSpace& space = p.space();
    const StateIndex n = space.num_states();

    // removed[s] — s cannot belong to any safety invariant.
    std::vector<char> removed(n, 0);
    std::deque<StateIndex> queue;
    std::vector<StateIndex> succ;

    // Seed: states that are themselves disallowed, or have a disallowed
    // transition (a closed set containing such a state cannot avoid it).
    for (StateIndex s = 0; s < n; ++s) {
        bool bad = !safety.state_allowed(space, s);
        if (!bad) {
            succ.clear();
            p.successors(s, succ);
            for (StateIndex t : succ) {
                if (!safety.transition_allowed(space, s, t)) {
                    bad = true;
                    break;
                }
            }
        }
        if (bad) {
            removed[s] = 1;
            queue.push_back(s);
        }
    }

    // Greatest fixpoint via backward propagation: any state with a
    // successor outside the candidate set must go too (closure).
    // Predecessor lists are built once.
    std::vector<std::vector<StateIndex>> preds(n);
    for (StateIndex s = 0; s < n; ++s) {
        succ.clear();
        p.successors(s, succ);
        for (StateIndex t : succ) preds[t].push_back(s);
    }
    while (!queue.empty()) {
        const StateIndex t = queue.front();
        queue.pop_front();
        for (StateIndex s : preds[t]) {
            if (!removed[s]) {
                removed[s] = 1;
                queue.push_back(s);
            }
        }
    }

    auto keep = std::make_shared<StateSet>(n);
    for (StateIndex s = 0; s < n; ++s)
        if (!removed[s]) keep->insert(s);
    return predicate_of(std::move(keep),
                        "largest-inv(" + p.name() + "," + safety.name() +
                            ")");
}

}  // namespace dcft
