#include "verify/invariant.hpp"

#include <utility>

#include "common/bitvec.hpp"
#include "common/parallel.hpp"
#include "verify/reachability.hpp"

namespace dcft {

Predicate reachable_invariant(const Program& p, const Predicate& initial) {
    auto reach = std::make_shared<StateSet>(
        reachable_states(p, nullptr, initial));
    return predicate_of(std::move(reach),
                        "reach(" + p.name() + "," + initial.name() + ")");
}

Predicate largest_safety_invariant(const Program& p,
                                   const SafetySpec& safety) {
    const StateSpace& space = p.space();
    const StateIndex n = space.num_states();
    const unsigned threads = default_verifier_threads();

    // One parallel pass computes, per state, (a) whether it must be
    // removed outright — disallowed itself, or having a disallowed
    // transition — and (b) its successor edges, recorded flat for the
    // predecessor CSR. Chunks are word-aligned so no two workers share a
    // word of the `removed` bitset.
    BitVec removed(n);
    const unsigned chunks = parallel_chunk_count(n, threads, BitVec::kWordBits);
    std::vector<std::vector<std::pair<StateIndex, StateIndex>>> edge_bufs(
        chunks);
    parallel_chunks(
        n, threads, BitVec::kWordBits,
        [&](unsigned c, std::uint64_t begin, std::uint64_t end) {
            auto& edges = edge_bufs[c];
            std::vector<StateIndex> succ;
            for (StateIndex s = begin; s < end; ++s) {
                succ.clear();
                p.successors(s, succ);
                bool bad = !safety.state_allowed(space, s);
                for (StateIndex t : succ) {
                    edges.emplace_back(s, t);
                    if (!bad && !safety.transition_allowed(space, s, t))
                        bad = true;
                }
                if (bad) removed.set(s);
            }
        });

    // Predecessor CSR over all program edges (counting sort, flat arrays).
    std::size_t num_edges = 0;
    for (const auto& buf : edge_bufs) num_edges += buf.size();
    std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
    for (const auto& buf : edge_bufs)
        for (const auto& [s, t] : buf) ++offsets[t + 1];
    for (std::size_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];
    std::vector<StateIndex> preds(num_edges);
    {
        std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
        for (const auto& buf : edge_bufs)
            for (const auto& [s, t] : buf) preds[cursor[t]++] = s;
    }

    // Greatest fixpoint via backward propagation: any state with a
    // successor outside the candidate set must go too (closure).
    std::vector<StateIndex> queue;
    queue.reserve(static_cast<std::size_t>(removed.popcount()));
    removed.for_each_set([&](std::uint64_t s) {
        queue.push_back(static_cast<StateIndex>(s));
    });
    while (!queue.empty()) {
        const StateIndex t = queue.back();
        queue.pop_back();
        for (std::uint64_t i = offsets[t]; i < offsets[t + 1]; ++i) {
            const StateIndex s = preds[i];
            if (removed.test_and_set(s)) queue.push_back(s);
        }
    }

    removed.complement();
    auto keep = std::make_shared<StateSet>(std::move(removed));
    return predicate_of(std::move(keep),
                        "largest-inv(" + p.name() + "," + safety.name() +
                            ")");
}

}  // namespace dcft
