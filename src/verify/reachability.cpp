#include "verify/reachability.hpp"

#include <memory>
#include <utility>

#include "common/parallel.hpp"
#include "obs/telemetry.hpp"
#include "verify/action_kernel.hpp"
#include "verify/exploration_cache.hpp"

namespace dcft {

StateSet reachable_states(const Program& p, const FaultClass* f,
                          const Predicate& from, unsigned n_threads) {
    const StateSpace& space = p.space();
    const StateIndex n_states = space.num_states();
    const unsigned threads = resolve_verifier_threads(n_threads);

    // Compile the guarded commands once per sweep (interpreted under
    // DCFT_NO_COMPILE). Successor sets are identical on both paths.
    std::unique_ptr<CompiledProgram> compiled;
    if (!compile_disabled())
        compiled = std::make_unique<CompiledProgram>(p, f);

    // Seed: bulk-evaluate the source predicate (each state exactly once).
    StateSet seen(eval_bits(space, from, threads));
    std::vector<StateIndex> frontier;
    frontier.reserve(static_cast<std::size_t>(seen.count()));
    seen.for_each([&](StateIndex s) { frontier.push_back(s); });

    // Level-synchronous expansion: workers compute successor targets for
    // disjoint frontier slices into chunk-private buffers; the merge pass
    // dedupes into `seen` serially. The resulting set is independent of the
    // chunking, so verdicts are identical for every thread count.
    std::vector<std::vector<StateIndex>> bufs;
    std::vector<StateIndex> next;
    while (!frontier.empty()) {
        const std::uint64_t level = frontier.size();
        const unsigned chunks = parallel_chunk_count(level, threads, 1);
        if (bufs.size() < chunks) bufs.resize(chunks);
        parallel_chunks(level, threads, 1,
                        [&](unsigned c, std::uint64_t b, std::uint64_t e) {
                            std::vector<StateIndex>& out = bufs[c];
                            out.clear();
                            for (std::uint64_t i = b; i < e; ++i) {
                                const StateIndex s = frontier[i];
                                if (compiled != nullptr) {
                                    compiled->program_actions().successors(
                                        s, out);
                                    if (compiled->has_faults())
                                        compiled->fault_actions().successors(
                                            s, out);
                                } else {
                                    p.successors(s, out);
                                    if (f != nullptr) f->successors(s, out);
                                }
                            }
                        });
        next.clear();
        for (unsigned c = 0; c < chunks; ++c)
            for (StateIndex t : bufs[c])
                if (seen.insert(t)) next.push_back(t);
        frontier.swap(next);
    }
    (void)n_states;
    return seen;
}

CheckResult check_unreachable(const Program& p, const FaultClass* f,
                              const Predicate& from, const Predicate& bad,
                              unsigned n_threads) {
    const obs::ScopedSpan span("verify/reachability");
    obs::count("verify/obligations/reachability");
    const auto ts = ExplorationCache::global().get_or_build_early_exit(
        p, f, from, bad, n_threads);
    // Fragment: the stop predicate fired and bad_node() is the canonical
    // first violation. Complete graph (cache hit, or `bad` unreachable):
    // first_bad_node scans for exactly the node the early exit would have
    // reported.
    const NodeId b =
        ts->complete() ? ts->first_bad_node(bad) : ts->bad_node();
    if (b == TransitionSystem::kNoNode) return CheckResult::success();
    obs::count("verify/obligations/failed");
    return CheckResult::failure(
        "reachable: state " + ts->space().format(ts->state_of(b)) +
            " satisfies " + bad.name() + "; witness: " +
            ts->format_witness(b),
        ts->witness_trace(b));
}

}  // namespace dcft
