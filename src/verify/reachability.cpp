#include "verify/reachability.hpp"

#include <deque>

namespace dcft {

StateSet reachable_states(const Program& p, const FaultClass* f,
                          const Predicate& from) {
    const StateSpace& space = p.space();
    StateSet seen(space.num_states());
    std::deque<StateIndex> frontier;
    for (StateIndex s = 0; s < space.num_states(); ++s) {
        if (from.eval(space, s) && seen.insert(s)) frontier.push_back(s);
    }
    std::vector<StateIndex> succ;
    while (!frontier.empty()) {
        const StateIndex s = frontier.front();
        frontier.pop_front();
        succ.clear();
        p.successors(s, succ);
        if (f != nullptr) f->successors(s, succ);
        for (StateIndex t : succ)
            if (seen.insert(t)) frontier.push_back(t);
    }
    return seen;
}

}  // namespace dcft
