#include "verify/batch_kernel.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"
#include "common/env.hpp"

namespace dcft {

bool batch_disabled() { return env_flag_enabled("DCFT_NO_BATCH"); }

BatchCoverage batch_coverage(const CompiledProgram& cp) {
    BatchCoverage cov;
    auto scan = [&](const CompiledActionSet& set) {
        for (const CompiledAction& a : set.actions()) {
            ++cov.actions;
            const bool guard_ok = a.guard_fully_compiled();
            const bool effect_ok =
                a.effect_form().kind != Action::EffectForm::Kind::kGeneric;
            cov.kcall_ops += a.guard_opaque_ops();
            if (guard_ok) ++cov.fully_compiled;
            if (effect_ok) ++cov.structured_effects;
            if (guard_ok && effect_ok) ++cov.batchable_actions;
        }
    };
    scan(cp.program_actions());
    if (cp.has_faults()) scan(cp.fault_actions());
    cov.batchable = cp.cspace().fast() &&
                    cov.batchable_actions == cov.actions &&
                    cp.program_actions().size() <= 64 &&
                    (!cp.has_faults() || cp.fault_actions().size() <= 64);
    return cov;
}

bool BatchKernel::lower(const CompiledAction& ka, const CompiledSpace& cs,
                        const BitVec* gbits, Spec& out) {
    using EK = Action::EffectForm::Kind;
    const Action::EffectForm& f = ka.effect_form();
    if (f.kind == EK::kGeneric || gbits == nullptr) return false;
    out.kind = f.kind;
    out.var = f.var;
    out.var2 = f.var2;
    out.value = f.value;
    out.modulus = f.modulus;
    out.gw = gbits->data();
    // Unified table form for the single-successor kinds (see Spec): the
    // table is indexed by the current digit of `src`, so it has dom(src)
    // entries — a handful of hot int64s per action.
    auto fill_tab = [&](VarId src, auto nv_of) {
        out.src = src;
        const Value dom = cs.num_vars() == 0 ? 1 : cs.domain(src);
        out.tab.resize(static_cast<std::size_t>(dom));
        for (Value x = 0; x < dom; ++x)
            out.tab[static_cast<std::size_t>(x)] = nv_of(x);
    };
    switch (f.kind) {
        case EK::kSkip:
            // stride stays 0: target(s) = s regardless of the table value.
            fill_tab(0, [](Value x) { return x; });
            out.max_succ = 1;
            break;
        case EK::kAssignConst:
            out.stride = static_cast<std::int64_t>(cs.stride(f.var));
            fill_tab(f.var, [&](Value) { return f.value; });
            out.max_succ = 1;
            break;
        case EK::kAssignVar:
            out.stride = static_cast<std::int64_t>(cs.stride(f.var));
            fill_tab(f.var2, [](Value x) { return x; });
            out.max_succ = 1;
            break;
        case EK::kAssignAddMod:
            out.stride = static_cast<std::int64_t>(cs.stride(f.var));
            // Precomputed with C++ truncated-division semantics — the
            // per-edge result is bit-identical to the scalar path's
            // (d[var2] + value) % modulus.
            fill_tab(f.var2,
                     [&](Value x) { return (x + f.value) % f.modulus; });
            out.max_succ = 1;
            break;
        case EK::kAssignChoice:
            out.stride = static_cast<std::int64_t>(cs.stride(f.var));
            out.choices = f.choices;
            out.max_succ = static_cast<std::uint32_t>(f.choices.size());
            break;
        case EK::kCorruptAny: {
            std::uint32_t total = 0;
            out.corrupt.reserve(f.vars.size());
            for (const VarId v : f.vars) {
                const Value dom = cs.domain(v);
                out.corrupt.push_back(
                    {v, static_cast<std::int64_t>(cs.stride(v)), dom});
                total += static_cast<std::uint32_t>(dom - 1);
            }
            out.max_succ = total;
            break;
        }
        default:
            return false;
    }
    return true;
}

BatchKernel::BatchKernel(const CompiledProgram& cp,
                         std::span<const BitVec* const> prog_gbits,
                         std::span<const BitVec* const> fault_gbits)
    : cs_(cp.cspace()) {
    const auto pacts = cp.program_actions().actions();
    const auto facts = cp.has_faults() ? cp.fault_actions().actions()
                                       : std::span<const CompiledAction>{};
    if (!cs_.fast() || pacts.size() > 64 || facts.size() > 64) return;
    prog_.resize(pacts.size());
    for (std::size_t a = 0; a < pacts.size(); ++a)
        if (!lower(pacts[a], cs_, prog_gbits[a], prog_[a])) return;
    fault_.resize(facts.size());
    for (std::size_t a = 0; a < facts.size(); ++a)
        if (!lower(facts[a], cs_, fault_gbits[a], fault_[a])) return;
    doms_.resize(cs_.num_vars());
    for (VarId v = 0; v < doms_.size(); ++v) doms_[v] = cs_.domain(v);
    batchable_ = true;
}

std::pair<std::uint64_t, std::uint64_t> BatchKernel::count_edges(
    StateIndex begin, StateIndex end) const {
    DCFT_EXPECTS((begin & 63) == 0 && begin <= end,
                 "BatchKernel::count_edges: misaligned range");
    auto count = [&](const std::vector<Spec>& specs) {
        std::uint64_t total = 0;
        const std::uint64_t wb = begin >> 6;
        const std::uint64_t we = end >> 6;
        const unsigned tail = static_cast<unsigned>(end & 63);
        for (const Spec& k : specs) {
            std::uint64_t pop = 0;
            for (std::uint64_t w = wb; w < we; ++w)
                pop += static_cast<std::uint64_t>(std::popcount(k.gw[w]));
            if (tail != 0)
                pop += static_cast<std::uint64_t>(std::popcount(
                    k.gw[we] & ((std::uint64_t{1} << tail) - 1)));
            total += pop * k.max_succ;
        }
        return total;
    };
    return {count(prog_), count(fault_)};
}

void BatchKernel::sweep(StateIndex begin, StateIndex end,
                        SweepSlice out) const {
    using EK = Action::EffectForm::Kind;
    DCFT_EXPECTS(batchable_ && (begin & 63) == 0,
                 "BatchKernel::sweep: not batchable or misaligned");
    const std::size_t nv = doms_.size();
    // Padded to one element so d[Spec::src] is always a valid read even
    // for a zero-variable space (kSkip lowers to src = 0).
    std::vector<Value> digits(std::max<std::size_t>(nv, 1), 0);
    cs_.unpack(begin, {digits.data(), nv});
    Value* d = digits.data();
    const Value* dom = doms_.data();

    const std::size_t np = prog_.size();
    const std::size_t nf = fault_.size();
    std::uint64_t pw[64], fw[64];  // per-block cached guard words
    std::uint64_t pcur = out.prog_cursor;
    std::uint64_t fcur = out.fault_cursor;

    // Emits the successors of action k (index a) at state s. Shared by the
    // program and fault streams; edge order per state is actions in
    // declaration order, each action's successors in statement order —
    // identical to the scalar path.
    auto emit = [&](const Spec& k, std::uint32_t a, StateIndex s, Edge* edges,
                    std::uint64_t& cur) {
        switch (k.kind) {
            case EK::kAssignChoice: {
                const Value c0 = d[k.var];
                for (const Value c : k.choices)
                    edges[cur++] =
                        Edge{a, static_cast<NodeId>(
                                    s + static_cast<StateIndex>(
                                            static_cast<std::int64_t>(c - c0) *
                                            k.stride))};
                return;
            }
            case EK::kCorruptAny: {
                for (const Spec::CorruptVar& cv : k.corrupt) {
                    const Value c0 = d[cv.v];
                    // base = s with digit cv.v zeroed; then walk the digit.
                    StateIndex t = s + static_cast<StateIndex>(
                                           -static_cast<std::int64_t>(c0) *
                                           cv.stride);
                    for (Value c = 0; c < cv.dom;
                         ++c, t += static_cast<StateIndex>(cv.stride))
                        if (c != c0)
                            edges[cur++] = Edge{a, static_cast<NodeId>(t)};
                }
                return;
            }
            default:
                // Unified det table (see Spec): one tiny-table load, a
                // multiply, an add — mirrors CompiledSpace::set_digit via
                // two's-complement wraparound, so the result is exact.
                edges[cur++] = Edge{
                    a, static_cast<NodeId>(
                           s + static_cast<StateIndex>(
                                   static_cast<std::int64_t>(k.tab[d[k.src]] -
                                                             d[k.var]) *
                                   k.stride))};
                return;
        }
    };

    StateIndex s = begin;
    for (std::uint64_t w = begin >> 6; s < end; ++w) {
        for (std::size_t a = 0; a < np; ++a) pw[a] = prog_[a].gw[w];
        for (std::size_t a = 0; a < nf; ++a) fw[a] = fault_[a].gw[w];
        const unsigned lim =
            static_cast<unsigned>(std::min<StateIndex>(64, end - s));
        for (unsigned bit = 0; bit < lim; ++bit, ++s) {
            std::uint64_t m = 0;
            for (std::size_t a = 0; a < np; ++a)
                m |= ((pw[a] >> bit) & 1u) << a;
            while (m != 0) {
                const unsigned a = static_cast<unsigned>(std::countr_zero(m));
                m &= m - 1;
                emit(prog_[a], a, s, out.prog_edges, pcur);
            }
            out.prog_offsets[s + 1] = pcur;
            std::uint64_t fm = 0;
            for (std::size_t a = 0; a < nf; ++a)
                fm |= ((fw[a] >> bit) & 1u) << a;
            while (fm != 0) {
                const unsigned a =
                    static_cast<unsigned>(std::countr_zero(fm));
                fm &= fm - 1;
                emit(fault_[a], a, s, out.fault_edges, fcur);
            }
            out.fault_offsets[s + 1] = fcur;
            // Odometer: amortized O(1) digit maintenance for s+1.
            for (std::size_t v = 0; v < nv; ++v) {
                if (++d[v] < dom[v]) break;
                d[v] = 0;
            }
        }
    }
}

std::pair<std::uint64_t, std::uint64_t> BatchKernel::expand_frontier(
    const StateIndex* states, std::size_t n, std::vector<Rec>& recs,
    std::vector<Counts>& counts) const {
    using EK = Action::EffectForm::Kind;
    DCFT_EXPECTS(batchable_, "BatchKernel::expand_frontier: not batchable");
    const std::size_t np = prog_.size();
    const std::size_t nf = fault_.size();
    std::uint64_t prog_total = 0, fault_total = 0;

    // Successors of action k at a scattered state: digits come from magic-
    // multiply decodes (no odometer available off the contiguous run).
    auto emit = [&](const Spec& k, std::uint32_t a, StateIndex s,
                    std::uint32_t& emitted) {
        switch (k.kind) {
            case EK::kSkip:
                recs.emplace_back(a, s);
                ++emitted;
                return;
            case EK::kAssignConst: {
                const Value cur = cs_.get(s, k.var);
                recs.emplace_back(
                    a, s + static_cast<StateIndex>(
                               static_cast<std::int64_t>(k.value - cur) *
                               k.stride));
                ++emitted;
                return;
            }
            case EK::kAssignVar: {
                const Value cur = cs_.get(s, k.var);
                const Value src = cs_.get(s, k.var2);
                recs.emplace_back(
                    a, s + static_cast<StateIndex>(
                               static_cast<std::int64_t>(src - cur) *
                               k.stride));
                ++emitted;
                return;
            }
            case EK::kAssignAddMod: {
                const Value cur = cs_.get(s, k.var);
                const Value nv = (cs_.get(s, k.var2) + k.value) % k.modulus;
                recs.emplace_back(
                    a, s + static_cast<StateIndex>(
                               static_cast<std::int64_t>(nv - cur) *
                               k.stride));
                ++emitted;
                return;
            }
            case EK::kAssignChoice: {
                const Value cur = cs_.get(s, k.var);
                for (const Value c : k.choices)
                    recs.emplace_back(
                        a, s + static_cast<StateIndex>(
                                   static_cast<std::int64_t>(c - cur) *
                                   k.stride));
                emitted += static_cast<std::uint32_t>(k.choices.size());
                return;
            }
            case EK::kCorruptAny: {
                for (const Spec::CorruptVar& cv : k.corrupt) {
                    const Value c0 = cs_.get(s, cv.v);
                    StateIndex t = s + static_cast<StateIndex>(
                                           -static_cast<std::int64_t>(c0) *
                                           cv.stride);
                    for (Value c = 0; c < cv.dom;
                         ++c, t += static_cast<StateIndex>(cv.stride))
                        if (c != c0) recs.emplace_back(a, t);
                    emitted += static_cast<std::uint32_t>(cv.dom - 1);
                }
                return;
            }
            default:
                return;
        }
    };

    for (std::size_t i = 0; i < n; ++i) {
        const StateIndex s = states[i];
        const std::uint64_t word = s >> 6;
        const unsigned bit = static_cast<unsigned>(s & 63);
        std::uint32_t n_prog = 0, n_fault = 0;
        std::uint64_t m = 0;
        for (std::size_t a = 0; a < np; ++a)
            m |= ((prog_[a].gw[word] >> bit) & 1u) << a;
        while (m != 0) {
            const unsigned a = static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            emit(prog_[a], a, s, n_prog);
        }
        std::uint64_t fm = 0;
        for (std::size_t a = 0; a < nf; ++a)
            fm |= ((fault_[a].gw[word] >> bit) & 1u) << a;
        while (fm != 0) {
            const unsigned a = static_cast<unsigned>(std::countr_zero(fm));
            fm &= fm - 1;
            emit(fault_[a], a, s, n_fault);
        }
        counts.emplace_back(n_prog, n_fault);
        prog_total += n_prog;
        fault_total += n_fault;
    }
    return {prog_total, fault_total};
}

}  // namespace dcft
