// Fault-tolerance verdicts (Section 2.4): p is masking / nonmasking /
// fail-safe F-tolerant to SPEC from S iff p refines SPEC from S and p [] F
// refines the corresponding tolerance specification of SPEC from some
// F-span T of S. The checker uses the canonical (smallest) fault span.
//
// Grade conditions in the presence of F, from T:
//   fail-safe  — every computation of p [] F from T satisfies the safety
//                part of SPEC (states, program steps, and fault steps);
//   nonmasking — every computation of p [] F from T converges to S; since
//                p refines SPEC from S, the computation has a suffix in
//                SPEC, which is exactly (true)*SPEC;
//   masking    — safety of SPEC from T as above, plus every liveness
//                obligation of SPEC holds on computations of p [] F from T
//                (fault steps taken finitely often, per Assumption 2).
//
// Theorem 5.2's composition result — fail-safe + convergence implies
// masking — is *checked as a theorem* in the test suite against this
// direct implementation of the definitions.
#pragma once

#include "spec/problem_spec.hpp"
#include "verify/check_result.hpp"
#include "verify/fault_span.hpp"

namespace dcft {

/// Knobs for check_tolerance beyond the (p, f, spec, S, grade) tuple.
struct ToleranceOptions {
    /// Opt-in early exit for safety-style grades. Applies to FailSafe
    /// always, and to Masking when the spec has no liveness obligations —
    /// in both cases only when the safety part is state_only(). The
    /// p [] F exploration then registers the spec's bad-state predicate
    /// as a stop condition: a violating query terminates at the first
    /// (canonically least node id, hence deterministic) bad state of the
    /// fault span with the exact witness and message the full pipeline
    /// reports, instead of materializing the whole span. Passing queries,
    /// non-applicable grades, and cache hits on the full graph are
    /// byte-identical to the default pipeline. When a query fails via
    /// early exit the report's fault_span/span_size cover only the
    /// explored prefix (span_complete == false).
    bool early_exit = false;
};

/// Full report for one tolerance query.
struct ToleranceReport {
    /// 'p refines SPEC from S' (the absence-of-faults obligation).
    CheckResult in_absence;
    /// The grade-specific obligation from the canonical fault span.
    CheckResult in_presence;
    /// The canonical fault span T used for `in_presence`. When
    /// span_complete is false this covers only the explored prefix of T
    /// (the early exit fired before the span was fully materialized).
    Predicate fault_span;
    /// |T| (number of states), for diagnostics and benches. A lower bound
    /// when span_complete is false.
    StateIndex span_size = 0;
    /// Whether fault_span/span_size describe the full canonical span.
    /// Always true for the default pipeline; false exactly when an
    /// early-exit query (ToleranceOptions::early_exit) failed before
    /// exhausting the exploration.
    bool span_complete = true;
    /// |S| (number of invariant states).
    StateIndex invariant_size = 0;
    /// BFS path from the invariant to the deepest explored fault-span
    /// state (replayable, with action provenance). Run reports export this
    /// as the exploration witness of passing queries; failing queries
    /// export the counterexample trace on in_absence/in_presence instead.
    std::vector<WitnessStep> deepest_trace;

    bool ok() const { return in_absence.ok && in_presence.ok; }
    /// The counterexample trace of the first failing obligation (empty
    /// when ok()).
    const std::vector<WitnessStep>& counterexample() const {
        return in_absence.ok ? in_presence.witness : in_absence.witness;
    }
    std::string reason() const {
        if (!in_absence.ok) return in_absence.reason;
        return in_presence.reason;
    }
};

/// Is p grade-F-tolerant to spec from invariant?
ToleranceReport check_tolerance(const Program& p, const FaultClass& f,
                                const ProblemSpec& spec,
                                const Predicate& invariant, Tolerance grade);

/// As above with explicit options (early-exit safety obligations).
ToleranceReport check_tolerance(const Program& p, const FaultClass& f,
                                const ProblemSpec& spec,
                                const Predicate& invariant, Tolerance grade,
                                const ToleranceOptions& options);

/// Convenience wrappers.
ToleranceReport check_failsafe(const Program& p, const FaultClass& f,
                               const ProblemSpec& spec,
                               const Predicate& invariant);
ToleranceReport check_nonmasking(const Program& p, const FaultClass& f,
                                 const ProblemSpec& spec,
                                 const Predicate& invariant);
ToleranceReport check_masking(const Program& p, const FaultClass& f,
                              const ProblemSpec& spec,
                              const Predicate& invariant);

}  // namespace dcft
