#include "verify/masking_distance.hpp"

#include <memory>
#include <utility>

#include "common/check.hpp"
#include "obs/telemetry.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/state_set.hpp"

namespace dcft {
namespace {

constexpr NodeId kUnvisited = TransitionSystem::kNoNode;

/// Min-fault BFS tree: how each node was first reached at its minimal
/// fault layer. Distinct from the exploration's own parent_ array, which
/// minimizes *steps*, not fault steps.
struct GameTree {
    std::vector<std::uint32_t> dist;   ///< fault layer of each node
    std::vector<NodeId> parent;        ///< parent[n] == n at the roots
    std::vector<std::uint32_t> action; ///< acting action index at n
    std::vector<std::uint8_t> fault;   ///< the acting action was a fault
    std::uint64_t layers = 0;
    std::uint64_t visited = 0;
};

/// Layered 0-1 BFS over the recorded CSR edges: close layer k under
/// program edges (verifier moves, weight 0), then expand fault edges
/// (refuter moves, weight 1) to seed layer k+1. Serial and in canonical
/// node-id/edge order, so the tree is independent of how the graph was
/// explored.
GameTree solve_layers(const TransitionSystem& ts) {
    const std::size_t n_nodes = ts.num_nodes();
    GameTree tree;
    tree.dist.assign(n_nodes, kUnvisited);
    tree.parent.assign(n_nodes, kUnvisited);
    tree.action.assign(n_nodes, 0);
    tree.fault.assign(n_nodes, 0);

    std::vector<NodeId> seeds = ts.initial_nodes();
    for (const NodeId r : seeds) {
        tree.dist[r] = 0;
        tree.parent[r] = r;
    }
    std::uint32_t layer = 0;
    std::vector<NodeId> queue;
    while (!seeds.empty()) {
        // Verifier half-moves: program closure of the layer.
        queue = std::move(seeds);
        seeds.clear();
        std::size_t head = 0;
        while (head < queue.size()) {
            const NodeId u = queue[head++];
            for (const auto& e : ts.program_edges(u)) {
                if (tree.dist[e.to] != kUnvisited) continue;
                tree.dist[e.to] = layer;
                tree.parent[e.to] = u;
                tree.action[e.to] = e.action;
                tree.fault[e.to] = 0;
                queue.push_back(e.to);
            }
        }
        tree.visited += queue.size();
        // Refuter half-moves: one fault each, seeding the next layer.
        for (const NodeId u : queue) {
            for (const auto& e : ts.fault_edges(u)) {
                if (tree.dist[e.to] != kUnvisited) continue;
                tree.dist[e.to] = layer + 1;
                tree.parent[e.to] = u;
                tree.action[e.to] = e.action;
                tree.fault[e.to] = 1;
                seeds.push_back(e.to);
            }
        }
        ++layer;
    }
    tree.layers = layer;
    return tree;
}

/// The min-fault path to `n` as a replayable trace (root first).
std::vector<WitnessStep> game_trace(const TransitionSystem& ts,
                                    const GameTree& tree, NodeId n) {
    std::vector<NodeId> chain;
    for (NodeId cur = n;;) {
        chain.push_back(cur);
        if (tree.parent[cur] == cur) break;
        cur = tree.parent[cur];
    }
    std::vector<WitnessStep> out;
    out.reserve(chain.size());
    for (std::size_t i = chain.size(); i-- > 0;) {
        const NodeId v = chain[i];
        WitnessStep step;
        step.state = ts.state_of(v);
        step.state_repr = ts.space().format(step.state);
        if (i + 1 < chain.size()) {
            step.fault = tree.fault[v] != 0;
            step.action = step.fault
                              ? ts.fault_action_name(tree.action[v])
                              : ts.program().action(tree.action[v]).name();
        }
        out.push_back(std::move(step));
    }
    return out;
}

}  // namespace

std::uint64_t MaskingDistanceResult::witness_faults() const {
    std::uint64_t faults = 0;
    for (const WitnessStep& step : witness)
        if (step.fault) ++faults;
    return faults;
}

MaskingDistanceResult masking_distance_on(const TransitionSystem& ts,
                                          const SafetySpec& safety) {
    const obs::ScopedSpan span("verify/masking_distance");
    obs::count("verify/masking_distance_queries");
    DCFT_EXPECTS(ts.complete(),
                 "masking_distance_on requires a complete exploration");
    const StateSpace& space = ts.space();
    const GameTree tree = solve_layers(ts);

    MaskingDistanceResult result;
    result.game_nodes = tree.visited;
    result.game_layers = tree.layers;

    // Best violation: smallest fault count, ties broken by the fixed scan
    // order (node id, then bad state before program edges before fault
    // edges) — deterministic regardless of exploration threads.
    std::uint32_t best = kUnvisited;
    NodeId best_node = TransitionSystem::kNoNode;
    // The violating step itself when the violation is a transition;
    // kNoStep means the violation is the node's own state.
    static constexpr std::uint32_t kNoStep = ~std::uint32_t{0};
    std::uint32_t best_edge_action = kNoStep;
    NodeId best_edge_to = TransitionSystem::kNoNode;
    bool best_edge_fault = false;

    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        DCFT_ASSERT(tree.dist[n] != kUnvisited,
                    "masking_distance: node outside the game");
        const std::uint32_t k = tree.dist[n];
        if (k >= best) continue;
        const StateIndex s = ts.state_of(n);
        if (!safety.state_allowed(space, s)) {
            best = k;
            best_node = n;
            best_edge_action = kNoStep;
            continue;
        }
        bool found = false;
        for (const auto& e : ts.program_edges(n)) {
            if (!safety.transition_allowed(space, s, ts.state_of(e.to))) {
                best = k;
                best_node = n;
                best_edge_action = e.action;
                best_edge_to = e.to;
                best_edge_fault = false;
                found = true;
                break;
            }
        }
        if (found || k + 1 >= best) continue;
        for (const auto& e : ts.fault_edges(n)) {
            if (!safety.transition_allowed(space, s, ts.state_of(e.to))) {
                best = k + 1;
                best_node = n;
                best_edge_action = e.action;
                best_edge_to = e.to;
                best_edge_fault = true;
                break;
            }
        }
    }

    if (best == kUnvisited) {
        result.masking = true;
        result.reason = "masking: safety of " + safety.name() +
                        " holds over the whole fault span (distance = inf)";
        return result;
    }

    result.masking = false;
    result.distance = best;
    result.witness = game_trace(ts, tree, best_node);
    std::string what;
    if (best_edge_action == kNoStep) {
        what = "state " + space.format(ts.state_of(best_node)) +
               " is excluded by " + safety.name();
    } else {
        WitnessStep step;
        step.state = ts.state_of(best_edge_to);
        step.state_repr = space.format(step.state);
        step.fault = best_edge_fault;
        step.action = best_edge_fault
                          ? ts.fault_action_name(best_edge_action)
                          : ts.program().action(best_edge_action).name();
        what = "transition " + space.format(ts.state_of(best_node)) +
               " -> " + step.state_repr + " (action '" + step.action +
               "') is excluded by " + safety.name();
        result.witness.push_back(std::move(step));
    }
    result.reason = "masking distance " + std::to_string(best) + ": " +
                    what + " after " + std::to_string(best) +
                    " fault step" + (best == 1 ? "" : "s");
    DCFT_ASSERT(result.witness_faults() == result.distance,
                "masking_distance: witness fault count != distance");
    return result;
}

MaskingDistanceResult masking_distance(const Program& p, const FaultClass& f,
                                       const ProblemSpec& spec,
                                       const Predicate& invariant) {
    // Materialize the invariant exactly as check_tolerance does, so the
    // p [] F graph key matches and a preceding verify grid makes this a
    // pure cache hit.
    auto inv_states = std::make_shared<StateSet>(
        materialize_parallel(p.space(), invariant));
    const Predicate inv = predicate_of(inv_states, invariant.name());
    const auto ts = ExplorationCache::global().get_or_build(p, &f, inv);
    return masking_distance_on(*ts, spec.safety());
}

}  // namespace dcft
