#include "verify/reference.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"

namespace dcft::reference {

// ---------------------------------------------------------------------------
// RefTransitionSystem: the seed's FIFO exploration, verbatim in structure.
// ---------------------------------------------------------------------------

RefTransitionSystem::RefTransitionSystem(const Program& program,
                                         const FaultClass* faults,
                                         const Predicate& init)
    : space_(program.space_ptr()), program_(program) {
    // Seed with every state satisfying init (exhaustive per-state scan).
    std::deque<NodeId> frontier;
    const StateIndex n_states = space_->num_states();
    for (StateIndex s = 0; s < n_states; ++s) {
        if (!init.eval(*space_, s)) continue;
        const NodeId id = static_cast<NodeId>(states_.size());
        states_.push_back(s);
        node_of_.emplace(s, id);
        initial_.push_back(id);
        parent_.push_back(id);  // roots are their own parent
        frontier.push_back(id);
    }
    prog_edges_.resize(states_.size());
    fault_edges_.resize(states_.size());

    std::vector<StateIndex> succ;
    NodeId current = 0;
    auto intern = [&](StateIndex t) -> NodeId {
        auto [it, inserted] =
            node_of_.emplace(t, static_cast<NodeId>(states_.size()));
        if (inserted) {
            states_.push_back(t);
            prog_edges_.emplace_back();
            fault_edges_.emplace_back();
            parent_.push_back(current);
            frontier.push_back(it->second);
        }
        return it->second;
    };

    while (!frontier.empty()) {
        const NodeId n = frontier.front();
        frontier.pop_front();
        current = n;
        const StateIndex s = states_[n];
        for (std::uint32_t a = 0; a < program_.num_actions(); ++a) {
            succ.clear();
            program_.action(a).successors(*space_, s, succ);
            for (StateIndex t : succ) {
                const NodeId to = intern(t);
                prog_edges_[n].push_back(RefEdge{a, to});
            }
        }
        if (faults != nullptr) {
            std::uint32_t a = 0;
            for (const auto& fac : faults->actions()) {
                succ.clear();
                fac.successors(*space_, s, succ);
                for (StateIndex t : succ) {
                    const NodeId to = intern(t);
                    fault_edges_[n].push_back(RefEdge{a, to});
                }
                ++a;
            }
        }
    }
}

std::size_t RefTransitionSystem::num_program_edges() const {
    std::size_t total = 0;
    for (const auto& edges : prog_edges_) total += edges.size();
    return total;
}

bool RefTransitionSystem::enabled(NodeId n, std::uint32_t a) const {
    DCFT_EXPECTS(a < program_.num_actions(), "action index out of range");
    return program_.action(a).enabled(*space_, states_[n]);
}

const std::vector<std::vector<NodeId>>& RefTransitionSystem::predecessors(
    bool include_faults) const {
    auto& cache = include_faults ? preds_all_ : preds_prog_;
    if (!cache.has_value()) {
        cache.emplace(states_.size());
        for (NodeId n = 0; n < states_.size(); ++n) {
            for (const RefEdge& e : prog_edges_[n]) (*cache)[e.to].push_back(n);
            if (include_faults)
                for (const RefEdge& e : fault_edges_[n])
                    (*cache)[e.to].push_back(n);
        }
    }
    return *cache;
}

std::vector<StateIndex> RefTransitionSystem::witness_path(NodeId n) const {
    DCFT_EXPECTS(n < states_.size(), "witness_path: node out of range");
    std::vector<StateIndex> path;
    NodeId cur = n;
    for (;;) {
        path.push_back(states_[cur]);
        if (parent_[cur] == cur) break;
        cur = parent_[cur];
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::string RefTransitionSystem::format_witness(NodeId n) const {
    constexpr std::size_t kMaxShown = 6;
    const std::vector<StateIndex> path = witness_path(n);
    std::string out;
    const std::size_t start =
        path.size() > kMaxShown ? path.size() - kMaxShown : 0;
    if (start > 0) out += "... -> ";
    for (std::size_t i = start; i < path.size(); ++i) {
        if (i > start) out += " -> ";
        out += space_->format(path[i]);
    }
    return out;
}

// ---------------------------------------------------------------------------
// Seed closure / preservation / reachability.
// ---------------------------------------------------------------------------

namespace {

CheckResult ref_check_preserved_by(const StateSpace& space,
                                   std::span<const Action> actions,
                                   const Predicate& s, const char* what) {
    std::vector<StateIndex> succ;
    for (StateIndex st = 0; st < space.num_states(); ++st) {
        if (!s.eval(space, st)) continue;
        for (const auto& ac : actions) {
            succ.clear();
            ac.successors(space, st, succ);
            for (StateIndex t : succ) {
                if (!s.eval(space, t)) {
                    return CheckResult::failure(
                        std::string(what) + ": predicate " + s.name() +
                        " not preserved by action '" + ac.name() +
                        "' from " + space.format(st) + " to " +
                        space.format(t));
                }
            }
        }
    }
    return CheckResult::success();
}

}  // namespace

CheckResult ref_check_closed(const Program& p, const Predicate& s) {
    return ref_check_preserved_by(p.space(), p.actions(), s,
                                  ("closed in " + p.name()).c_str());
}

CheckResult ref_check_preserved(const FaultClass& f, const Predicate& s) {
    return ref_check_preserved_by(f.space(), f.actions(), s,
                                  ("preserved by " + f.name()).c_str());
}

StateSet ref_reachable_states(const Program& p, const FaultClass* f,
                              const Predicate& from) {
    const StateSpace& space = p.space();
    StateSet seen(space.num_states());
    std::deque<StateIndex> frontier;
    for (StateIndex s = 0; s < space.num_states(); ++s) {
        if (from.eval(space, s) && seen.insert(s)) frontier.push_back(s);
    }
    std::vector<StateIndex> succ;
    while (!frontier.empty()) {
        const StateIndex s = frontier.front();
        frontier.pop_front();
        succ.clear();
        p.successors(s, succ);
        if (f != nullptr) f->successors(s, succ);
        for (StateIndex t : succ)
            if (seen.insert(t)) frontier.push_back(t);
    }
    return seen;
}

// ---------------------------------------------------------------------------
// Seed fairness (leads-to) over the vector-of-vectors graph.
// ---------------------------------------------------------------------------

namespace {

struct SccResult {
    std::vector<std::uint32_t> comp;
    std::uint32_t num_comps = 0;
};

constexpr std::uint32_t kNoComp = ~std::uint32_t{0};

SccResult ref_tarjan_scc(const RefTransitionSystem& ts,
                         const std::vector<char>& in_h) {
    const std::size_t n = ts.num_nodes();
    SccResult result;
    result.comp.assign(n, kNoComp);

    std::vector<std::uint32_t> index(n, kNoComp), low(n, 0);
    std::vector<char> on_stack(n, 0);
    std::vector<NodeId> stack;
    std::uint32_t next_index = 0;

    struct Frame {
        NodeId node;
        std::size_t edge;
    };
    std::vector<Frame> call;

    for (NodeId root = 0; root < n; ++root) {
        if (!in_h[root] || index[root] != kNoComp) continue;
        call.push_back(Frame{root, 0});
        index[root] = low[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = 1;
        while (!call.empty()) {
            Frame& f = call.back();
            const auto& edges = ts.program_edges(f.node);
            bool descended = false;
            while (f.edge < edges.size()) {
                const NodeId w = edges[f.edge].to;
                ++f.edge;
                if (!in_h[w]) continue;
                if (index[w] == kNoComp) {
                    call.push_back(Frame{w, 0});
                    index[w] = low[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = 1;
                    descended = true;
                    break;
                }
                if (on_stack[w]) low[f.node] = std::min(low[f.node], index[w]);
            }
            if (descended) continue;
            const NodeId v = f.node;
            call.pop_back();
            if (!call.empty())
                low[call.back().node] = std::min(low[call.back().node], low[v]);
            if (low[v] == index[v]) {
                const std::uint32_t c = result.num_comps++;
                for (;;) {
                    const NodeId w = stack.back();
                    stack.pop_back();
                    on_stack[w] = 0;
                    result.comp[w] = c;
                    if (w == v) break;
                }
            }
        }
    }
    return result;
}

std::vector<char> ref_eval_on_nodes(const RefTransitionSystem& ts,
                                    const Predicate& p) {
    std::vector<char> out(ts.num_nodes());
    for (NodeId n = 0; n < ts.num_nodes(); ++n)
        out[n] = p.eval(ts.space(), ts.state_of(n)) ? 1 : 0;
    return out;
}

std::vector<char> ref_fair_avoidance_set(const RefTransitionSystem& ts,
                                         const std::vector<char>& target) {
    const std::size_t n = ts.num_nodes();
    std::vector<char> in_h(n);
    for (std::size_t i = 0; i < n; ++i) in_h[i] = target[i] ? 0 : 1;

    std::vector<char> avoid(n, 0);
    std::deque<NodeId> frontier;

    for (NodeId v = 0; v < n; ++v) {
        if (in_h[v] && ts.terminal(v)) {
            avoid[v] = 1;
            frontier.push_back(v);
        }
    }

    const SccResult scc = ref_tarjan_scc(ts, in_h);
    if (scc.num_comps > 0) {
        std::vector<std::vector<NodeId>> members(scc.num_comps);
        for (NodeId v = 0; v < n; ++v)
            if (scc.comp[v] != kNoComp) members[scc.comp[v]].push_back(v);

        const std::size_t num_actions = ts.program().num_actions();
        std::vector<char> has_internal(num_actions);
        for (std::uint32_t c = 0; c < scc.num_comps; ++c) {
            const auto& nodes = members[c];
            std::fill(has_internal.begin(), has_internal.end(), 0);
            bool any_internal = false;
            for (NodeId v : nodes) {
                for (const auto& e : ts.program_edges(v)) {
                    if (in_h[e.to] && scc.comp[e.to] == c) {
                        has_internal[e.action] = 1;
                        any_internal = true;
                    }
                }
            }
            if (!any_internal) continue;
            bool feasible = true;
            for (std::uint32_t a = 0; a < num_actions && feasible; ++a) {
                if (has_internal[a]) continue;
                bool enabled_everywhere = true;
                for (NodeId v : nodes) {
                    if (!ts.enabled(v, a)) {
                        enabled_everywhere = false;
                        break;
                    }
                }
                if (enabled_everywhere) feasible = false;
            }
            if (feasible) {
                for (NodeId v : nodes) {
                    if (!avoid[v]) {
                        avoid[v] = 1;
                        frontier.push_back(v);
                    }
                }
            }
        }
    }

    const auto& preds = ts.predecessors(/*include_faults=*/false);
    while (!frontier.empty()) {
        const NodeId v = frontier.front();
        frontier.pop_front();
        for (NodeId u : preds[v]) {
            if (in_h[u] && !avoid[u]) {
                avoid[u] = 1;
                frontier.push_back(u);
            }
        }
    }
    return avoid;
}

}  // namespace

CheckResult ref_check_leads_to(const RefTransitionSystem& ts,
                               const Predicate& p, const Predicate& q,
                               bool include_fault_edges) {
    const std::vector<char> target = ref_eval_on_nodes(ts, q);
    std::vector<char> bad = ref_fair_avoidance_set(ts, target);

    if (include_fault_edges) {
        const auto& preds = ts.predecessors(/*include_faults=*/true);
        std::deque<NodeId> frontier;
        for (NodeId v = 0; v < ts.num_nodes(); ++v)
            if (bad[v]) frontier.push_back(v);
        while (!frontier.empty()) {
            const NodeId v = frontier.front();
            frontier.pop_front();
            for (NodeId u : preds[v]) {
                if (!target[u] && !bad[u]) {
                    bad[u] = 1;
                    frontier.push_back(u);
                }
            }
        }
    }

    for (NodeId v = 0; v < ts.num_nodes(); ++v) {
        if (!target[v] && bad[v] && p.eval(ts.space(), ts.state_of(v))) {
            return CheckResult::failure(
                "leads-to violated: " + p.name() + " ~~> " + q.name() +
                " fails from state " + ts.space().format(ts.state_of(v)) +
                (ts.terminal(v) ? " (maximal/terminal state)"
                                : " (fair computation avoids target)") +
                "; reached via: " + ts.format_witness(v));
        }
    }
    return CheckResult::success();
}

CheckResult ref_check_reaches(const RefTransitionSystem& ts,
                              const Predicate& target,
                              bool include_fault_edges) {
    return ref_check_leads_to(ts, Predicate::top(), target,
                              include_fault_edges);
}

// ---------------------------------------------------------------------------
// Seed refinement + tolerance pipeline.
// ---------------------------------------------------------------------------

namespace {

CheckResult ref_check_safety_on(const RefTransitionSystem& ts,
                                const SafetySpec& spec,
                                bool include_fault_edges) {
    const StateSpace& space = ts.space();
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        const StateIndex s = ts.state_of(n);
        if (!spec.state_allowed(space, s)) {
            return CheckResult::failure(
                "safety violated: state " + space.format(s) +
                " is excluded by " + spec.name() + "; witness: " +
                ts.format_witness(n));
        }
        for (const auto& e : ts.program_edges(n)) {
            const StateIndex t = ts.state_of(e.to);
            if (!spec.transition_allowed(space, s, t)) {
                return CheckResult::failure(
                    "safety violated: transition " + space.format(s) + " -> " +
                    space.format(t) + " (action '" +
                    ts.program().action(e.action).name() +
                    "') is excluded by " + spec.name() + "; witness: " +
                    ts.format_witness(n));
            }
        }
        if (include_fault_edges) {
            for (const auto& e : ts.fault_edges(n)) {
                const StateIndex t = ts.state_of(e.to);
                if (!spec.transition_allowed(space, s, t)) {
                    return CheckResult::failure(
                        "safety violated by fault step: " + space.format(s) +
                        " -> " + space.format(t) + " is excluded by " +
                        spec.name());
                }
            }
        }
    }
    return CheckResult::success();
}

CheckResult ref_refines_weakened(const Program& p, const FaultClass* f,
                                 const ProblemSpec& spec, Tolerance grade,
                                 const Predicate& from, const Predicate& via) {
    switch (grade) {
        case Tolerance::Masking:
            return ref_refines_spec(p, spec, from, f);
        case Tolerance::FailSafe:
            return ref_refines_spec(p, spec.failsafe_weakening(), from, f);
        case Tolerance::Nonmasking: {
            if (CheckResult r = ref_converges(p, f, from, via); !r)
                return CheckResult::failure(
                    "nonmasking: computations do not converge to " +
                    via.name() + ": " + r.reason);
            return ref_refines_spec(p, spec, via, nullptr);
        }
    }
    return CheckResult::failure("unknown tolerance grade");
}

}  // namespace

CheckResult ref_refines_spec(const Program& p, const ProblemSpec& spec,
                             const Predicate& from, const FaultClass* faults) {
    if (CheckResult r = ref_check_closed(p, from); !r) return r;
    if (faults != nullptr) {
        if (CheckResult r = ref_check_preserved(*faults, from); !r) return r;
    }
    const RefTransitionSystem ts(p, faults, from);
    const bool with_faults = faults != nullptr;
    if (CheckResult r = ref_check_safety_on(ts, spec.safety(), with_faults);
        !r)
        return r;
    for (const auto& ob : spec.liveness().obligations()) {
        if (CheckResult r = ref_check_leads_to(ts, ob.from, ob.to,
                                               with_faults);
            !r)
            return r;
    }
    return CheckResult::success();
}

CheckResult ref_converges(const Program& p, const FaultClass* f,
                          const Predicate& from, const Predicate& to) {
    const RefTransitionSystem ts(p, f, from);
    return ref_check_reaches(ts, to, f != nullptr);
}

ToleranceReport ref_check_tolerance(const Program& p, const FaultClass& f,
                                    const ProblemSpec& spec,
                                    const Predicate& invariant,
                                    Tolerance grade) {
    const StateSpace& space = p.space();
    ToleranceReport report;

    // Seed count_satisfying: one std::function call per state.
    StateIndex inv_size = 0;
    for (StateIndex s = 0; s < space.num_states(); ++s)
        if (invariant.eval(space, s)) ++inv_size;
    report.invariant_size = inv_size;

    report.in_absence = ref_refines_spec(p, spec, invariant);

    // Seed fault span: separate reachability sweep; the span predicate is a
    // closure probing the set (one function call per membership question).
    auto span_states = std::make_shared<StateSet>(
        ref_reachable_states(p, &f, invariant));
    report.span_size = span_states->count();
    Predicate span_pred(
        "span(" + p.name() + "," + f.name() + "," + invariant.name() + ")",
        [set = span_states](const StateSpace&, StateIndex s) {
            return set->contains(s);
        });
    report.fault_span = span_pred;

    report.in_presence = ref_refines_weakened(p, &f, spec, grade, span_pred,
                                              invariant);
    return report;
}

}  // namespace dcft::reference
