// Arena-backed storage for exploration-sized arrays, with an optional
// out-of-core spill mode.
//
// A TransitionSystem's dominant allocations — the CSR edge/offset arrays
// and the node->state / BFS-parent arrays — are written once, in strictly
// ascending position, and read back only by much later passes (witnesses,
// predecessor CSRs, state_bits). SpillVector<T> keeps the familiar
// contiguous-vector interface but always places the bytes in an mmap'd
// arena grown with mremap(MREMAP_MAYMOVE), in one of two modes chosen
// before first use:
//
//   * RAM mode (default): a private anonymous mapping advised
//     MADV_HUGEPAGE. Fresh pages arrive zero-filled from the kernel, so
//     resize() over never-touched tail regions costs nothing — the
//     vector tracks its high-water mark and only re-zeroes bytes that
//     were actually written before (the std::vector idiom would memset
//     the ~35 MB edge array of a 10^6-state build just for the sweep to
//     overwrite every byte immediately after).
//   * Spill mode (enable_spill() while empty): an *unlinked* temporary
//     file mapped MAP_SHARED. Once a prefix of the array is sealed (its
//     BFS level fully merged), release_prefix() drops those pages from
//     the process with madvise(MADV_DONTNEED) — for a shared file
//     mapping this is purely an RSS hint: dirty pages migrate to the
//     page cache (and eventually disk), and any later read faults them
//     back unchanged. Peak resident memory therefore tracks the *active*
//     frontier window instead of the whole graph, which is what lets
//     `--huge` explorations exceed the in-core ceiling (see DESIGN.md §7).
//
// Growth keeps the data contiguous (the CSR span accessors keep working
// untouched) at the cost of data() being invalidated by push_back/resize,
// the same contract std::vector has. Reads of released pages are always
// legal; nothing is ever lost. release_prefix()/prefetch() are no-ops in
// RAM mode (MADV_DONTNEED would *discard* anonymous pages), so callers
// need no branches of their own.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

namespace dcft {

/// True iff DCFT_SPILL is set truthy: explorations default to out-of-core
/// storage (ExploreOptions::spill forces it programmatically).
bool spill_enabled();

/// One mmap arena: a private anonymous mapping (RAM mode) or an unlinked
/// temp file mapped MAP_SHARED (spill mode; DCFT_SPILL_DIR, else TMPDIR,
/// else /tmp). Byte-oriented; SpillVector layers the element interface on
/// top. Non-copyable, non-movable once mapped.
class SpillFile {
public:
    explicit SpillFile(bool file_backed) : file_backed_(file_backed) {}
    ~SpillFile();
    SpillFile(const SpillFile&) = delete;
    SpillFile& operator=(const SpillFile&) = delete;

    /// Opens (creating/truncating) a *named* file-backed arena at `path`.
    /// Unlike the anonymous spill mode the file survives the mapping —
    /// this is how verify/graph_store.cpp materializes `dcft.graph`
    /// snapshots before atomically renaming them into the store
    /// directory. Throws std::runtime_error when the file cannot be
    /// created.
    static std::unique_ptr<SpillFile> create_named(const std::string& path);

    /// Adopts a page-aligned region [offset, offset+bytes) of an existing
    /// file as a fixed-capacity arena, mapped MAP_PRIVATE with
    /// PROT_READ|PROT_WRITE: reads are zero-copy from the page cache and
    /// any (unexpected) write faults a private copy instead of corrupting
    /// the store. Adopted arenas can never grow() and are never pooled.
    /// `offset` must be page-aligned. The caller may close `fd` after the
    /// call (the mapping keeps the file referenced).
    static std::unique_ptr<SpillFile> adopt_region(int fd, std::size_t offset,
                                                   std::size_t bytes);

    /// Checks out a RAM arena from the process-wide pool (or a fresh one
    /// when the pool is empty). Pooled arenas keep their pages faulted in
    /// across explorations — first-touch faults cost ~10x a warm store on
    /// this class of machine, so reuse is the difference between paying
    /// the page-fault tax once per process and once per build. Best-fit
    /// on `bytes_hint` (smallest arena that already covers it, else the
    /// largest available) so a small consumer never starves the edge
    /// arrays of their big arena. A recycled arena's contents are
    /// arbitrary: the caller must treat its whole extent as dirty
    /// (capacity() > 0 signals this).
    static std::unique_ptr<SpillFile> acquire_ram(std::size_t bytes_hint);
    /// Returns a RAM arena to the pool (bounded; overflow just frees).
    /// File-backed arenas are never pooled — pass only RAM ones.
    static void recycle(std::unique_ptr<SpillFile> f);

    /// Ensures capacity() >= bytes (rounded up to a page multiple) and
    /// returns the — possibly relocated — mapping base. Throws
    /// std::runtime_error when the arena cannot be created or mapped.
    void* grow(std::size_t bytes);

    bool file_backed() const { return file_backed_; }
    bool adopted() const { return adopted_; }

    /// RSS hint (spill mode only): drops the process mapping of
    /// [0, bytes) page-aligned down, after any prior watermark. Data is
    /// preserved (page cache / disk); later reads fault it back. Returns
    /// the bytes newly advised.
    std::size_t release_prefix(std::size_t bytes);

    /// Readahead hint over [begin, end) for an upcoming sequential pass
    /// (spill mode only).
    void prefetch(std::size_t begin, std::size_t end) const;

    void* base() const { return base_; }
    std::size_t capacity() const { return cap_; }
    std::uint64_t released_bytes() const { return released_total_; }

private:
    bool file_backed_ = false;
    bool adopted_ = false;  ///< fixed-capacity mapping of a store file
    int fd_ = -1;
    void* base_ = nullptr;
    std::size_t cap_ = 0;            ///< mapped/ftruncated bytes
    std::size_t released_mark_ = 0;  ///< page-aligned watermark already advised
    std::uint64_t released_total_ = 0;
};

/// Contiguous dynamic array over a SpillFile arena (see file comment).
/// Only the std::vector surface the exploration needs is provided. The
/// element type must be trivially copyable *and* treat all-zero bytes as
/// its value-initialized state — that equivalence is what lets resize()
/// skip zero-fill over kernel-fresh pages.
template <typename T>
class SpillVector {
    static_assert(std::is_trivially_copyable_v<T>,
                  "SpillVector requires trivially copyable elements");

public:
    SpillVector() = default;
    ~SpillVector() { release_arena(); }
    SpillVector(SpillVector&& o) noexcept { *this = std::move(o); }
    SpillVector& operator=(SpillVector&& o) noexcept {
        if (this == &o) return *this;
        release_arena();
        file_ = std::move(o.file_);
        file_backed_ = o.file_backed_;
        base_ = o.base_;
        size_ = o.size_;
        cap_ = o.cap_;
        touched_ = o.touched_;
        o.base_ = nullptr;
        o.size_ = o.cap_ = o.touched_ = 0;
        return *this;
    }
    SpillVector(const SpillVector&) = delete;
    SpillVector& operator=(const SpillVector&) = delete;

    /// Switches storage to a spill file. Valid only while empty (the
    /// exploration decides the mode before writing anything).
    void enable_spill() {
        if (file_ != nullptr || size_ != 0) return;
        file_backed_ = true;
    }
    bool spilled() const { return file_backed_; }

    /// Replaces this vector's storage with an adopted arena
    /// (SpillFile::adopt_region) holding exactly `n_elems` elements. The
    /// vector becomes fixed-size: it must never grow past the arena's
    /// capacity afterwards (graph snapshots are immutable once loaded).
    void adopt(std::unique_ptr<SpillFile> arena, std::size_t n_elems) {
        release_arena();
        file_ = std::move(arena);
        file_backed_ = false;  // spill accounting tracks build arenas only
        base_ = static_cast<T*>(file_->base());
        size_ = n_elems;
        cap_ = file_->capacity() / sizeof(T);
        touched_ = cap_;  // arena bytes are meaningful, never kernel-fresh
    }
    bool adopted() const { return file_ != nullptr && file_->adopted(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return cap_; }

    T* data() { return base_; }
    const T* data() const { return base_; }
    T& operator[](std::size_t i) { return base_[i]; }
    const T& operator[](std::size_t i) const { return base_[i]; }
    T& back() { return base_[size_ - 1]; }
    const T* begin() const { return base_; }
    const T* end() const { return base_ + size_; }

    void reserve(std::size_t n) {
        if (n > cap_) remap(n);
    }

    void push_back(const T& v) {
        if (size_ == cap_) remap(size_ + 1);
        base_[size_++] = v;
        touched_ = std::max(touched_, size_);
    }

    void resize(std::size_t n) {
        if (n > cap_) remap(n);
        // Zero only the previously written tail; pages past the
        // high-water mark are kernel-fresh zeros already.
        const std::size_t rezero = std::min(n, touched_);
        if (rezero > size_)
            std::memset(base_ + size_, 0, (rezero - size_) * sizeof(T));
        size_ = n;
        touched_ = std::max(touched_, n);
    }
    void resize(std::size_t n, const T& fill) {
        if (is_zero(fill)) {
            resize(n);
            return;
        }
        if (n > cap_) remap(n);
        if (n > size_) std::fill(base_ + size_, base_ + n, fill);
        size_ = n;
        touched_ = std::max(touched_, n);
    }
    /// Grows to n elements *without initializing* [size(), n). Only for
    /// callers that overwrite every new element before any read — the
    /// identity sweep, whose CSR slices are exactly pre-counted.
    void resize_overwrite(std::size_t n) {
        if (n > cap_) remap(n);
        size_ = n;
        touched_ = std::max(touched_, n);
    }
    void assign(std::size_t n, const T& fill) {
        size_ = 0;
        resize(n, fill);
    }

    /// RSS hint: the first n elements are sealed — advise their pages out
    /// of the process (spill mode only; no-op in RAM mode). Safe at any
    /// time; later reads transparently fault the data back.
    void release_prefix(std::size_t n) {
        if (file_ && file_backed_) file_->release_prefix(n * sizeof(T));
    }

    /// Readahead for an upcoming sequential scan over the whole array.
    void prefetch() const {
        if (file_ && file_backed_) file_->prefetch(0, size_ * sizeof(T));
    }

    /// Bytes currently stored in the spill file (0 in RAM mode).
    std::uint64_t spill_bytes() const {
        return file_backed_ ? static_cast<std::uint64_t>(size_) * sizeof(T)
                            : 0;
    }
    /// Bytes of this vector advised out of RSS so far (0 in RAM mode).
    std::uint64_t spill_released_bytes() const {
        return file_ && file_backed_ ? file_->released_bytes() : 0;
    }

private:
    static bool is_zero(const T& v) {
        T z{};
        return std::memcmp(&v, &z, sizeof(T)) == 0;
    }

    void remap(std::size_t n_elems) {
        // Doubling growth so push_back stays amortized O(1).
        n_elems = std::max(n_elems, cap_ * 2);
        bool recycled = false;
        if (file_ == nullptr) {
            if (file_backed_) {
                file_ = std::make_unique<SpillFile>(true);
            } else {
                file_ = SpillFile::acquire_ram(n_elems * sizeof(T));
                recycled = file_->capacity() != 0;
            }
        }
        base_ = static_cast<T*>(file_->grow(n_elems * sizeof(T)));
        cap_ = file_->capacity() / sizeof(T);
        // A pooled arena carries arbitrary bytes from its previous life:
        // its whole extent counts as written, so zeroing resizes re-zero
        // explicitly (warm stores — still far cheaper than faulting).
        if (recycled) touched_ = cap_;
    }

    void release_arena() {
        if (file_ != nullptr && !file_backed_)
            SpillFile::recycle(std::move(file_));
        file_.reset();
        base_ = nullptr;
        size_ = cap_ = touched_ = 0;
    }

    std::unique_ptr<SpillFile> file_;  ///< arena (lazily created)
    bool file_backed_ = false;
    T* base_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
    std::size_t touched_ = 0;  ///< high-water mark of written elements
};

}  // namespace dcft
