// Fault spans (Section 2.3): T is an F-span of p from S iff S => T, T is
// closed in p, and every action of F preserves T. The *canonical* F-span —
// the smallest one — is the set of states reachable from S under p [] F;
// tolerance checking uses it because a program tolerant from the smallest
// span is tolerant from every span the designer might have had in mind
// whose reachable part coincides.
#pragma once

#include <memory>

#include "gc/program.hpp"
#include "verify/check_result.hpp"
#include "verify/state_set.hpp"

namespace dcft {

/// The canonical (smallest) F-span of p from `invariant`.
struct FaultSpan {
    std::shared_ptr<const StateSet> states;
    Predicate predicate;  ///< membership predicate, named "span(...)"
};

FaultSpan compute_fault_span(const Program& p, const FaultClass& f,
                             const Predicate& invariant);

/// Checks the definition directly: S => T, T closed in p, F preserves T.
CheckResult check_is_fault_span(const Program& p, const FaultClass& f,
                                const Predicate& invariant,
                                const Predicate& span);

}  // namespace dcft
