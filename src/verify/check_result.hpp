// Verdict type returned by every checker in src/verify/.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace dcft {

/// One step of a structured witness trace. The first step of a trace is a
/// root (empty action, state only); each later step records the acting
/// action's name (provenance) and whether it was a fault action. Traces
/// are replayable: consecutive states are connected by the named action.
struct WitnessStep {
    std::uint64_t state = 0;   ///< packed StateIndex
    std::string state_repr;    ///< StateSpace::format of `state`
    std::string action;        ///< acting action name; "" at the root
    bool fault = false;        ///< the step was a fault action

    friend bool operator==(const WitnessStep&, const WitnessStep&) = default;
};

/// Outcome of a verification query. On failure, `reason` names the violated
/// condition and, where available, a witness state or transition; `witness`
/// carries the same counterexample as a structured, replayable trace (for
/// run-report export — see obs/run_report.hpp).
struct CheckResult {
    bool ok = true;
    std::string reason;
    /// Structured counterexample trace (empty on success, and for checkers
    /// that predate trace export). Ends at the violating state/transition.
    std::vector<WitnessStep> witness;

    explicit operator bool() const { return ok; }

    static CheckResult success() { return CheckResult{}; }
    static CheckResult failure(std::string reason) {
        return CheckResult{false, std::move(reason), {}};
    }
    static CheckResult failure(std::string reason,
                               std::vector<WitnessStep> witness) {
        return CheckResult{false, std::move(reason), std::move(witness)};
    }

    /// First failure wins; success otherwise.
    static CheckResult all(std::initializer_list<CheckResult> results) {
        for (const auto& r : results)
            if (!r.ok) return r;
        return success();
    }
};

}  // namespace dcft
