// Verdict type returned by every checker in src/verify/.
#pragma once

#include <string>

namespace dcft {

/// Outcome of a verification query. On failure, `reason` names the violated
/// condition and, where available, a witness state or transition.
struct CheckResult {
    bool ok = true;
    std::string reason;

    explicit operator bool() const { return ok; }

    static CheckResult success() { return CheckResult{}; }
    static CheckResult failure(std::string reason) {
        return CheckResult{false, std::move(reason)};
    }

    /// First failure wins; success otherwise.
    static CheckResult all(std::initializer_list<CheckResult> results) {
        for (const auto& r : results)
            if (!r.ok) return r;
        return success();
    }
};

}  // namespace dcft
