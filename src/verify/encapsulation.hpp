// The *encapsulates* relation (Section 2.1): p' encapsulates p iff every
// action of p' that updates variables of p has the shape
// g /\ g' --> st || st' where g --> st is an action of p and st' does not
// update variables of p (st' may read the pre-state of st's variables).
//
// dcft checks this semantically over the full state space, guided by the
// provenance recorded on actions (Action::restricted / ::encapsulated):
// for each action of p' that can change a variable of p, its provenance
// chain must reach an action of p, its guard must imply the base guard,
// and its effect projected on p's variables must coincide with the base
// action's effect.
#pragma once

#include "gc/program.hpp"
#include "verify/check_result.hpp"

namespace dcft {

/// Checks that p_prime encapsulates p.
CheckResult check_encapsulates(const Program& p_prime, const Program& p);

}  // namespace dcft
