#include "verify/refinement.hpp"

#include "common/bitvec.hpp"
#include "obs/telemetry.hpp"
#include "verify/action_kernel.hpp"
#include "verify/closure.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/fairness.hpp"

namespace dcft {
namespace {

/// witness_trace(n) extended by one final step (the violating transition
/// itself, which need not be a BFS tree edge).
std::vector<WitnessStep> trace_plus_step(const TransitionSystem& ts,
                                         NodeId from, StateIndex to,
                                         std::string action, bool fault) {
    std::vector<WitnessStep> trace = ts.witness_trace(from);
    WitnessStep step;
    step.state = to;
    step.state_repr = ts.space().format(to);
    step.action = std::move(action);
    step.fault = fault;
    trace.push_back(std::move(step));
    return trace;
}

/// Closure of `from` under the program (and preservation under the fault
/// class, if any), checked against the *recorded* edges of ts instead of a
/// fresh successor enumeration. Nodes are swept in id order; when ts was
/// explored from `from` the nodes satisfying it are exactly the roots, in
/// ascending state order — the same order check_closed visits, so the first
/// reported violation (and its message) is identical.
CheckResult check_closure_on(const TransitionSystem& ts,
                             const BitVec& from_bits, const Predicate& from,
                             const FaultClass* faults) {
    const obs::ScopedSpan span("verify/closure");
    obs::count("verify/obligations/closure");
    const StateSpace& space = ts.space();
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        const StateIndex s = ts.state_of(n);
        if (!from_bits.test(s)) continue;
        for (const auto& e : ts.program_edges(n)) {
            const StateIndex t = ts.state_of(e.to);
            if (!from_bits.test(t)) {
                const std::string action =
                    ts.program().action(e.action).name();
                return CheckResult::failure(
                    "closed in " + ts.program().name() + ": predicate " +
                        from.name() + " not preserved by action '" + action +
                        "' from " + space.format(s) + " to " +
                        space.format(t),
                    trace_plus_step(ts, n, t, action, /*fault=*/false));
            }
        }
    }
    if (faults != nullptr) {
        for (NodeId n = 0; n < ts.num_nodes(); ++n) {
            const StateIndex s = ts.state_of(n);
            if (!from_bits.test(s)) continue;
            for (const auto& e : ts.fault_edges(n)) {
                const StateIndex t = ts.state_of(e.to);
                if (!from_bits.test(t)) {
                    const std::string action =
                        faults->actions()[e.action].name();
                    return CheckResult::failure(
                        "preserved by " + faults->name() + ": predicate " +
                            from.name() + " not preserved by action '" +
                            action + "' from " + space.format(s) + " to " +
                            space.format(t),
                        trace_plus_step(ts, n, t, action, /*fault=*/true));
                }
            }
        }
    }
    return CheckResult::success();
}

CheckResult check_safety_on(const TransitionSystem& ts, const SafetySpec& spec,
                            bool include_fault_edges) {
    const obs::ScopedSpan span("verify/safety");
    obs::count("verify/obligations/safety");
    const StateSpace& space = ts.space();
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        const StateIndex s = ts.state_of(n);
        if (!spec.state_allowed(space, s)) {
            return CheckResult::failure(
                "safety violated: state " + space.format(s) +
                    " is excluded by " + spec.name() + "; witness: " +
                    ts.format_witness(n),
                ts.witness_trace(n));
        }
        for (const auto& e : ts.program_edges(n)) {
            const StateIndex t = ts.state_of(e.to);
            if (!spec.transition_allowed(space, s, t)) {
                const std::string action =
                    ts.program().action(e.action).name();
                return CheckResult::failure(
                    "safety violated: transition " + space.format(s) +
                        " -> " + space.format(t) + " (action '" + action +
                        "') is excluded by " + spec.name() + "; witness: " +
                        ts.format_witness(n),
                    trace_plus_step(ts, n, t, action, /*fault=*/false));
            }
        }
        if (include_fault_edges) {
            for (const auto& e : ts.fault_edges(n)) {
                const StateIndex t = ts.state_of(e.to);
                if (!spec.transition_allowed(space, s, t)) {
                    return CheckResult::failure(
                        "safety violated by fault step: " + space.format(s) +
                            " -> " + space.format(t) + " is excluded by " +
                            spec.name(),
                        trace_plus_step(ts, n, t,
                                        ts.fault_action_name(e.action),
                                        /*fault=*/true));
                }
            }
        }
    }
    return CheckResult::success();
}

/// The early-exit pipeline of refines_spec (see RefinesOptions): one
/// stop-predicate exploration decides closure + state-only safety at once.
/// Precondition: no liveness obligations, spec.safety().state_only().
CheckResult refines_spec_early_exit(const Program& p, const ProblemSpec& spec,
                                    const Predicate& from,
                                    const FaultClass* faults) {
    const obs::ScopedSpan span("verify/refines_spec");
    const Predicate bad = spec.safety().bad_states();
    const Predicate stop = bad || !from;
    const auto ts = ExplorationCache::global().get_or_build_early_exit(
        p, faults, from, stop);
    if (ts->complete()) {
        // Cache hit on the full graph, or the stop predicate never fired
        // (the query passes): the default scans give byte-identical
        // messages either way.
        return refines_spec_on(*ts, faults, spec, from);
    }
    // Fragment: bad_node() is the canonically least violating state.
    const NodeId b = ts->bad_node();
    const StateSpace& space = ts->space();
    const StateIndex t = ts->state_of(b);
    obs::count("verify/obligations/failed");
    if (!from.eval(space, t)) {
        // Closure escape: the BFS tree parent of b has a smaller node id
        // than every violating state, so it satisfies `from` — the tree
        // edge is exactly a from -> !from step.
        obs::count("verify/obligations/closure");
        std::vector<WitnessStep> trace = ts->witness_trace(b);
        const WitnessStep& last = trace.back();
        const WitnessStep& prev = trace[trace.size() - 2];
        const std::string what = last.fault
                                     ? ("preserved by " + faults->name())
                                     : ("closed in " + p.name());
        std::string reason = what + ": predicate " + from.name() +
                             " not preserved by action '" + last.action +
                             "' from " + prev.state_repr + " to " +
                             last.state_repr;
        return CheckResult::failure(std::move(reason), std::move(trace));
    }
    // Bad state inside `from`'s closure: the exact check_safety_on report.
    obs::count("verify/obligations/safety");
    return CheckResult::failure(
        "safety violated: state " + space.format(t) + " is excluded by " +
            spec.safety().name() + "; witness: " + ts->format_witness(b),
        ts->witness_trace(b));
}

}  // namespace

CheckResult refines_spec(const Program& p, const ProblemSpec& spec,
                         const Predicate& from, const RefinesOptions& opts) {
    if (opts.early_exit && spec.liveness().obligations().empty() &&
        spec.safety().state_only())
        return refines_spec_early_exit(p, spec, from, opts.faults);
    // One exploration serves the closure check *and* the safety/liveness
    // obligations: the recorded edges of the roots are exactly the successor
    // sets check_closed would enumerate. The exploration itself is shared
    // through the process-wide cache, so repeated queries over the same
    // (program, faults, init) triple replay recorded edges instead of
    // re-exploring.
    const auto ts =
        ExplorationCache::global().get_or_build(p, opts.faults, from);
    return refines_spec_on(*ts, opts.faults, spec, from);
}

CheckResult refines_spec_on(const TransitionSystem& ts,
                            const FaultClass* faults, const ProblemSpec& spec,
                            const Predicate& from) {
    const obs::ScopedSpan span("verify/refines_spec");
    const BitVec from_bits = eval_bits(ts.space(), from);
    if (CheckResult r = check_closure_on(ts, from_bits, from, faults); !r) {
        obs::count("verify/obligations/failed");
        return r;
    }
    const bool with_faults = faults != nullptr;
    if (CheckResult r = check_safety_on(ts, spec.safety(), with_faults); !r) {
        obs::count("verify/obligations/failed");
        return r;
    }
    for (const auto& ob : spec.liveness().obligations()) {
        if (CheckResult r = check_leads_to(ts, ob.from, ob.to, with_faults);
            !r) {
            obs::count("verify/obligations/failed");
            return r;
        }
    }
    return CheckResult::success();
}

CheckResult refines_program(const Program& p_prime, const Program& p,
                            const Predicate& from) {
    if (CheckResult r = check_closed(p_prime, from); !r) return r;

    const StateSpace& space = p_prime.space();
    const VarSet& pvars = p.vars();
    const auto ts_ptr =
        ExplorationCache::global().get_or_build(p_prime, nullptr, from);
    const TransitionSystem& ts = *ts_ptr;
    // Compile the base program's actions once: the matching loop below
    // enumerates their successors for every non-stuttering step of p'.
    std::unique_ptr<CompiledActionSet> base_compiled;
    if (!compile_disabled())
        base_compiled =
            std::make_unique<CompiledActionSet>(p.space_ptr(), p.actions());
    std::vector<StateIndex> base_succ;
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        const StateIndex s = ts.state_of(n);
        const StateIndex sp = space.project(s, pvars);
        for (const auto& e : ts.program_edges(n)) {
            const StateIndex t = ts.state_of(e.to);
            const StateIndex tp = space.project(t, pvars);
            if (tp == sp) continue;  // stutter on p's variables
            bool matched = false;
            for (std::size_t ai = 0; ai < p.actions().size(); ++ai) {
                base_succ.clear();
                if (base_compiled != nullptr) {
                    const CompiledAction& ka = (*base_compiled)[ai];
                    if (ka.enabled(s)) ka.successors(s, base_succ);
                } else {
                    p.actions()[ai].successors(space, s, base_succ);
                }
                for (StateIndex u : base_succ) {
                    if (space.project(u, pvars) == tp) {
                        matched = true;
                        break;
                    }
                }
                if (matched) break;
            }
            if (!matched) {
                return CheckResult::failure(
                    "refinement violated: step " + space.format(s) + " -> " +
                    space.format(t) + " of " + p_prime.name() + " (action '" +
                    ts.program().action(e.action).name() +
                    "') does not project onto a step of " + p.name());
            }
        }
    }
    return CheckResult::success();
}

CheckResult converges(const Program& p, const FaultClass* f,
                      const Predicate& from, const Predicate& to) {
    const auto ts = ExplorationCache::global().get_or_build(p, f, from);
    return check_reaches(*ts, to, f != nullptr);
}

CheckResult refines_weakened(const Program& p, const FaultClass* f,
                             const ProblemSpec& spec, Tolerance grade,
                             const Predicate& from, const Predicate& via) {
    switch (grade) {
        case Tolerance::Masking:
            return refines_spec(p, spec, from, RefinesOptions{f});
        case Tolerance::FailSafe:
            return refines_spec(p, spec.failsafe_weakening(), from,
                                RefinesOptions{f});
        case Tolerance::Nonmasking: {
            if (CheckResult r = converges(p, f, from, via); !r)
                return CheckResult::failure(
                    "nonmasking: computations do not converge to " +
                        via.name() + ": " + r.reason,
                    std::move(r.witness));
            return refines_spec(p, spec, via, RefinesOptions{});
        }
    }
    return CheckResult::failure("unknown tolerance grade");
}

}  // namespace dcft
