// Wire protocol of the dcftd query daemon (src/service/, DESIGN.md §10).
//
// Transport: a unix-domain stream socket carrying newline-delimited JSON —
// one request object per line from the client, one response object per
// line back. Both directions reuse the repo's JSON layer (obs/json.hpp),
// and every response is a `dcft.report` envelope (schema/schema_version/
// kind/tool/command/host) with kind "service", so the same reader that
// parses run reports and bench series parses daemon responses.
//
// Requests:
//   {"op":"ping"}
//   {"op":"list"}
//   {"op":"verify","system":"token-ring","size":8}
//   {"op":"verify","system":"token-ring","size":8,"graded":true}
//   {"op":"stats"}
//   {"op":"shutdown"}
// Optional members: "id" (opaque client tag, echoed back verbatim) and,
// for verify, "size" (0 = the system's default) and "graded" (attach the
// masking-distance + monte_carlo blocks to every query; defaults false).
// Unknown ops and malformed lines produce an error response ("ok": false,
// "error": reason) — the connection stays open; the daemon never
// disconnects on bad input.
//
// Responses always carry "op", "id", and "ok". Payloads:
//   ping      -> {}
//   list      -> "systems": [ {"name","states","variants":[...]}, ... ]
//   verify    -> "system", "size", "graded", "queries": [ run-report query
//                objects, with masking_distance/monte_carlo blocks when
//                graded ], "coalesced": bool (this response shared another
//                caller's execution)
//   stats     -> "scheduler": {"admitted","executed","coalesced"},
//                "telemetry": { ... } (the run-report telemetry section)
//   shutdown  -> {} (the daemon stops accepting and exits its run loop)
#pragma once

#include <optional>
#include <string>

#include "obs/json.hpp"

namespace dcft::service {

/// One parsed request line.
struct Request {
    std::string op;      ///< "ping" | "list" | "verify" | "stats" | "shutdown"
    std::string id;      ///< opaque client tag, echoed back ("" if absent)
    std::string system;  ///< verify only
    int size = 0;        ///< verify only; 0 = system default
    bool graded = false; ///< verify only; attach graded blocks
};

/// Parses one request line. On failure returns nullopt with a reason in
/// *error (when non-null); the caller answers with error_response.
std::optional<Request> parse_request(const std::string& line,
                                     std::string* error = nullptr);

/// Opens a single-line response envelope: the dcft.report members with
/// kind "service", plus "op"/"id"/"ok". The caller appends payload
/// members, calls end_object(), then finish_response_line.
void begin_response(obs::JsonWriter& w, const Request& request, bool ok);

/// Flattens a finished JsonWriter document to one newline-terminated line
/// (the writer pretty-prints; the protocol is line-delimited). Safe
/// because JSON string escaping keeps literal newlines out of the
/// document body.
std::string finish_response_line(const obs::JsonWriter& w);

/// Complete error response line for `request` (parse failures pass a
/// default-constructed Request carrying just the id, if one was salvaged).
std::string error_response(const Request& request, const std::string& reason);

}  // namespace dcft::service
