#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "apps/catalog.hpp"
#include "obs/run_report.hpp"
#include "service/protocol.hpp"

namespace dcft::service {
namespace {

/// Writes the whole buffer, riding out partial writes and EINTR.
/// MSG_NOSIGNAL turns a dead peer into an error instead of SIGPIPE.
bool send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
    scheduler_ = std::make_unique<QueryScheduler>(options_.workers);
}

Server::~Server() {
    shutdown();
    wait();
}

bool Server::start(std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socket_path.empty() ||
        options_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr)
            *error = "socket path empty or too long: '" +
                     options_.socket_path + "'";
        return false;
    }
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // A previous daemon instance may have left its socket file behind
    // (crash, SIGKILL); bind would fail on it. Probe-connect to tell a
    // stale file from a live daemon: connection refused / no listener
    // means the file is dead and safe to unlink; a successful connect
    // means another daemon is serving this path, and we must refuse
    // instead of silently stealing it from under its clients.
    if (::access(options_.socket_path.c_str(), F_OK) == 0) {
        const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (probe < 0) {
            if (error != nullptr)
                *error = std::string("socket: ") + std::strerror(errno);
            ::close(listen_fd_);
            listen_fd_ = -1;
            return false;
        }
        const bool alive =
            ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0;
        ::close(probe);
        if (alive) {
            if (error != nullptr)
                *error = "a daemon is already serving '" +
                         options_.socket_path +
                         "'; shut it down first or use another socket path";
            ::close(listen_fd_);
            listen_fd_ = -1;
            return false;
        }
        ::unlink(options_.socket_path.c_str());
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        if (error != nullptr)
            *error = "bind/listen on '" + options_.socket_path +
                     "': " + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    started_ = true;
    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
}

void Server::accept_loop() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // listener closed by wait() — we are done
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_requested_) {
            ::close(fd);
            continue;  // drain until the listener is actually closed
        }
        client_fds_.insert(fd);
        connections_.emplace_back([this, fd] { handle_connection(fd); });
    }
}

void Server::handle_connection(int fd) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;  // EOF or connection shut down
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t nl = buffer.find('\n', start);
             nl != std::string::npos; nl = buffer.find('\n', start)) {
            const std::string line = buffer.substr(start, nl - start);
            start = nl + 1;
            if (line.empty()) continue;
            if (!dispatch(fd, line)) {
                start = buffer.size();
                break;
            }
        }
        buffer.erase(0, start);
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    client_fds_.erase(fd);
}

bool Server::dispatch(int fd, const std::string& line) {
    std::string parse_error;
    const auto request = parse_request(line, &parse_error);
    if (!request.has_value())
        return send_all(fd, error_response(Request{}, parse_error));

    if (request->op == "ping") {
        obs::JsonWriter w;
        begin_response(w, *request, /*ok=*/true);
        w.end_object();
        return send_all(fd, finish_response_line(w));
    }
    if (request->op == "list") {
        obs::JsonWriter w;
        begin_response(w, *request, /*ok=*/true);
        w.key("systems");
        w.begin_array();
        for (const std::string& name : apps::catalog_names()) {
            const apps::SystemInstance sys = apps::load_system(name, 0);
            w.begin_object();
            w.kv("name", name);
            w.kv("states",
                 static_cast<std::uint64_t>(sys.space->num_states()));
            w.key("variants");
            w.begin_array();
            for (const auto& [variant, program] : sys.variants)
                w.value(variant);
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        return send_all(fd, finish_response_line(w));
    }
    if (request->op == "verify") {
        const QueryScheduler::Admission admission = scheduler_->verify(
            request->system, request->size, request->graded);
        const VerifyResult& result = *admission.result;
        if (!result.ok)
            return send_all(fd, error_response(*request, result.error));
        obs::JsonWriter w;
        begin_response(w, *request, /*ok=*/true);
        w.kv("system", result.system);
        w.kv("size", result.size);
        w.kv("graded", result.graded);
        w.kv("space_states", result.space_states);
        w.kv("coalesced", admission.coalesced);
        w.key("queries");
        w.begin_array();
        for (const obs::ReportQuery& q : result.queries)
            obs::write_query(w, q);
        w.end_array();
        w.end_object();
        return send_all(fd, finish_response_line(w));
    }
    if (request->op == "stats") {
        const QueryScheduler::Stats stats = scheduler_->stats();
        obs::JsonWriter w;
        begin_response(w, *request, /*ok=*/true);
        w.key("scheduler");
        w.begin_object();
        w.kv("admitted", stats.admitted);
        w.kv("executed", stats.executed);
        w.kv("coalesced", stats.coalesced);
        w.end_object();
        obs::write_telemetry(w);
        w.end_object();
        return send_all(fd, finish_response_line(w));
    }
    // "shutdown": put the acknowledgement on the wire *before* requesting
    // stop — the teardown in wait() shuts client sockets down, and the
    // client must still receive its response.
    obs::JsonWriter w;
    begin_response(w, *request, /*ok=*/true);
    w.end_object();
    const bool sent = send_all(fd, finish_response_line(w));
    shutdown();
    return sent;
}

void Server::shutdown() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_requested_) return;
        stop_requested_ = true;
    }
    stop_cv_.notify_all();
}

void Server::wait() {
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stop_cv_.wait(lock, [this] { return stop_requested_; });
        if (finished_) return;
        finished_ = true;
    }
    if (!started_) return;
    // Closing the listener pops accept_loop out of accept(); shutting the
    // client sockets pops connection threads out of recv().
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    accept_thread_.join();
    for (std::thread& t : connections_) t.join();
    ::unlink(options_.socket_path.c_str());
}

}  // namespace dcft::service
