// dcftd server core: a unix-domain socket accepting newline-delimited
// JSON queries (service/protocol.hpp) and answering them through the
// coalescing QueryScheduler (service/scheduler.hpp).
//
// Threading: one accept thread, one thread per connection, and the
// scheduler's worker pool. Connection threads block in
// QueryScheduler::verify for verify ops — which is exactly where
// concurrent same-key queries coalesce. A "shutdown" op (or shutdown()
// from any thread, e.g. a signal watcher) requests stop; wait() — the
// owner's blocking call — then closes the listener and every live
// connection, joins all threads, and removes the socket file. The server
// never exits on malformed input: bad lines get an error response and the
// connection stays open.
//
// The server is embeddable: tools/dcftd.cpp wraps it as the daemon, and
// tools/service_smoke.cpp runs it in-process against real sockets to pin
// the coalescing and shutdown behavior in CI.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/scheduler.hpp"

namespace dcft::service {

struct ServerOptions {
    std::string socket_path;
    unsigned workers = 0;  ///< scheduler pool size (0 = default)
};

class Server {
public:
    explicit Server(ServerOptions options);
    /// shutdown() + wait() if still running.
    ~Server();

    /// Binds and listens on the socket path (replacing a stale socket
    /// file) and starts accepting. Returns false with *error on failure.
    bool start(std::string* error);

    /// Blocks until shutdown is requested, then tears everything down:
    /// stops accepting, closes live connections, joins threads, unlinks
    /// the socket file.
    void wait();

    /// Requests stop. Idempotent; safe from any thread, including
    /// connection threads (the teardown happens in wait()).
    void shutdown();

    QueryScheduler& scheduler() { return *scheduler_; }
    const std::string& socket_path() const { return options_.socket_path; }

private:
    void accept_loop();
    void handle_connection(int fd);
    /// Answers one request line on `fd`; false when the peer is gone.
    bool dispatch(int fd, const std::string& line);

    ServerOptions options_;
    std::unique_ptr<QueryScheduler> scheduler_;
    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::mutex mutex_;
    std::condition_variable stop_cv_;
    bool stop_requested_ = false;
    bool started_ = false;
    bool finished_ = false;
    std::vector<std::thread> connections_;
    std::set<int> client_fds_;
};

}  // namespace dcft::service
