#include "service/scheduler.hpp"

#include <algorithm>
#include <exception>

#include "apps/catalog.hpp"
#include "common/env.hpp"
#include "obs/telemetry.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft::service {
namespace {

std::chrono::milliseconds batch_window() {
    return std::chrono::milliseconds(
        env_positive_u64("DCFT_SERVICE_BATCH_MS").value_or(0));
}

}  // namespace

QueryScheduler::QueryScheduler(unsigned n_workers) {
    if (n_workers == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n_workers = std::min(4u, hw == 0 ? 1u : hw);
    }
    workers_.reserve(n_workers);
    for (unsigned i = 0; i < n_workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

QueryScheduler::~QueryScheduler() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        paused_ = false;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

QueryScheduler::Admission QueryScheduler::verify(const std::string& system,
                                                 int size, bool graded) {
    const std::string key = system + ":" + std::to_string(size) +
                            (graded ? ":graded" : "");
    admitted_.fetch_add(1, std::memory_order_relaxed);
    obs::count("service/scheduler/admitted");

    std::shared_ptr<Job> job;
    bool coalesced = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = inflight_.find(key); it != inflight_.end()) {
            job = it->second;
            coalesced = true;
        } else {
            job = std::make_shared<Job>();
            job->key = key;
            job->system = system;
            job->size = size;
            job->graded = graded;
            job->future = job->promise.get_future().share();
            job->ready_at = std::chrono::steady_clock::now() + batch_window();
            inflight_.emplace(key, job);
            queue_.push_back(job);
        }
    }
    if (coalesced) {
        coalesced_.fetch_add(1, std::memory_order_relaxed);
        obs::count("service/scheduler/coalesced");
    } else {
        cv_.notify_one();
    }
    return Admission{job->future.get(), coalesced};
}

void QueryScheduler::worker_loop() {
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            for (;;) {
                if (stop_ && queue_.empty()) return;
                if (!paused_ && !queue_.empty()) {
                    // Jobs become runnable after their admission window;
                    // the queue is FIFO so the front has the earliest
                    // deadline.
                    const auto now = std::chrono::steady_clock::now();
                    if (stop_ || queue_.front()->ready_at <= now) {
                        job = queue_.front();
                        queue_.pop_front();
                        break;
                    }
                    cv_.wait_until(lock, queue_.front()->ready_at);
                    continue;
                }
                cv_.wait(lock);
            }
        }

        executed_.fetch_add(1, std::memory_order_relaxed);
        obs::count("service/scheduler/executed");
        std::shared_ptr<const VerifyResult> result;
        try {
            result = execute(job->system, job->size, job->graded);
        } catch (const std::exception& error) {
            auto failed = std::make_shared<VerifyResult>();
            failed->error = error.what();
            result = std::move(failed);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(job->key);
        }
        job->promise.set_value(std::move(result));
    }
}

std::shared_ptr<const apps::SystemInstance> QueryScheduler::system_for(
    const std::string& system, int size) {
    const std::string key = system + ":" + std::to_string(size);
    {
        std::lock_guard<std::mutex> lock(systems_mutex_);
        if (const auto it = systems_.find(key); it != systems_.end())
            return it->second;
    }
    // Load outside the lock (reachable-invariant systems explore during
    // load); concurrent first loads of the same key are possible and
    // harmless — the first insert wins and the loser's copy is dropped.
    auto loaded = std::make_shared<const apps::SystemInstance>(
        apps::load_system(system, size));
    std::lock_guard<std::mutex> lock(systems_mutex_);
    return systems_.emplace(key, std::move(loaded)).first->second;
}

std::shared_ptr<const VerifyResult> QueryScheduler::execute(
    const std::string& system, int size, bool graded) {
    auto result = std::make_shared<VerifyResult>();
    result->system = system;
    result->size = size;
    result->graded = graded;
    std::shared_ptr<const apps::SystemInstance> sys;
    try {
        sys = system_for(system, size);
    } catch (const std::exception& error) {
        result->error = error.what();
        return result;
    }
    result->space_states = sys->space->num_states();
    for (const auto& [variant, program] : sys->variants) {
        std::vector<obs::ReportQuery> queries;
        queries.push_back(apps::tolerance_query(
            system, variant, "failsafe",
            check_failsafe(program, *sys->faults, sys->spec,
                           sys->invariant)));
        queries.push_back(apps::tolerance_query(
            system, variant, "nonmasking",
            check_nonmasking(program, *sys->faults, sys->spec,
                             sys->invariant)));
        queries.push_back(apps::tolerance_query(
            system, variant, "masking",
            check_masking(program, *sys->faults, sys->spec,
                          sys->invariant)));
        if (graded) {
            // One game + one estimate per variant; the blocks are shared
            // by the variant's three grade queries (they grade the same
            // program). The p [] F graph is already in the exploration
            // cache from the grid above, so the game adds no exploration.
            const apps::GradedBlocks blocks =
                apps::graded_blocks(*sys, program);
            for (obs::ReportQuery& q : queries) {
                q.masking_distance = blocks.masking_distance;
                q.monte_carlo = blocks.monte_carlo;
            }
        }
        for (obs::ReportQuery& q : queries)
            result->queries.push_back(std::move(q));
    }
    result->ok = true;
    return result;
}

QueryScheduler::Stats QueryScheduler::stats() const {
    Stats s;
    s.admitted = admitted_.load(std::memory_order_relaxed);
    s.executed = executed_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    return s;
}

void QueryScheduler::set_paused(bool paused) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = paused;
    }
    cv_.notify_all();
}

}  // namespace dcft::service
