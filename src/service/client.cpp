#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace dcft::service {

std::string default_socket_path() {
    if (const char* env = std::getenv("DCFT_SOCKET");
        env != nullptr && env[0] != '\0')
        return env;
    return "/tmp/dcftd.sock";
}

std::optional<std::string> roundtrip(const std::string& socket_path,
                                     const std::string& request_line,
                                     std::string* error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr)
            *error = "socket path empty or too long: '" + socket_path + "'";
        return std::nullopt;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        if (error != nullptr)
            *error = std::string("socket: ") + std::strerror(errno);
        return std::nullopt;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        if (error != nullptr)
            *error = "connect to '" + socket_path +
                     "': " + std::strerror(errno) +
                     " (is dcftd running?)";
        ::close(fd);
        return std::nullopt;
    }

    std::string request = request_line;
    if (request.empty() || request.back() != '\n') request.push_back('\n');
    std::size_t off = 0;
    while (off < request.size()) {
        const ssize_t n = ::send(fd, request.data() + off,
                                 request.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            if (error != nullptr)
                *error = std::string("send: ") + std::strerror(errno);
            ::close(fd);
            return std::nullopt;
        }
        off += static_cast<std::size_t>(n);
    }

    std::string response;
    char chunk[4096];
    for (;;) {
        if (const std::size_t nl = response.find('\n');
            nl != std::string::npos) {
            ::close(fd);
            return response.substr(0, nl);
        }
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
            if (error != nullptr)
                *error = n == 0 ? "connection closed before a response line"
                                : std::string("recv: ") +
                                      std::strerror(errno);
            ::close(fd);
            return std::nullopt;
        }
        response.append(chunk, static_cast<std::size_t>(n));
    }
}

}  // namespace dcft::service
