// Client side of the dcftd wire protocol: connect to the daemon's unix
// socket, send one newline-delimited JSON request, read one response
// line. Used by the `dcft client` subcommand and the service smoke test.
#pragma once

#include <optional>
#include <string>

namespace dcft::service {

/// The daemon socket path a client should use: DCFT_SOCKET when set,
/// otherwise "/tmp/dcftd.sock" (the dcftd default).
std::string default_socket_path();

/// Sends `request_line` (newline appended if missing) over a fresh
/// connection to `socket_path` and returns the first response line
/// (without the newline). nullopt with *error on connect/IO failure or a
/// connection closed before a full line arrived.
std::optional<std::string> roundtrip(const std::string& socket_path,
                                     const std::string& request_line,
                                     std::string* error = nullptr);

}  // namespace dcft::service
