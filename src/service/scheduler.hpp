// Batched query admission for the dcftd daemon: a worker pool executing
// tolerance-verdict queries with concurrent same-key coalescing.
//
// Why this exists: identical queries arriving together (a dashboard
// refreshing, a CI matrix fanning out over the same system) must not run
// the verdict pipeline once per connection. The in-process
// ExplorationCache already dedups the *graphs*; the scheduler dedups the
// whole query: the first arrival of a (system, size) key enqueues a job,
// every concurrent arrival of the same key attaches to that job's shared
// future, and all of them receive the same immutable VerifyResult. The
// second identical query therefore costs one map lookup and a future
// wait, and — proven by tools/service_smoke — N concurrent identical
// queries trigger exactly one exploration per distinct graph key.
//
// Warm instances: loaded systems are cached per (system, size) key for
// the scheduler's lifetime. This is what makes the daemon's process
// actually warm — the ExplorationCache keys graphs by StateSpace
// identity, so re-loading a system on every execution would produce a
// fresh space and re-explore every graph; with the instance cache a
// repeat query re-runs the verdict grid against the *same* space and
// every graph comes from the exploration cache (zero new explorations,
// pinned by tools/service_smoke).
//
// Admission windows: a job becomes runnable DCFT_SERVICE_BATCH_MS
// milliseconds after enqueue (default 0 — immediately), widening the
// coalescing window under bursty arrival. set_paused(true) holds dispatch
// entirely (the smoke test uses this to make coalescing deterministic).
//
// Stats are exposed twice: always via stats() (the daemon's "stats" op
// must work without telemetry), and as service/scheduler/* counters when
// telemetry is enabled.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/run_report.hpp"

namespace dcft::apps {
struct SystemInstance;
}

namespace dcft::service {

/// Immutable outcome of one verify query, shared by every coalesced
/// caller.
struct VerifyResult {
    std::string system;
    int size = 0;
    bool graded = false;  ///< queries carry masking_distance/monte_carlo
    /// Whether the system loaded and the checks ran ("no" verdicts still
    /// count as ok — per-query verdicts live in `queries`).
    bool ok = false;
    std::string error;  ///< non-empty exactly when !ok
    std::uint64_t space_states = 0;
    std::vector<obs::ReportQuery> queries;
};

class QueryScheduler {
public:
    struct Stats {
        std::uint64_t admitted = 0;   ///< verify() calls
        std::uint64_t executed = 0;   ///< jobs actually run
        std::uint64_t coalesced = 0;  ///< calls served by another's job
    };

    /// Spawns `n_workers` executor threads (0 = min(4, hardware)).
    explicit QueryScheduler(unsigned n_workers = 0);
    /// Drains the queue (pending jobs complete) and joins the workers.
    ~QueryScheduler();

    struct Admission {
        std::shared_ptr<const VerifyResult> result;
        bool coalesced = false;  ///< shared a concurrent caller's execution
    };

    /// Blocks until the verdict grid of (system, size) is available.
    /// Concurrent callers with the same key share one execution. Graded
    /// and plain queries of the same system coalesce separately (the key
    /// includes the graded bit) — a graded result is a strict superset,
    /// but handing it to a plain caller would change that caller's
    /// response schema.
    Admission verify(const std::string& system, int size,
                     bool graded = false);

    Stats stats() const;

    /// Holds (true) / releases (false) job dispatch. While paused,
    /// verify() still admits and coalesces — nothing executes.
    void set_paused(bool paused);

private:
    struct Job {
        std::string key;     ///< coalescing identity (system:size[:graded])
        std::string system;  ///< parsed request fields, carried directly so
        int size = 0;        ///< workers never re-parse the key string
        bool graded = false;
        std::shared_future<std::shared_ptr<const VerifyResult>> future;
        std::promise<std::shared_ptr<const VerifyResult>> promise;
        std::chrono::steady_clock::time_point ready_at;
    };

    void worker_loop();
    std::shared_ptr<const VerifyResult> execute(const std::string& system,
                                                int size, bool graded);
    /// The cached instance of (system, size), loaded on first use. Keeps
    /// the StateSpace identity stable across executions so repeat queries
    /// hit the exploration cache instead of re-exploring.
    std::shared_ptr<const apps::SystemInstance> system_for(
        const std::string& system, int size);

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Job>> queue_;
    /// Every queued or running job, for same-key attachment. Entries are
    /// erased when their job completes.
    std::map<std::string, std::shared_ptr<Job>> inflight_;
    std::vector<std::thread> workers_;
    /// Warm (system, size) -> instance cache; bounded by the catalog and
    /// the distinct sizes actually queried (instances are small — graphs
    /// live in the ExplorationCache, which has its own budgets).
    mutable std::mutex systems_mutex_;
    std::map<std::string, std::shared_ptr<const apps::SystemInstance>>
        systems_;
    bool stop_ = false;
    bool paused_ = false;
    std::atomic<std::uint64_t> admitted_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace dcft::service
