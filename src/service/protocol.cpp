#include "service/protocol.hpp"

#include <cmath>

#include "obs/run_report.hpp"

namespace dcft::service {

std::optional<Request> parse_request(const std::string& line,
                                     std::string* error) {
    std::string parse_error;
    const auto doc = obs::parse_json(line, &parse_error);
    if (!doc.has_value()) {
        if (error != nullptr) *error = "invalid JSON: " + parse_error;
        return std::nullopt;
    }
    if (!doc->is_object()) {
        if (error != nullptr) *error = "request must be a JSON object";
        return std::nullopt;
    }
    Request req;
    if (const auto* id = doc->find("id", obs::JsonValue::Kind::String))
        req.id = id->as_string();
    const auto* op = doc->find("op", obs::JsonValue::Kind::String);
    if (op == nullptr) {
        if (error != nullptr) *error = "request without string member 'op'";
        return std::nullopt;
    }
    req.op = op->as_string();
    if (req.op == "verify") {
        const auto* system =
            doc->find("system", obs::JsonValue::Kind::String);
        if (system == nullptr || system->as_string().empty()) {
            if (error != nullptr)
                *error = "verify request without string member 'system'";
            return std::nullopt;
        }
        req.system = system->as_string();
        if (const auto* size =
                doc->find("size", obs::JsonValue::Kind::Number)) {
            const double v = size->as_number();
            if (v < 0.0 || v != std::floor(v) || v > 1e9) {
                if (error != nullptr)
                    *error = "'size' must be a non-negative integer";
                return std::nullopt;
            }
            req.size = static_cast<int>(v);
        }
        if (const auto* graded = doc->find("graded")) {
            if (!graded->is_bool()) {
                if (error != nullptr) *error = "'graded' must be a boolean";
                return std::nullopt;
            }
            req.graded = graded->as_bool();
        }
    } else if (req.op != "ping" && req.op != "list" && req.op != "stats" &&
               req.op != "shutdown") {
        if (error != nullptr) *error = "unknown op '" + req.op + "'";
        return std::nullopt;
    }
    return req;
}

void begin_response(obs::JsonWriter& w, const Request& request, bool ok) {
    std::string command = request.op;
    if (!request.system.empty()) {
        command += " " + request.system;
        if (request.size > 0) command += " " + std::to_string(request.size);
        if (request.graded) command += " --graded";
    }
    obs::begin_envelope(w, "service", "dcftd", command);
    w.kv("op", request.op.empty() ? "?" : request.op);
    w.kv("id", request.id);
    w.kv("ok", ok);
}

std::string finish_response_line(const obs::JsonWriter& w) {
    // The writer's newlines are formatting only (string values escape
    // theirs), so dropping each '\n' and its following indentation yields
    // an equivalent single-line document.
    const std::string& pretty = w.str();
    std::string line;
    line.reserve(pretty.size() + 1);
    for (std::size_t i = 0; i < pretty.size(); ++i) {
        if (pretty[i] == '\n') {
            while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
            continue;
        }
        line.push_back(pretty[i]);
    }
    line.push_back('\n');
    return line;
}

std::string error_response(const Request& request,
                           const std::string& reason) {
    obs::JsonWriter w;
    begin_response(w, request, /*ok=*/false);
    w.kv("error", reason);
    w.end_object();
    return finish_response_line(w);
}

}  // namespace dcft::service
