#include "obs/run_report.hpp"

#include <fstream>
#include <map>
#include <memory>
#include <utility>

#include "obs/proc_stats.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace dcft::obs {
namespace {

/// One node of the phase tree assembled from '/'-separated timer paths.
/// Interior nodes that were never timed directly (e.g. "verify" when only
/// "verify/explore" recorded) carry ns == calls == 0 but still appear, so
/// readers can walk the hierarchy without special cases.
struct SpanNode {
    std::string name;  ///< last path segment
    std::string path;  ///< full '/'-path
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
    /// std::map keeps children sorted by name — emission is deterministic.
    std::map<std::string, std::unique_ptr<SpanNode>> children;
};

SpanNode build_span_tree(const std::vector<Registry::TimerSample>& samples) {
    SpanNode root;
    for (const auto& sample : samples) {
        SpanNode* node = &root;
        std::string_view rest = sample.path;
        std::string prefix;
        while (!rest.empty()) {
            const std::size_t slash = rest.find('/');
            const std::string_view seg = rest.substr(0, slash);
            rest = slash == std::string_view::npos ? std::string_view()
                                                   : rest.substr(slash + 1);
            if (!prefix.empty()) prefix += '/';
            prefix += seg;
            auto& child = node->children[std::string(seg)];
            if (child == nullptr) {
                child = std::make_unique<SpanNode>();
                child->name = std::string(seg);
                child->path = prefix;
            }
            node = child.get();
        }
        node->ns = sample.ns;
        node->calls = sample.calls;
    }
    return root;
}

void write_span_children(JsonWriter& w, const SpanNode& node) {
    w.begin_array();
    for (const auto& [name, child] : node.children) {
        w.begin_object();
        w.kv("name", child->name);
        w.kv("path", child->path);
        w.kv("ns", child->ns);
        w.kv("calls", child->calls);
        w.key("children");
        write_span_children(w, *child);
        w.end_object();
    }
    w.end_array();
}

}  // namespace

void begin_envelope(JsonWriter& w, std::string_view kind,
                    std::string_view tool, std::string_view command) {
    w.begin_object();
    w.kv("schema", "dcft.report");
    w.kv("schema_version", 1);
    w.kv("kind", kind);
    w.kv("tool", tool);
    w.kv("command", command);
    // Host facts make the perf-bearing payloads (timelines, bench series,
    // store cold/warm deltas) interpretable after the fact.
    const HostInfo host = host_info();
    w.key("host");
    w.begin_object();
    w.kv("cores", host.cores);
    w.kv("page_size_bytes", host.page_size_bytes);
    w.kv("kernel", host.kernel);
    w.kv("total_ram_bytes", host.total_ram_bytes);
    w.end_object();
}

void write_telemetry(JsonWriter& w) {
    w.key("telemetry");
    w.begin_object();
    w.kv("enabled", enabled());
    w.key("counters");
    w.begin_object();
    for (const auto& sample : Registry::global().counters())
        w.kv(sample.path, sample.value);
    w.end_object();
    w.key("spans");
    const SpanNode root = build_span_tree(Registry::global().timers());
    write_span_children(w, root);
    w.end_object();
}

void write_timeline(JsonWriter& w) {
    w.key("timeline");
    w.begin_array();
    for (const ExplorationTimeline& tl : timeline_snapshot()) {
        w.begin_object();
        w.kv("id", tl.id);
        w.kv("space_states", tl.space_states);
        w.kv("total_ns", tl.total_ns);
        w.kv("complete", tl.complete);
        w.kv("spilled", tl.spilled);
        w.key("levels");
        w.begin_array();
        for (const LevelStat& ls : tl.levels) {
            w.begin_object();
            w.kv("level", ls.level);
            w.kv("frontier", ls.frontier);
            w.kv("new_nodes", ls.new_nodes);
            w.kv("program_edges", ls.program_edges);
            w.kv("fault_edges", ls.fault_edges);
            w.kv("level_ns", ls.level_ns);
            w.kv("expand_claim_ns", ls.expand_claim_ns);
            w.kv("claim_filter_ns", ls.claim_filter_ns);
            w.kv("publish_ns", ls.publish_ns);
            w.kv("edge_write_ns", ls.edge_write_ns);
            w.kv("rss_bytes", ls.rss_bytes);
            w.kv("spill_bytes", ls.spill_bytes);
            w.kv("spill_released_bytes", ls.spill_released_bytes);
            w.kv("parallel", ls.parallel);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
}

void write_witness(JsonWriter& w, const std::vector<WitnessStep>& trace) {
    w.begin_array();
    for (const WitnessStep& step : trace) {
        w.begin_object();
        w.kv("state", step.state);
        w.kv("state_repr", step.state_repr);
        w.kv("action", step.action);
        w.kv("fault", step.fault);
        w.end_object();
    }
    w.end_array();
}

namespace {

void write_stats_block(JsonWriter& w, std::string_view name,
                       const QueryStatsBlock& s) {
    w.key(name);
    w.begin_object();
    w.kv("count", s.count);
    // NaN (empty distribution) prints as null per JsonWriter's contract.
    w.kv("mean", s.mean);
    w.kv("p50", s.p50);
    w.kv("p90", s.p90);
    w.kv("p99", s.p99);
    w.end_object();
}

}  // namespace

void write_query(JsonWriter& w, const ReportQuery& q) {
    w.begin_object();
    w.kv("name", q.name);
    w.kv("system", q.system);
    w.kv("variant", q.variant);
    w.kv("grade", q.grade);
    w.kv("ok", q.ok);
    w.kv("reason", q.reason);
    w.kv("invariant_size", q.invariant_size);
    w.kv("span_size", q.span_size);
    if (q.masking_distance) {
        const QueryMaskingDistance& md = *q.masking_distance;
        w.key("masking_distance");
        w.begin_object();
        w.kv("masking", md.masking);
        w.key("distance");
        if (md.masking)
            w.null();
        else
            w.value(md.distance);
        w.kv("game_nodes", md.game_nodes);
        w.kv("game_layers", md.game_layers);
        w.kv("witness_faults", md.witness_faults);
        w.end_object();
    }
    if (q.monte_carlo) {
        const QueryMonteCarlo& mc = *q.monte_carlo;
        w.key("monte_carlo");
        w.begin_object();
        w.kv("runs", mc.runs);
        w.kv("violated_runs", mc.violated_runs);
        w.kv("base_seed", mc.base_seed);
        w.kv("fault_probability", mc.fault_probability);
        w.kv("max_steps", mc.max_steps);
        w.kv("max_faults", mc.max_faults);
        w.kv("violation_rate", mc.violation_rate);
        write_stats_block(w, "time_to_violation", mc.time_to_violation);
        write_stats_block(w, "time_to_recovery", mc.time_to_recovery);
        write_stats_block(w, "faults_absorbed", mc.faults_absorbed);
        w.end_object();
    }
    w.key("witness");
    w.begin_object();
    w.kv("kind", q.witness_kind);
    w.key("trace");
    write_witness(w, q.witness);
    w.end_object();
    w.end_object();
}

RunReport::RunReport(std::string tool, std::string command)
    : tool_(std::move(tool)), command_(std::move(command)) {}

void RunReport::add_query(ReportQuery query) {
    queries_.push_back(std::move(query));
}

std::string RunReport::to_json() const {
    JsonWriter w;
    begin_envelope(w, "run_report", tool_, command_);
    w.key("queries");
    w.begin_array();
    for (const ReportQuery& q : queries_) write_query(w, q);
    w.end_array();
    // Kernel-compilation coverage per program variant: which programs run
    // fully compiled / batch-swept and which pay interpreter fallbacks.
    w.key("programs");
    w.begin_array();
    for (const ReportProgram& p : programs_) {
        w.begin_object();
        w.kv("name", p.name);
        w.kv("system", p.system);
        w.kv("variant", p.variant);
        w.kv("actions", p.actions);
        w.kv("fully_compiled", p.fully_compiled);
        w.kv("structured_effects", p.structured_effects);
        w.kv("batchable_actions", p.batchable_actions);
        w.kv("kcall_ops", p.kcall_ops);
        w.kv("batchable", p.batchable);
        w.end_object();
    }
    w.end_array();
    write_timeline(w);
    write_telemetry(w);
    w.end_object();
    return w.str();
}

void RunReport::add_program(ReportProgram program) {
    programs_.push_back(std::move(program));
}

bool RunReport::write(const std::string& path, std::string* error) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error != nullptr) *error = "cannot open '" + path + "' for write";
        return false;
    }
    out << to_json() << '\n';
    if (!out) {
        if (error != nullptr) *error = "short write to '" + path + "'";
        return false;
    }
    return true;
}

}  // namespace dcft::obs
