#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/check.hpp"

namespace dcft::obs {

// ---------------------------------------------------------------------------
// JsonWriter

JsonWriter::JsonWriter() { out_.reserve(4096); }

void JsonWriter::comma_and_indent(bool is_value) {
    if (stack_.empty()) return;  // root value: no separator
    Frame& top = stack_.back();
    if (!top.array && is_value && top.has_key) {
        // value directly after its key: no comma/newline, key() wrote ": ".
        top.has_key = false;
        return;
    }
    if (top.members > 0) out_ += ',';
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
    ++top.members;
}

JsonWriter& JsonWriter::begin_object() {
    comma_and_indent(true);
    out_ += '{';
    stack_.push_back(Frame{false, 0, false});
    return *this;
}

JsonWriter& JsonWriter::end_object() {
    DCFT_EXPECTS(!stack_.empty() && !stack_.back().array,
                 "JsonWriter::end_object: no open object");
    const bool had_members = stack_.back().members > 0;
    stack_.pop_back();
    if (had_members) {
        out_ += '\n';
        out_.append(2 * stack_.size(), ' ');
    }
    out_ += '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array() {
    comma_and_indent(true);
    out_ += '[';
    stack_.push_back(Frame{true, 0, false});
    return *this;
}

JsonWriter& JsonWriter::end_array() {
    DCFT_EXPECTS(!stack_.empty() && stack_.back().array,
                 "JsonWriter::end_array: no open array");
    const bool had_members = stack_.back().members > 0;
    stack_.pop_back();
    if (had_members) {
        out_ += '\n';
        out_.append(2 * stack_.size(), ' ');
    }
    out_ += ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
    DCFT_EXPECTS(!stack_.empty() && !stack_.back().array,
                 "JsonWriter::key outside an object");
    comma_and_indent(false);
    out_ += quote(k);
    out_ += ": ";
    stack_.back().has_key = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
    comma_and_indent(true);
    out_ += quote(s);
    return *this;
}

JsonWriter& JsonWriter::value(bool b) {
    comma_and_indent(true);
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter& JsonWriter::value(double d) {
    comma_and_indent(true);
    if (!std::isfinite(d)) {
        out_ += "null";  // JSON has no NaN/Inf
        return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", d);
    out_ += buf;
    // Ensure the token parses back as a number even for integral doubles.
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
    comma_and_indent(true);
    out_ += std::to_string(u);
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
    comma_and_indent(true);
    out_ += std::to_string(i);
    return *this;
}

JsonWriter& JsonWriter::null() {
    comma_and_indent(true);
    out_ += "null";
    return *this;
}

std::string JsonWriter::quote(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

// ---------------------------------------------------------------------------
// JsonValue

JsonValue JsonValue::make_bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}
JsonValue JsonValue::make_number(double d) {
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = d;
    return v;
}
JsonValue JsonValue::make_string(std::string s) {
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}
JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
}
JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::move(members);
    return v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
    if (kind_ != Kind::Object) return nullptr;
    const auto it = object_.find(std::string(key));
    return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::find(std::string_view key, Kind kind) const {
    const JsonValue* v = find(key);
    return (v != nullptr && v->kind() == kind) ? v : nullptr;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

class Parser {
public:
    Parser(std::string_view text, std::string* error)
        : text_(text), error_(error) {}

    std::optional<JsonValue> parse() {
        skip_ws();
        JsonValue v;
        if (!parse_value(v)) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return v;
    }

private:
    void fail(const std::string& what) {
        if (error_ != nullptr && error_->empty())
            *error_ = what + " at offset " + std::to_string(pos_);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    bool parse_value(JsonValue& out) {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        if (c == '{') return parse_object(out);
        if (c == '[') return parse_array(out);
        if (c == '"') {
            std::string s;
            if (!parse_string(s)) return false;
            out = JsonValue::make_string(std::move(s));
            return true;
        }
        if (literal("true")) {
            out = JsonValue::make_bool(true);
            return true;
        }
        if (literal("false")) {
            out = JsonValue::make_bool(false);
            return true;
        }
        if (literal("null")) {
            out = JsonValue::make_null();
            return true;
        }
        return parse_number(out);
    }

    bool parse_number(JsonValue& out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        if (pos_ == start) {
            fail("expected a value");
            return false;
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("malformed number '" + token + "'");
            return false;
        }
        out = JsonValue::make_number(d);
        return true;
    }

    bool parse_string(std::string& out) {
        if (text_[pos_] != '"') {
            fail("expected '\"'");
            return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) break;
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return false;
                    }
                    const std::string hex(text_.substr(pos_, 4));
                    pos_ += 4;
                    char* end = nullptr;
                    const long cp = std::strtol(hex.c_str(), &end, 16);
                    if (end == nullptr || *end != '\0') {
                        fail("malformed \\u escape");
                        return false;
                    }
                    // Emit UTF-8 (BMP only; surrogate pairs unsupported —
                    // the writer never emits them).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                }
                default:
                    fail("unknown escape");
                    return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool parse_array(JsonValue& out) {
        ++pos_;  // '['
        std::vector<JsonValue> items;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            out = JsonValue::make_array(std::move(items));
            return true;
        }
        for (;;) {
            skip_ws();
            JsonValue item;
            if (!parse_value(item)) return false;
            items.push_back(std::move(item));
            skip_ws();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                out = JsonValue::make_array(std::move(items));
                return true;
            }
            fail("expected ',' or ']'");
            return false;
        }
    }

    bool parse_object(JsonValue& out) {
        ++pos_;  // '{'
        std::map<std::string, JsonValue> members;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            out = JsonValue::make_object(std::move(members));
            return true;
        }
        for (;;) {
            skip_ws();
            std::string k;
            if (!parse_string(k)) return false;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':'");
                return false;
            }
            ++pos_;
            skip_ws();
            JsonValue v;
            if (!parse_value(v)) return false;
            members.emplace(std::move(k), std::move(v));
            skip_ws();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                out = JsonValue::make_object(std::move(members));
                return true;
            }
            fail("expected ',' or '}'");
            return false;
        }
    }

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
    if (error != nullptr) error->clear();
    return Parser(text, error).parse();
}

}  // namespace dcft::obs
