// Live progress heartbeat for long-running runs.
//
// A 10^8-state exploration or a 10k-program fuzz campaign is minutes of
// total silence without this. When enabled (DCFT_PROGRESS=<seconds> in the
// environment, or `dcft verify --progress`, or set_progress_interval), a
// single sampler thread wakes every interval and prints one line to
// stderr, e.g.
//
//   [dcft] explore level=42 frontier=1.2M states=8.5M (3.4M/s) 21.0% eta=44s rss=805MB spill_released=3.4GB
//   [dcft] fuzz 1234/10000 (12.3/s) eta=713s rss=96MB
//
// The instrumented loops (BFS levels, synthesis phases, fuzz campaigns,
// batch experiments) publish their position with relaxed atomic stores
// behind a one-relaxed-load gate — the same discipline as obs::enabled()
// — so a disabled heartbeat costs nothing measurable. RSS comes from
// obs/proc_stats.hpp and is omitted on platforms where it is unavailable.
// The ETA is based on the full state-space size (an upper bound on
// reachable states), so it is conservative: real explorations finish
// earlier than the estimate.
#pragma once

#include <cstdint>

namespace dcft::obs {

/// True when the heartbeat is on. First call resolves DCFT_PROGRESS from
/// the environment; afterwards one relaxed load.
bool progress_enabled();

/// Enables the heartbeat with the given sample interval (seconds); <= 0
/// disables it. Overrides the environment. Starts the sampler thread on
/// first enable.
void set_progress_interval(double seconds);

/// --- publishers (call behind progress_enabled()) ----------------------

/// A new exploration is starting over a space of `space_states` states
/// (0 when unknown; disables the ETA).
void progress_explore_begin(std::uint64_t space_states);

/// One BFS level finished: currently at `level` with `frontier` states to
/// expand next, `states` discovered so far, `spill_released` bytes
/// returned to the OS.
void progress_explore_level(std::uint64_t level, std::uint64_t frontier,
                            std::uint64_t states,
                            std::uint64_t spill_released);

/// Item-counting phases (fuzz programs, batch experiments, synthesis
/// iterations). `what` must have static lifetime. `total` 0 = unknown.
void progress_items(const char* what, std::uint64_t done,
                    std::uint64_t total);

/// Names the current phase for item-less stretches (e.g. "synth/masking").
/// `what` must have static lifetime.
void progress_phase(const char* what);

/// Stops and joins the sampler thread. Registered with atexit when the
/// thread starts, so normal process exit is clean; CLIs may call it
/// earlier to stop printing before final output.
void progress_stop();

}  // namespace dcft::obs
