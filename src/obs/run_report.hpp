// Run-report emitter: serializes one tool invocation — phase tree, counter
// registry, per-query tolerance verdicts, and witness traces — to a stable
// JSON schema shared by every JSON artifact the repo produces.
//
// Envelope (schema_version 1):
//   {
//     "schema": "dcft.report",
//     "schema_version": 1,
//     "kind": "run_report" | "bench",
//     "tool": "<binary name>",
//     "command": "<reconstructed command line>",
//     "host": { "cores", "page_size_bytes", "kernel", "total_ram_bytes" },
//     ...kind-specific payload...,
//     "timeline": [ { "id", "space_states", "total_ns", "complete",
//                     "spilled",               // run_report kind only:
//                     "levels": [ {            // one row per BFS level
//                       "level", "frontier", "new_nodes", "program_edges",
//                       "fault_edges", "level_ns", "expand_claim_ns",
//                       "claim_filter_ns", "publish_ns", "edge_write_ns",
//                       "rss_bytes", "spill_bytes", "spill_released_bytes",
//                       "parallel" }, ... ] }, ... ],
//     "telemetry": {
//       "enabled": true,
//       "counters": { "<path>": <u64>, ... },          // sorted by path
//       "spans": [ { "name", "path", "ns", "calls",    // phase tree built
//                    "children": [...] }, ... ]        // from '/'-paths
//     }
//   }
//
// A run report's payload is "queries": one entry per tolerance query with
// the verdict, invariant/span sizes, and a replayable witness trace:
// failing queries carry the counterexample of the first failing obligation;
// passing queries carry the exploration witness (BFS path to the deepest
// fault-span state). Graded runs (--graded) attach two extra members per
// query: "masking_distance" { masking, distance (null when masking),
// game_nodes, game_layers, witness_faults } and "monte_carlo" { runs,
// violated_runs, base_seed, fault_probability, max_steps, max_faults,
// violation_rate, and time_to_violation / time_to_recovery /
// faults_absorbed as { count, mean, p50, p90, p99 } (null when count 0) }. A "programs" array follows with per-variant kernel
// coverage (fully compiled vs interpreter-fallback actions, batch
// eligibility). bench_util.hpp reuses begin_envelope/write_telemetry
// for "kind": "bench", so BENCH_*.json and run reports parse with the same
// reader (obs/json.hpp) and validator (tools/report_check).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "verify/check_result.hpp"

namespace dcft::obs {

/// Graded game verdict attached to a query: the masking distance of the
/// queried variant (verify/masking_distance.hpp). "masking" means the
/// distance is infinite; `distance` is emitted as null in that case.
struct QueryMaskingDistance {
    bool masking = false;
    std::uint64_t distance = 0;       ///< meaningful when !masking
    std::uint64_t game_nodes = 0;
    std::uint64_t game_layers = 0;
    std::uint64_t witness_faults = 0; ///< fault steps on the min witness
};

/// One serialized SummaryStats distribution (runtime/metrics.hpp). The
/// doubles may be NaN when count == 0; JsonWriter prints NaN as null.
struct QueryStatsBlock {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/// Monte Carlo estimate attached to a query (runtime/estimate.hpp): the
/// full configuration (reproducible from the block alone) plus the three
/// graded distributions.
struct QueryMonteCarlo {
    std::uint64_t runs = 0;
    std::uint64_t violated_runs = 0;
    std::uint64_t base_seed = 0;
    double fault_probability = 0.0;
    std::uint64_t max_steps = 0;
    std::uint64_t max_faults = 0;  ///< 0 = unbounded
    double violation_rate = 0.0;
    QueryStatsBlock time_to_violation;
    QueryStatsBlock time_to_recovery;
    QueryStatsBlock faults_absorbed;
};

/// One tolerance query in a run report.
struct ReportQuery {
    std::string name;     ///< unique label, e.g. "token-ring/base/masking"
    std::string system;   ///< system family, e.g. "token-ring"
    std::string variant;  ///< program variant, e.g. "base", "corrected"
    std::string grade;    ///< "failsafe" | "nonmasking" | "masking"
    bool ok = false;
    std::string reason;   ///< failure reason ("" when ok)
    std::uint64_t invariant_size = 0;
    std::uint64_t span_size = 0;
    /// "counterexample" (failing query), "exploration" (passing query with
    /// a deepest-trace witness), or "" (no witness available).
    std::string witness_kind;
    std::vector<WitnessStep> witness;
    /// Graded blocks (--graded / graded requests only); both present or
    /// both absent.
    std::optional<QueryMaskingDistance> masking_distance;
    std::optional<QueryMonteCarlo> monte_carlo;
};

/// Per-program kernel-compilation coverage in a run report: how much of
/// the program (and its fault class) the compiled/batched exploration
/// layers actually cover, and how much falls back to interpretation
/// (kCall guard ops, generic effects). Mirrors verify/kernel/* telemetry
/// but attributed to a named program variant.
struct ReportProgram {
    std::string name;     ///< "<system>/<variant>"
    std::string system;
    std::string variant;
    std::uint64_t actions = 0;             ///< program + fault actions
    std::uint64_t fully_compiled = 0;      ///< guards without kCall ops
    std::uint64_t structured_effects = 0;  ///< non-generic effect forms
    std::uint64_t batchable_actions = 0;   ///< both of the above
    std::uint64_t kcall_ops = 0;           ///< total guard fallback ops
    bool batchable = false;  ///< whole program on the batch sweep path
};

/// Accumulates queries and emits the run-report JSON document.
class RunReport {
public:
    RunReport(std::string tool, std::string command);

    void add_query(ReportQuery query);
    const std::vector<ReportQuery>& queries() const { return queries_; }

    void add_program(ReportProgram program);
    const std::vector<ReportProgram>& programs() const { return programs_; }

    /// The complete document, snapshotting Registry::global() for the
    /// telemetry section at call time.
    std::string to_json() const;

    /// Writes to_json() to `path`. Returns false (and fills `error`) on
    /// I/O failure.
    bool write(const std::string& path, std::string* error = nullptr) const;

private:
    std::string tool_;
    std::string command_;
    std::vector<ReportQuery> queries_;
    std::vector<ReportProgram> programs_;
};

// -- shared-envelope building blocks (used by bench_util.hpp too) ----------

/// Opens the envelope object and writes the schema/kind/tool/command
/// members. The caller appends its payload members and must eventually
/// call end_object().
void begin_envelope(JsonWriter& w, std::string_view kind,
                    std::string_view tool, std::string_view command);

/// Writes the "telemetry" member from a point-in-time snapshot of
/// Registry::global(): the enabled flag, the sorted counter map, and the
/// phase tree assembled from '/'-separated timer paths.
void write_telemetry(JsonWriter& w);

/// Writes a witness trace as an array of step objects
/// {"state","state_repr","action","fault"}.
void write_witness(JsonWriter& w, const std::vector<WitnessStep>& trace);

/// Writes one query object exactly as run reports emit it (verdict,
/// sizes, witness). Shared with the dcftd verify responses so both
/// frontends stay schema-identical.
void write_query(JsonWriter& w, const ReportQuery& q);

/// Writes the "timeline" member: every per-level exploration timeline
/// published so far (obs/trace.hpp), one object per exploration.
void write_timeline(JsonWriter& w);

}  // namespace dcft::obs
