// Low-overhead event tracing for long-running verification.
//
// Where obs/telemetry.hpp records *aggregates* (counters, accumulated span
// nanos), this layer records *ordered events* — begin/end spans and instant
// markers with nanosecond timestamps and a lane (thread) id — so questions
// like "which merge phase stalls at level 190?" become a timeline instead
// of a guess. The discipline matches telemetry exactly:
//
//   * Disabled (the default) costs one relaxed atomic load per call site.
//     trace_enabled() resolves once from DCFT_TRACE (any truthy value; the
//     CLIs pass the output path through it) and can be overridden
//     programmatically with set_trace_enabled().
//   * Event names are '/'-separated lower_snake paths, interned once per
//     call site (`static const std::uint32_t id = trace_name("…")`) so the
//     hot path stores a 4-byte id, never a string.
//   * Each OS thread appends to a lane: a fixed-capacity event buffer it
//     owns exclusively (size is published with a release store; snapshots
//     read it with acquire). The BFS merge spawns short-lived workers every
//     level, so lanes are pooled — a thread leases a lane on its first
//     event and returns it at thread exit, keeping memory bounded by the
//     peak thread count, not the thread-spawn count, and giving the export
//     stable per-worker lanes.
//   * Overflow never blocks and never reallocates: once a lane is full,
//     further events are dropped and counted. The per-lane drop counts are
//     summed into the `obs/trace/dropped` telemetry counter at snapshot
//     time and into the export's metadata. Because Ends of already-recorded
//     Begins may be among the drops, trace_snapshot() repairs balance:
//     orphan End events are removed and unclosed Begins get a synthesized
//     End at the lane's last timestamp, so the export is always
//     well-formed.
//
// Exports: write_chrome_trace()/chrome_trace_json() emit Chrome
// trace-event JSON (load in Perfetto or chrome://tracing), and the
// per-level ExplorationTimeline — filled in by TransitionSystem::explore —
// is embedded in the dcft.report envelope (see obs/run_report.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcft::obs {

// ---------------------------------------------------------------------------
// Gate

/// True when event tracing is on. First call resolves DCFT_TRACE from the
/// environment; afterwards one relaxed load.
bool trace_enabled();

/// Programmatic override (the CLIs call this when --trace is given).
void set_trace_enabled(bool on);

// ---------------------------------------------------------------------------
// Recording

/// Interns a '/'-separated lower_snake event name, returning its id.
/// Call once per site via a function-local static; takes a global lock.
std::uint32_t trace_name(std::string_view path);

enum class TracePhase : std::uint8_t { kBegin, kEnd, kInstant };

struct TraceEvent {
    std::uint64_t ts_ns = 0;  ///< obs::now_ns() at emission.
    std::uint64_t arg = 0;    ///< One event-specific payload (level, bytes…).
    std::uint32_t name = 0;   ///< Interned name id.
    TracePhase phase = TracePhase::kInstant;
};

/// Emit directly. Callers gate on trace_enabled() themselves when they
/// also have other per-event work to skip; the functions re-check and are
/// no-ops when disabled.
void trace_begin(std::uint32_t name, std::uint64_t arg = 0);
void trace_end(std::uint32_t name);
void trace_instant(std::uint32_t name, std::uint64_t arg = 0);

/// RAII begin/end pair. Decides once at construction, so a span that
/// started while tracing was on always closes.
class TraceSpan {
public:
    explicit TraceSpan(std::uint32_t name, std::uint64_t arg = 0) {
        if (trace_enabled()) {
            name_ = name;
            active_ = true;
            trace_begin(name, arg);
        }
    }
    ~TraceSpan() {
        if (active_) trace_end(name_);
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    std::uint32_t name_ = 0;
    bool active_ = false;
};

// ---------------------------------------------------------------------------
// Snapshot & export

struct TraceLane {
    std::uint32_t tid = 0;            ///< Stable lane id (0 = first lane).
    std::uint64_t dropped = 0;        ///< Events lost to overflow.
    std::vector<TraceEvent> events;   ///< Timestamp-ordered, balance-repaired.
};

struct TraceSnapshot {
    std::vector<std::string> names;   ///< Indexed by TraceEvent::name.
    std::vector<TraceLane> lanes;     ///< Sorted by tid.
    std::uint64_t dropped_total = 0;
};

/// Copies every lane, repairs begin/end balance (see file comment), and —
/// when telemetry is enabled — publishes dropped_total to the
/// `obs/trace/dropped` counter. Safe to call while other threads trace.
TraceSnapshot trace_snapshot();

/// Drops all recorded events and leased lanes (live threads re-lease on
/// their next event). Name interning survives. For tests and long-running
/// servers that export per-query traces.
void trace_reset();

/// Per-lane capacity in events for lanes leased *after* the call.
/// 0 restores the default (DCFT_TRACE_BUF or 64Ki events). Tests use a
/// tiny capacity to exercise the overflow path; combine with trace_reset().
void set_trace_buffer_capacity(std::size_t events);

/// Chrome trace-event JSON (object form: {"traceEvents": […], …}) of the
/// current snapshot. Timestamps are microseconds rebased to the first
/// recorded event. write_chrome_trace returns false (with *error set) on
/// I/O failure.
std::string chrome_trace_json();
bool write_chrome_trace(const std::string& path, std::string* error = nullptr);

// ---------------------------------------------------------------------------
// Per-level exploration timeline
//
// A structured companion to the event stream: one row per BFS level,
// filled in by TransitionSystem::explore when telemetry or tracing is on,
// embedded under "timeline" in run reports and validated by report_check.

struct LevelStat {
    std::uint64_t level = 0;           ///< BFS depth (0 = initial states).
    std::uint64_t frontier = 0;        ///< States expanded at this level.
    std::uint64_t new_nodes = 0;       ///< States first discovered here.
    std::uint64_t program_edges = 0;   ///< Program transitions written.
    std::uint64_t fault_edges = 0;     ///< Fault transitions written.
    std::uint64_t level_ns = 0;        ///< Wall time for the whole level.
    std::uint64_t expand_claim_ns = 0; ///< Parallel merge phase breakdown…
    std::uint64_t claim_filter_ns = 0;
    std::uint64_t publish_ns = 0;
    std::uint64_t edge_write_ns = 0;   ///< …all 0 on the serial path.
    std::uint64_t rss_bytes = 0;       ///< Resident set after the level (0 if unknown).
    std::uint64_t spill_bytes = 0;     ///< Cumulative bytes in spill files.
    std::uint64_t spill_released_bytes = 0;  ///< Cumulative bytes returned to the OS.
    bool parallel = false;             ///< Took the two-pass parallel merge.
};

struct ExplorationTimeline {
    std::uint64_t id = 0;              ///< Process-wide exploration ordinal.
    std::uint64_t space_states = 0;    ///< Full state-space size (ETA basis).
    std::uint64_t total_ns = 0;
    bool complete = false;             ///< False when early-exit stopped it.
    bool spilled = false;
    std::vector<LevelStat> levels;
};

/// Appends a finished timeline (assigns `id`). Bounded: past a cap the
/// oldest are kept and the new one is dropped, so a long-running process
/// cannot grow without bound.
void timeline_publish(ExplorationTimeline timeline);

std::vector<ExplorationTimeline> timeline_snapshot();
void timeline_reset();

}  // namespace dcft::obs
