// Minimal JSON emitter and reader for dcft's observability artifacts.
//
// Every JSON file the repo produces — run reports (dcft_cli --report) and
// benchmark series (bench_verifier --json) — goes through JsonWriter, so
// escaping, number formatting, and indentation are uniform and the files
// share one envelope (see obs/run_report.hpp). JsonValue/parse_json is the
// matching reader used by the schema round-trip test and the report_check
// validation tool; it is a strict recursive-descent parser for the subset
// of JSON the writer emits (which is all of JSON minus exotic number
// forms).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dcft::obs {

/// Streaming JSON writer with 2-space pretty printing. The caller drives
/// nesting (begin_object/end_object, begin_array/end_array) and the writer
/// tracks commas. Keys and string values are escaped per RFC 8259.
class JsonWriter {
public:
    JsonWriter();

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /// Key of the next member (only valid directly inside an object).
    JsonWriter& key(std::string_view k);

    JsonWriter& value(std::string_view s);
    JsonWriter& value(const char* s) { return value(std::string_view(s)); }
    JsonWriter& value(bool b);
    JsonWriter& value(double d);
    JsonWriter& value(std::uint64_t u);
    JsonWriter& value(std::int64_t i);
    JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
    JsonWriter& value(unsigned u) {
        return value(static_cast<std::uint64_t>(u));
    }
    JsonWriter& null();

    /// key(k) + value(v) in one call.
    template <typename T>
    JsonWriter& kv(std::string_view k, T&& v) {
        key(k);
        return value(std::forward<T>(v));
    }

    /// The document so far. Call after the outermost scope is closed.
    const std::string& str() const { return out_; }

    /// Escapes `s` as a JSON string literal (with quotes).
    static std::string quote(std::string_view s);

private:
    void comma_and_indent(bool is_value);

    std::string out_;
    /// One frame per open scope: {array?, member_count, pending_key}.
    struct Frame {
        bool array = false;
        std::size_t members = 0;
        bool has_key = false;
    };
    std::vector<Frame> stack_;
};

/// Parsed JSON document: a tagged tree.
class JsonValue {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::Null; }
    bool is_bool() const { return kind_ == Kind::Bool; }
    bool is_number() const { return kind_ == Kind::Number; }
    bool is_string() const { return kind_ == Kind::String; }
    bool is_array() const { return kind_ == Kind::Array; }
    bool is_object() const { return kind_ == Kind::Object; }

    bool as_bool() const { return bool_; }
    double as_number() const { return number_; }
    const std::string& as_string() const { return string_; }
    const std::vector<JsonValue>& as_array() const { return array_; }
    const std::map<std::string, JsonValue>& as_object() const {
        return object_;
    }

    /// Object member lookup; nullptr when absent or not an object.
    const JsonValue* find(std::string_view key) const;
    /// find() that also requires the member to be of `kind`.
    const JsonValue* find(std::string_view key, Kind kind) const;

    static JsonValue make_null() { return JsonValue(); }
    static JsonValue make_bool(bool b);
    static JsonValue make_number(double d);
    static JsonValue make_string(std::string s);
    static JsonValue make_array(std::vector<JsonValue> items);
    static JsonValue make_object(std::map<std::string, JsonValue> members);

private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document. On failure returns nullopt and, if
/// `error` is non-null, stores a message with the byte offset.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace dcft::obs
