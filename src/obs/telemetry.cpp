#include "obs/telemetry.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/env.hpp"

namespace dcft::obs {
namespace {

/// -1 = not yet resolved from the environment; 0/1 = off/on.
std::atomic<int>& enabled_state() {
    static std::atomic<int> state{-1};
    return state;
}

int resolve_from_env() {
    return env_flag_enabled("DCFT_TELEMETRY") ? 1 : 0;
}

}  // namespace

bool enabled() {
    int v = enabled_state().load(std::memory_order_relaxed);
    if (v < 0) {
        v = resolve_from_env();
        int expected = -1;
        // First caller publishes; a concurrent set_enabled() wins.
        enabled_state().compare_exchange_strong(expected, v,
                                                std::memory_order_relaxed);
        v = enabled_state().load(std::memory_order_relaxed);
    }
    return v == 1;
}

void set_enabled(bool on) {
    enabled_state().store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Registry& Registry::global() {
    static Registry* registry = new Registry();  // never destroyed
    return *registry;
}

Counter& Registry::counter(std::string_view path) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(path);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(std::string(path), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Timer& Registry::timer(std::string_view path) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = timers_.find(path);
    if (it == timers_.end()) {
        it = timers_.emplace(std::string(path), std::make_unique<Timer>())
                 .first;
    }
    return *it->second;
}

std::vector<Registry::CounterSample> Registry::counters() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CounterSample> out;
    out.reserve(counters_.size());
    for (const auto& [path, counter] : counters_)
        out.push_back(CounterSample{path, counter->value()});
    return out;  // std::map iteration order is already sorted by path
}

std::vector<Registry::TimerSample> Registry::timers() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TimerSample> out;
    out.reserve(timers_.size());
    for (const auto& [path, timer] : timers_)
        out.push_back(TimerSample{path, timer->nanos(), timer->calls()});
    return out;
}

void Registry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [path, counter] : counters_) counter->set(0);
    for (auto& [path, timer] : timers_) timer->reset();
}

}  // namespace dcft::obs
