#include "obs/progress.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "obs/proc_stats.hpp"
#include "obs/telemetry.hpp"

namespace dcft::obs {
namespace {

constexpr double kDefaultIntervalSec = 1.0;

enum Mode : int { kIdle = 0, kExplore = 1, kItems = 2 };

/// All publisher-visible state. Relaxed atomics: the heartbeat is a
/// human-facing sampler, a torn read across two fields costs nothing.
struct ProgressState {
    std::atomic<int> resolved{-1};          ///< -1 unresolved, 0 off, 1 on.
    std::atomic<std::uint64_t> interval_us{
        static_cast<std::uint64_t>(kDefaultIntervalSec * 1e6)};

    std::atomic<int> mode{kIdle};
    std::atomic<const char*> phase{nullptr};
    std::atomic<std::uint64_t> seq{0};      ///< Bumped on every publish.

    // Exploration.
    std::atomic<std::uint64_t> space{0};
    std::atomic<std::uint64_t> level{0};
    std::atomic<std::uint64_t> frontier{0};
    std::atomic<std::uint64_t> states{0};
    std::atomic<std::uint64_t> spill_released{0};
    std::atomic<std::uint64_t> start_ns{0};

    // Item-counting phases.
    std::atomic<const char*> items_what{nullptr};
    std::atomic<std::uint64_t> items_done{0};
    std::atomic<std::uint64_t> items_total{0};

    // Sampler thread.
    std::mutex mu;
    std::condition_variable cv;
    std::thread sampler;
    bool running = false;
    bool stop_requested = false;
};

ProgressState& state() {
    static ProgressState* s = new ProgressState();  // never destroyed
    return *s;
}

/// Parses DCFT_PROGRESS as seconds; truthiness follows the shared env
/// rule (unset/""/"0"/"false"/"off"/"no" = disabled). Non-numeric truthy
/// values ("on", "true") get the default interval.
double env_interval_seconds() {
    const char* v = std::getenv("DCFT_PROGRESS");
    if (v == nullptr || *v == '\0') return 0.0;
    char* end = nullptr;
    const double secs = std::strtod(v, &end);
    if (end != v && *end == '\0')
        return secs > 0.0 ? secs : 0.0;
    // Not a number: fall back to the boolean rule.
    const std::string s(v);
    if (s == "0" || s == "false" || s == "off" || s == "no" ||
        s == "False" || s == "Off" || s == "No" || s == "FALSE")
        return 0.0;
    return kDefaultIntervalSec;
}

std::string fmt_count(std::uint64_t n) {
    char buf[32];
    if (n >= 10'000'000'000ull)
        std::snprintf(buf, sizeof buf, "%.1fG", static_cast<double>(n) / 1e9);
    else if (n >= 10'000'000ull)
        std::snprintf(buf, sizeof buf, "%.1fM", static_cast<double>(n) / 1e6);
    else if (n >= 100'000ull)
        std::snprintf(buf, sizeof buf, "%.1fK", static_cast<double>(n) / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(n));
    return buf;
}

std::string fmt_rate(double per_sec) {
    char buf[32];
    if (per_sec >= 1e6)
        std::snprintf(buf, sizeof buf, "%.1fM/s", per_sec / 1e6);
    else if (per_sec >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fK/s", per_sec / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.1f/s", per_sec);
    return buf;
}

std::string fmt_bytes(std::uint64_t b) {
    char buf[32];
    if (b >= (std::uint64_t{1} << 30))
        std::snprintf(buf, sizeof buf, "%.1fGB",
                      static_cast<double>(b) / (1ull << 30));
    else
        std::snprintf(buf, sizeof buf, "%lluMB",
                      static_cast<unsigned long long>(b >> 20));
    return buf;
}

std::string fmt_eta(double secs) {
    char buf[32];
    if (secs < 120.0)
        std::snprintf(buf, sizeof buf, "%.0fs", secs);
    else if (secs < 7200.0)
        std::snprintf(buf, sizeof buf, "%.0fm", secs / 60.0);
    else
        std::snprintf(buf, sizeof buf, "%.1fh", secs / 3600.0);
    return buf;
}

void print_sample(std::uint64_t last_metric, std::uint64_t last_ns) {
    auto& s = state();
    const int mode = s.mode.load(std::memory_order_relaxed);
    if (mode == kIdle) return;
    const std::uint64_t now = now_ns();
    const double dt =
        last_ns ? static_cast<double>(now - last_ns) / 1e9 : 0.0;

    std::string line = "[dcft] ";
    if (mode == kExplore) {
        const std::uint64_t states = s.states.load(std::memory_order_relaxed);
        const std::uint64_t space = s.space.load(std::memory_order_relaxed);
        line += "explore level=" +
                std::to_string(s.level.load(std::memory_order_relaxed)) +
                " frontier=" +
                fmt_count(s.frontier.load(std::memory_order_relaxed)) +
                " states=" + fmt_count(states);
        if (dt > 0.0 && states >= last_metric)
            line += " (" +
                    fmt_rate(static_cast<double>(states - last_metric) / dt) +
                    ")";
        if (space > 0 && states > 0) {
            const double frac =
                std::min(1.0, static_cast<double>(states) /
                                  static_cast<double>(space));
            const double elapsed =
                static_cast<double>(
                    now - s.start_ns.load(std::memory_order_relaxed)) /
                1e9;
            char pct[16];
            std::snprintf(pct, sizeof pct, " %.1f%%", frac * 100.0);
            line += pct;
            if (frac > 0.0 && frac < 1.0)
                line += " eta<=" + fmt_eta(elapsed * (1.0 - frac) / frac);
        }
        const std::uint64_t released =
            s.spill_released.load(std::memory_order_relaxed);
        if (const auto rss = current_rss_bytes())
            line += " rss=" + fmt_bytes(*rss);
        if (released > 0) line += " spill_released=" + fmt_bytes(released);
    } else {
        const char* what = s.items_what.load(std::memory_order_relaxed);
        const std::uint64_t done =
            s.items_done.load(std::memory_order_relaxed);
        const std::uint64_t total =
            s.items_total.load(std::memory_order_relaxed);
        line += what ? what : "work";
        line += " " + std::to_string(done);
        if (total > 0) line += "/" + std::to_string(total);
        if (dt > 0.0 && done > last_metric) {
            const double rate = static_cast<double>(done - last_metric) / dt;
            line += " (" + fmt_rate(rate) + ")";
            if (total > done)
                line +=
                    " eta<=" + fmt_eta(static_cast<double>(total - done) / rate);
        }
        if (const auto rss = current_rss_bytes())
            line += " rss=" + fmt_bytes(*rss);
    }
    std::fprintf(stderr, "%s\n", line.c_str());
}

void sampler_main() {
    auto& s = state();
    std::uint64_t last_seq = 0;
    std::uint64_t last_metric = 0;
    std::uint64_t last_ns = 0;
    std::unique_lock<std::mutex> lock(s.mu);
    while (!s.stop_requested) {
        const auto interval = std::chrono::microseconds(
            s.interval_us.load(std::memory_order_relaxed));
        s.cv.wait_for(lock, interval);
        if (s.stop_requested) break;
        const std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
        if (seq == last_seq) continue;  // nothing new: stay quiet
        last_seq = seq;
        print_sample(last_metric, last_ns);
        last_ns = now_ns();
        last_metric = s.mode.load(std::memory_order_relaxed) == kExplore
                          ? s.states.load(std::memory_order_relaxed)
                          : s.items_done.load(std::memory_order_relaxed);
    }
    s.running = false;
}

void ensure_sampler() {
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    if (s.running) return;
    if (s.sampler.joinable()) s.sampler.join();  // previous stop finished
    s.running = true;
    s.stop_requested = false;
    s.sampler = std::thread(sampler_main);
    static bool atexit_registered = false;
    if (!atexit_registered) {
        atexit_registered = true;
        std::atexit(progress_stop);
    }
}

}  // namespace

bool progress_enabled() {
    auto& s = state();
    int v = s.resolved.load(std::memory_order_relaxed);
    if (v < 0) {
        const double secs = env_interval_seconds();
        const int on = secs > 0.0 ? 1 : 0;
        if (on)
            s.interval_us.store(static_cast<std::uint64_t>(secs * 1e6),
                                std::memory_order_relaxed);
        int expected = -1;
        s.resolved.compare_exchange_strong(expected, on,
                                           std::memory_order_relaxed);
        v = s.resolved.load(std::memory_order_relaxed);
    }
    return v == 1;
}

void set_progress_interval(double seconds) {
    auto& s = state();
    if (seconds > 0.0) {
        s.interval_us.store(static_cast<std::uint64_t>(seconds * 1e6),
                            std::memory_order_relaxed);
        s.resolved.store(1, std::memory_order_relaxed);
        ensure_sampler();
    } else {
        s.resolved.store(0, std::memory_order_relaxed);
        progress_stop();
    }
}

void progress_explore_begin(std::uint64_t space_states) {
    if (!progress_enabled()) return;
    auto& s = state();
    s.space.store(space_states, std::memory_order_relaxed);
    s.level.store(0, std::memory_order_relaxed);
    s.frontier.store(0, std::memory_order_relaxed);
    s.states.store(0, std::memory_order_relaxed);
    s.spill_released.store(0, std::memory_order_relaxed);
    s.start_ns.store(now_ns(), std::memory_order_relaxed);
    s.mode.store(kExplore, std::memory_order_relaxed);
    s.seq.fetch_add(1, std::memory_order_relaxed);
    ensure_sampler();
}

void progress_explore_level(std::uint64_t level, std::uint64_t frontier,
                            std::uint64_t states,
                            std::uint64_t spill_released) {
    if (!progress_enabled()) return;
    auto& s = state();
    s.level.store(level, std::memory_order_relaxed);
    s.frontier.store(frontier, std::memory_order_relaxed);
    s.states.store(states, std::memory_order_relaxed);
    s.spill_released.store(spill_released, std::memory_order_relaxed);
    s.mode.store(kExplore, std::memory_order_relaxed);
    s.seq.fetch_add(1, std::memory_order_relaxed);
}

void progress_items(const char* what, std::uint64_t done,
                    std::uint64_t total) {
    if (!progress_enabled()) return;
    auto& s = state();
    s.items_what.store(what, std::memory_order_relaxed);
    s.items_done.store(done, std::memory_order_relaxed);
    s.items_total.store(total, std::memory_order_relaxed);
    s.mode.store(kItems, std::memory_order_relaxed);
    s.seq.fetch_add(1, std::memory_order_relaxed);
    ensure_sampler();
}

void progress_phase(const char* what) {
    if (!progress_enabled()) return;
    auto& s = state();
    s.phase.store(what, std::memory_order_relaxed);
    s.items_what.store(what, std::memory_order_relaxed);
    s.items_done.store(0, std::memory_order_relaxed);
    s.items_total.store(0, std::memory_order_relaxed);
    s.mode.store(kItems, std::memory_order_relaxed);
    s.seq.fetch_add(1, std::memory_order_relaxed);
    ensure_sampler();
}

void progress_stop() {
    auto& s = state();
    std::thread to_join;
    {
        const std::lock_guard<std::mutex> lock(s.mu);
        if (!s.sampler.joinable()) return;
        s.stop_requested = true;
        to_join = std::move(s.sampler);
    }
    s.cv.notify_all();
    to_join.join();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.running = false;
    s.stop_requested = false;
    s.mode.store(kIdle, std::memory_order_relaxed);
}

}  // namespace dcft::obs
