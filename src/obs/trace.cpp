#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/env.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace dcft::obs {
namespace {

/// Default per-lane capacity: 64Ki events ≈ 1.5 MiB. A 200-level n=8
/// exploration emits a few thousand span events per lane, so the default
/// holds hours of BFS; DCFT_TRACE_BUF overrides it.
constexpr std::size_t kDefaultLaneCapacity = std::size_t{1} << 16;

/// Cap on stored exploration timelines (a verify run over all grades does
/// tens of explorations; fuzz campaigns could otherwise accumulate 10^4).
constexpr std::size_t kMaxTimelines = 1024;

/// -1 = not yet resolved from the environment; 0/1 = off/on. Same
/// discipline as obs::enabled().
std::atomic<int>& trace_state() {
    static std::atomic<int> state{-1};
    return state;
}

struct Lane {
    Lane(std::uint32_t id, std::size_t capacity) : tid(id) {
        events.resize(capacity);
    }
    const std::uint32_t tid;
    std::vector<TraceEvent> events;     ///< Fixed storage; `size` is the fill.
    std::atomic<std::size_t> size{0};   ///< Published with release stores.
    std::atomic<std::uint64_t> dropped{0};
};

struct TraceState {
    std::mutex mu;
    std::vector<std::shared_ptr<Lane>> lanes;      ///< All lanes, by tid.
    std::vector<std::shared_ptr<Lane>> free_lanes; ///< Returned by dead threads.
    std::vector<std::string> names;
    std::unordered_map<std::string, std::uint32_t> name_ids;
    /// Bumped by trace_reset(); threads holding a lane from an older
    /// generation drop it and lease a fresh one.
    std::atomic<std::uint64_t> generation{1};
    std::size_t capacity_override = 0;

    std::mutex timeline_mu;
    std::vector<ExplorationTimeline> timelines;
    std::uint64_t next_timeline_id = 0;

    std::size_t lane_capacity_locked() const {
        if (capacity_override > 0) return capacity_override;
        if (const auto v = env_positive_u64("DCFT_TRACE_BUF"))
            return static_cast<std::size_t>(*v);
        return kDefaultLaneCapacity;
    }
};

TraceState& state() {
    static TraceState* s = new TraceState();  // never destroyed
    return *s;
}

/// Thread-local lease on a lane. The destructor returns the lane to the
/// free list (unless a reset invalidated it), so the short-lived workers
/// parallel_chunks spawns every level reuse a bounded pool of lanes and the
/// export shows stable worker lanes instead of thousands of one-shot tids.
struct LaneLease {
    std::shared_ptr<Lane> lane;
    std::uint64_t generation = 0;

    ~LaneLease() { release(); }

    void release() {
        if (!lane) return;
        auto& s = state();
        const std::lock_guard<std::mutex> lock(s.mu);
        if (generation == s.generation.load(std::memory_order_relaxed))
            s.free_lanes.push_back(std::move(lane));
        lane.reset();
    }

    Lane& acquire() {
        auto& s = state();
        const std::uint64_t gen = s.generation.load(std::memory_order_relaxed);
        if (lane && generation == gen) return *lane;
        release();
        const std::lock_guard<std::mutex> lock(s.mu);
        // Re-read under the lock: a reset may have raced the check above.
        generation = s.generation.load(std::memory_order_relaxed);
        if (!s.free_lanes.empty()) {
            lane = std::move(s.free_lanes.back());
            s.free_lanes.pop_back();
        } else {
            lane = std::make_shared<Lane>(
                static_cast<std::uint32_t>(s.lanes.size()),
                s.lane_capacity_locked());
            s.lanes.push_back(lane);
        }
        return *lane;
    }
};

thread_local LaneLease t_lease;

void emit(TracePhase phase, std::uint32_t name, std::uint64_t arg) {
    if (!trace_enabled()) return;
    Lane& lane = t_lease.acquire();
    const std::size_t n = lane.size.load(std::memory_order_relaxed);
    if (n >= lane.events.size()) {
        // Full: drop-newest, never block, never grow. Balance is repaired
        // at snapshot time (dropped Ends leave their Begins unclosed).
        lane.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    lane.events[n] = TraceEvent{now_ns(), arg, name, phase};
    lane.size.store(n + 1, std::memory_order_release);
}

/// Removes orphan End events and closes unfinished Begins at the lane's
/// last timestamp, so every snapshot is balanced per lane no matter which
/// suffix of the stream overflow dropped.
void repair_balance(TraceLane& lane) {
    std::vector<std::size_t> open;  // indices of unmatched Begins
    std::vector<TraceEvent> kept;
    kept.reserve(lane.events.size());
    for (const TraceEvent& ev : lane.events) {
        switch (ev.phase) {
            case TracePhase::kBegin:
                open.push_back(kept.size());
                kept.push_back(ev);
                break;
            case TracePhase::kEnd:
                if (open.empty()) continue;  // orphan End: drop
                open.pop_back();
                kept.push_back(ev);
                break;
            case TracePhase::kInstant:
                kept.push_back(ev);
                break;
        }
    }
    const std::uint64_t last_ts =
        kept.empty() ? 0 : kept.back().ts_ns;
    // Close inner spans first so the synthesized Ends nest correctly.
    for (auto it = open.rbegin(); it != open.rend(); ++it) {
        kept.push_back(TraceEvent{std::max(last_ts, kept[*it].ts_ns), 0,
                                  kept[*it].name, TracePhase::kEnd});
    }
    lane.events = std::move(kept);
}

const char* phase_str(TracePhase p) {
    switch (p) {
        case TracePhase::kBegin: return "B";
        case TracePhase::kEnd: return "E";
        case TracePhase::kInstant: return "i";
    }
    return "i";
}

}  // namespace

bool trace_enabled() {
    int v = trace_state().load(std::memory_order_relaxed);
    if (v < 0) {
        v = env_flag_enabled("DCFT_TRACE") ? 1 : 0;
        int expected = -1;
        trace_state().compare_exchange_strong(expected, v,
                                              std::memory_order_relaxed);
        v = trace_state().load(std::memory_order_relaxed);
    }
    return v == 1;
}

void set_trace_enabled(bool on) {
    trace_state().store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint32_t trace_name(std::string_view path) {
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.name_ids.find(std::string(path));
    if (it != s.name_ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(s.names.size());
    s.names.emplace_back(path);
    s.name_ids.emplace(s.names.back(), id);
    return id;
}

void trace_begin(std::uint32_t name, std::uint64_t arg) {
    emit(TracePhase::kBegin, name, arg);
}

void trace_end(std::uint32_t name) { emit(TracePhase::kEnd, name, 0); }

void trace_instant(std::uint32_t name, std::uint64_t arg) {
    emit(TracePhase::kInstant, name, arg);
}

TraceSnapshot trace_snapshot() {
    auto& s = state();
    TraceSnapshot snap;
    {
        const std::lock_guard<std::mutex> lock(s.mu);
        snap.names = s.names;
        snap.lanes.reserve(s.lanes.size());
        for (const auto& lane : s.lanes) {
            TraceLane out;
            out.tid = lane->tid;
            out.dropped = lane->dropped.load(std::memory_order_relaxed);
            const std::size_t n = lane->size.load(std::memory_order_acquire);
            out.events.assign(lane->events.begin(), lane->events.begin() + n);
            snap.lanes.push_back(std::move(out));
        }
    }
    for (TraceLane& lane : snap.lanes) {
        repair_balance(lane);
        snap.dropped_total += lane.dropped;
    }
    if (enabled())
        Registry::global().counter("obs/trace/dropped").set(
            snap.dropped_total);
    return snap;
}

void trace_reset() {
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.lanes.clear();
    s.free_lanes.clear();
    s.generation.fetch_add(1, std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::size_t events) {
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.capacity_override = events;
}

std::string chrome_trace_json() {
    const TraceSnapshot snap = trace_snapshot();
    // Rebase to the first event so Perfetto opens at t=0 instead of
    // process-uptime nanoseconds.
    std::uint64_t base = ~std::uint64_t{0};
    for (const TraceLane& lane : snap.lanes)
        for (const TraceEvent& ev : lane.events) base = std::min(base, ev.ts_ns);
    if (base == ~std::uint64_t{0}) base = 0;

    JsonWriter w;
    w.begin_object();
    w.key("traceEvents").begin_array();
    for (const TraceLane& lane : snap.lanes) {
        for (const TraceEvent& ev : lane.events) {
            w.begin_object();
            w.kv("name", snap.names[ev.name]);
            w.kv("cat", "dcft");
            w.kv("ph", phase_str(ev.phase));
            w.kv("ts", static_cast<double>(ev.ts_ns - base) / 1000.0);
            w.kv("pid", 1);
            w.kv("tid", lane.tid);
            if (ev.phase == TracePhase::kInstant) w.kv("s", "t");
            if (ev.arg != 0 && ev.phase != TracePhase::kEnd) {
                w.key("args").begin_object();
                w.kv("v", ev.arg);
                w.end_object();
            }
            w.end_object();
        }
    }
    w.end_array();
    w.kv("displayTimeUnit", "ms");
    w.key("otherData").begin_object();
    w.kv("tool", "dcft");
    w.kv("dropped", snap.dropped_total);
    w.end_object();
    w.end_object();
    return w.str();
}

bool write_chrome_trace(const std::string& path, std::string* error) {
    const std::string json = chrome_trace_json();
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        if (error) *error = "cannot open " + path + " for writing";
        return false;
    }
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
        std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok && error) *error = "short write to " + path;
    return ok;
}

void timeline_publish(ExplorationTimeline timeline) {
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.timeline_mu);
    timeline.id = s.next_timeline_id++;
    if (s.timelines.size() >= kMaxTimelines) return;  // keep-oldest
    s.timelines.push_back(std::move(timeline));
}

std::vector<ExplorationTimeline> timeline_snapshot() {
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.timeline_mu);
    return s.timelines;
}

void timeline_reset() {
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.timeline_mu);
    s.timelines.clear();
    s.next_timeline_id = 0;
}

}  // namespace dcft::obs
