#include "obs/proc_stats.hpp"

#if defined(__linux__)
#include <malloc.h>
#include <sys/sysinfo.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#endif

#if !defined(_WIN32)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace dcft::obs {

#if defined(__linux__)

std::optional<std::uint64_t> current_rss_bytes() {
    FILE* f = std::fopen("/proc/self/statm", "r");
    if (!f) return std::nullopt;
    unsigned long long vm_pages = 0, rss_pages = 0;
    const int matched = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
    std::fclose(f);
    if (matched != 2) return std::nullopt;
    const long page = sysconf(_SC_PAGESIZE);
    if (page <= 0) return std::nullopt;
    return rss_pages * static_cast<std::uint64_t>(page);
}

std::optional<std::uint64_t> peak_rss_bytes() {
    FILE* f = std::fopen("/proc/self/status", "r");
    if (!f) return std::nullopt;
    char line[256];
    std::optional<std::uint64_t> peak;
    while (std::fgets(line, sizeof line, f)) {
        unsigned long long kb = 0;
        if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
            peak = kb * 1024ull;
            break;
        }
    }
    std::fclose(f);
    return peak;
}

void reset_peak_rss() {
    // Return freed heap pages to the OS first so the next watermark
    // reflects the upcoming workload, not this process's history.
    malloc_trim(0);
    FILE* f = std::fopen("/proc/self/clear_refs", "w");
    if (!f) return;
    std::fputs("5", f);  // 5 = reset peak RSS watermark
    std::fclose(f);
}

#else  // !__linux__

std::optional<std::uint64_t> current_rss_bytes() { return std::nullopt; }
std::optional<std::uint64_t> peak_rss_bytes() { return std::nullopt; }
void reset_peak_rss() {}

#endif

HostInfo host_info() {
    HostInfo info;
    info.kernel = "unknown";
#if !defined(_WIN32)
    if (const long cores = sysconf(_SC_NPROCESSORS_ONLN); cores > 0)
        info.cores = static_cast<std::uint64_t>(cores);
    if (const long page = sysconf(_SC_PAGESIZE); page > 0)
        info.page_size_bytes = static_cast<std::uint64_t>(page);
    if (struct utsname un; uname(&un) == 0)
        info.kernel = std::string(un.sysname) + " " + un.release;
#endif
#if defined(__linux__)
    if (struct sysinfo si; sysinfo(&si) == 0)
        info.total_ram_bytes = static_cast<std::uint64_t>(si.totalram) *
                               static_cast<std::uint64_t>(si.mem_unit);
#endif
    return info;
}

std::optional<double> peak_rss_mb() {
    const auto bytes = peak_rss_bytes();
    if (!bytes) return std::nullopt;
    return static_cast<double>(*bytes) / (1024.0 * 1024.0);
}

}  // namespace dcft::obs
