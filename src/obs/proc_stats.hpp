// Process-level resource statistics from the kernel.
//
// The verifier's memory story (three-tier interner, CSR arrays, mmap spill)
// is only auditable if every tool measures RSS the same way. This header
// centralises the /proc parsing that used to live in bench_verifier: current
// resident set (statm), peak resident set (VmHWM from /proc/self/status),
// and the clear_refs reset that lets one process measure per-workload peaks.
// Consumers: the bench_verifier memory columns and the live progress
// heartbeat (obs/progress.hpp).
//
// On non-Linux platforms every query returns nullopt and the reset is a
// no-op; callers are expected to omit the field (the heartbeat simply
// prints no rss=… segment) rather than fail.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace dcft::obs {

/// Static facts about the machine a run executed on, embedded in every
/// dcft.report envelope (the "host" block) so perf numbers — bench series,
/// exploration timelines, store cold/warm deltas — are interpretable after
/// the fact. Values that cannot be determined are 0 / "unknown" rather
/// than errors; the envelope always carries the block.
struct HostInfo {
    std::uint64_t cores = 0;            ///< online logical CPUs
    std::uint64_t page_size_bytes = 0;  ///< system page size
    std::string kernel;                 ///< "<sysname> <release>" (uname)
    std::uint64_t total_ram_bytes = 0;  ///< physical RAM (sysinfo)
};

/// Queries the host facts above. Cheap enough to call per report.
HostInfo host_info();

/// Current resident set size in bytes (/proc/self/statm, second field,
/// times the page size). nullopt when the file is unavailable.
std::optional<std::uint64_t> current_rss_bytes();

/// Peak resident set size in bytes (VmHWM from /proc/self/status).
/// nullopt when the file or the field is unavailable.
std::optional<std::uint64_t> peak_rss_bytes();

/// peak_rss_bytes() in MiB, for human-facing tables.
std::optional<double> peak_rss_mb();

/// Resets the kernel's peak-RSS watermark (writes "5" to
/// /proc/self/clear_refs) after returning freed arenas to the OS via
/// malloc_trim, so successive workloads in one process measure their own
/// peaks. Best-effort: silently does nothing where unsupported.
void reset_peak_rss();

}  // namespace dcft::obs
