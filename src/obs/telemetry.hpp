// Unified telemetry: named atomic counters and scoped span timers with a
// hierarchical phase tree (src/obs/, see DESIGN.md §8).
//
// Design constraints, in order:
//  1. Near-zero overhead when disabled. Every recording helper first loads
//     one relaxed atomic bool (`enabled()`); when telemetry is off that load
//     is the *entire* cost, so the verifier's hot loops stay at their PR 1
//     speeds. Hot paths additionally accumulate into local variables and
//     flush once per phase, so even the enabled path never puts an atomic
//     RMW inside a per-state loop.
//  2. Thread-safe. The registry is a mutex-guarded map from path to a
//     heap-stable Counter/Timer whose cells are std::atomic — concurrent
//     checker threads and simulator workers record without coordination
//     once they hold a reference.
//  3. Deterministic where the verifier is deterministic. Exploration
//     counters (levels, frontier sizes, interner hits/misses, edge counts)
//     are derived from the canonical BFS, so their values are identical for
//     every DCFT_VERIFIER_THREADS setting — a property the test suite
//     pins (tests/obs/telemetry_test).
//
// Naming convention: '/'-separated lower_snake paths whose prefixes form
// the phase tree, e.g. "verify/explore/level", "verify/closure",
// "sim/step", "synth/fixpoint". RunReport (obs/run_report.hpp) serializes
// the tree from these paths.
//
// Enabling: the DCFT_TELEMETRY environment variable (any value except
// "0"/"" enables; read once, at first use) or set_enabled(true) from code
// (dcft_cli --report does this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dcft::obs {

/// Is telemetry collection on? One relaxed atomic load (after the first
/// call, which consults DCFT_TELEMETRY).
bool enabled();

/// Programmatic override of the DCFT_TELEMETRY toggle (tests, --report).
void set_enabled(bool on);

/// A named monotonic counter. Heap-stable: references returned by the
/// registry stay valid for the process lifetime.
class Counter {
public:
    void add(std::uint64_t delta = 1) {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    /// Records v if it exceeds the current value (high-water mark).
    void record_max(std::uint64_t v) {
        std::uint64_t cur = value_.load(std::memory_order_relaxed);
        while (cur < v && !value_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }
    /// Overwrites the value (gauges, e.g. resolved thread counts).
    void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
    std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall time and call count for one phase path.
class Timer {
public:
    void add(std::uint64_t ns, std::uint64_t calls = 1) {
        ns_.fetch_add(ns, std::memory_order_relaxed);
        calls_.fetch_add(calls, std::memory_order_relaxed);
    }
    std::uint64_t nanos() const { return ns_.load(std::memory_order_relaxed); }
    std::uint64_t calls() const {
        return calls_.load(std::memory_order_relaxed);
    }
    /// Zeroes the accumulators (Registry::reset()).
    void reset() {
        ns_.store(0, std::memory_order_relaxed);
        calls_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> ns_{0};
    std::atomic<std::uint64_t> calls_{0};
};

/// Process-wide registry of counters and timers, keyed by phase path.
class Registry {
public:
    /// The process registry every recording helper targets.
    static Registry& global();

    /// Counter/timer at `path`, created on first use. Thread-safe; the
    /// returned reference is stable for the registry's lifetime.
    Counter& counter(std::string_view path);
    Timer& timer(std::string_view path);

    struct CounterSample {
        std::string path;
        std::uint64_t value = 0;
    };
    struct TimerSample {
        std::string path;
        std::uint64_t ns = 0;
        std::uint64_t calls = 0;
    };

    /// Point-in-time snapshots, sorted by path (deterministic emission).
    std::vector<CounterSample> counters() const;
    std::vector<TimerSample> timers() const;

    /// Zeroes every counter and timer (registrations survive). Tests use
    /// this to compare runs; concurrent recorders see a clean slate.
    void reset();

private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
};

// -- recording helpers (no-ops when disabled) ------------------------------

/// Adds `delta` to the counter at `path` iff telemetry is enabled.
inline void count(std::string_view path, std::uint64_t delta = 1) {
    if (enabled()) Registry::global().counter(path).add(delta);
}

/// High-water-mark record iff enabled.
inline void count_max(std::string_view path, std::uint64_t v) {
    if (enabled()) Registry::global().counter(path).record_max(v);
}

/// Gauge write iff enabled.
inline void record(std::string_view path, std::uint64_t v) {
    if (enabled()) Registry::global().counter(path).set(v);
}

/// Monotonic clock reading in nanoseconds (steady).
std::uint64_t now_ns();

/// RAII span timer: measures its own lifetime into the timer at `path`.
/// When telemetry is disabled at construction the span is inert (one
/// relaxed load, no clock read).
class ScopedSpan {
public:
    explicit ScopedSpan(std::string_view path) {
        if (enabled()) {
            timer_ = &Registry::global().timer(path);
            start_ns_ = now_ns();
        }
    }
    ~ScopedSpan() {
        if (timer_ != nullptr) timer_->add(now_ns() - start_ns_);
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    Timer* timer_ = nullptr;
    std::uint64_t start_ns_ = 0;
};

}  // namespace dcft::obs
