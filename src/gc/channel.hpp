// Bounded FIFO channels over the guarded-command kernel.
//
// The paper's programs communicate through shared variables; its systems
// (and the authors' application list) also cover message-passing designs.
// A Channel packs a bounded queue of small values into ONE finite-domain
// variable of the state space — contents and length together — so
// channel systems stay inside the explicit-state framework: sends,
// receives, and the classic channel faults (loss, duplication,
// corruption) are ordinary actions, checkable like everything else.
//
// Encoding: a queue [v0(head), v1, ..., v_{L-1}] with values in
// {0..d-1}, L <= capacity, is the integer offset(L) + sum v_i * d^i,
// where offset(L) = 1 + d + ... + d^{L-1}. The variable's domain is
// offset(capacity+1).
#pragma once

#include <functional>
#include <string>

#include "gc/action.hpp"
#include "gc/predicate.hpp"
#include "gc/program.hpp"
#include "gc/state_space.hpp"

namespace dcft {

/// A bounded FIFO channel living in one variable of a StateSpace.
///
/// Construct channels while building the space (before freeze()); use the
/// accessors and action factories after.
class Channel {
public:
    /// Declares the backing variable `name` on `builder`.
    Channel(StateSpace& builder, std::string name, int capacity,
            Value value_domain);

    const std::string& name() const { return name_; }
    VarId var() const { return var_; }
    int capacity() const { return capacity_; }
    Value value_domain() const { return value_domain_; }

    // --- State accessors. ---
    int size(const StateSpace& space, StateIndex s) const;
    bool empty(const StateSpace& space, StateIndex s) const;
    bool full(const StateSpace& space, StateIndex s) const;
    /// Precondition: !empty.
    Value front(const StateSpace& space, StateIndex s) const;
    /// Precondition: !full.
    StateIndex push(const StateSpace& space, StateIndex s, Value v) const;
    /// Precondition: !empty.
    StateIndex pop(const StateSpace& space, StateIndex s) const;

    // --- Predicates. ---
    Predicate is_empty() const;
    Predicate is_full() const;
    Predicate nonempty() const;

    // --- Action factories. ---
    /// `name :: guard /\ !full --> push(value_of(state))`.
    Action send(std::string name, const Predicate& guard,
                std::function<Value(const StateSpace&, StateIndex)>
                    value_of) const;

    /// `name :: guard /\ !empty --> s' = on_receive(pop(s), front(s))`.
    /// on_receive gets the state with the message already popped, plus the
    /// received value, and returns the final state.
    Action receive(std::string name, const Predicate& guard,
                   std::function<StateIndex(const StateSpace&, StateIndex,
                                            Value)>
                       on_receive) const;

    // --- Fault factories (the classic channel fault classes). ---
    /// Drops the head message.
    Action lose(std::string name) const;
    /// Re-enqueues a copy of the head at the tail (needs room).
    Action duplicate(std::string name) const;
    /// Replaces the head with any different value (nondeterministic).
    Action corrupt(std::string name) const;

private:
    std::string name_;
    VarId var_;
    int capacity_;
    Value value_domain_;
    std::vector<StateIndex> offset_;  ///< offset_[L], L = 0..capacity

    StateIndex encode_raw(const std::vector<Value>& queue) const;
    std::vector<Value> decode_raw(StateIndex raw) const;
    StateIndex raw(const StateSpace& space, StateIndex s) const;
};

}  // namespace dcft
