#include "gc/state_space.hpp"

#include <atomic>
#include <limits>

#include "common/check.hpp"

namespace dcft {

std::uint64_t StateSpace::next_uid() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

StateSpace::StateSpace() : uid_(next_uid()) {}

StateSpace::StateSpace(const StateSpace& other)
    : uid_(next_uid()),
      vars_(other.vars_),
      strides_(other.strides_),
      num_states_(other.num_states_),
      frozen_(other.frozen_) {}

StateSpace& StateSpace::operator=(const StateSpace& other) {
    if (this == &other) return *this;
    uid_ = next_uid();  // new content, new identity
    vars_ = other.vars_;
    strides_ = other.strides_;
    num_states_ = other.num_states_;
    frozen_ = other.frozen_;
    return *this;
}

void VarSet::add(VarId v) {
    DCFT_EXPECTS(v < bits_.size(), "VarSet::add: variable out of range");
    bits_[v] = true;
}

bool VarSet::contains(VarId v) const {
    return v < bits_.size() && bits_[v];
}

std::size_t VarSet::count() const {
    std::size_t n = 0;
    for (bool b : bits_) n += b ? 1 : 0;
    return n;
}

std::vector<VarId> VarSet::members() const {
    std::vector<VarId> out;
    for (VarId v = 0; v < bits_.size(); ++v)
        if (bits_[v]) out.push_back(v);
    return out;
}

VarSet VarSet::unioned(const VarSet& other) const {
    DCFT_EXPECTS(bits_.size() == other.bits_.size(),
                 "VarSet::unioned: mismatched universes");
    VarSet out(bits_.size());
    for (VarId v = 0; v < bits_.size(); ++v)
        out.bits_[v] = bits_[v] || other.bits_[v];
    return out;
}

VarSet VarSet::complement() const {
    VarSet out(bits_.size());
    for (VarId v = 0; v < bits_.size(); ++v) out.bits_[v] = !bits_[v];
    return out;
}

VarId StateSpace::add_variable(std::string name, Value domain_size) {
    DCFT_EXPECTS(!frozen_, "StateSpace::add_variable after freeze");
    DCFT_EXPECTS(domain_size > 0, "variable domain must be nonempty");
    DCFT_EXPECTS(!has_variable(name), "duplicate variable name: " + name);
    vars_.push_back(Variable{std::move(name), domain_size, {}});
    return vars_.size() - 1;
}

VarId StateSpace::add_variable(std::string name,
                               std::vector<std::string> value_names) {
    DCFT_EXPECTS(!value_names.empty(), "named domain must be nonempty");
    const auto id = add_variable(std::move(name),
                                 static_cast<Value>(value_names.size()));
    vars_[id].value_names = std::move(value_names);
    return id;
}

void StateSpace::freeze() {
    DCFT_EXPECTS(!frozen_, "StateSpace::freeze called twice");
    DCFT_EXPECTS(!vars_.empty(), "StateSpace must declare >= 1 variable");
    strides_.resize(vars_.size());
    StateIndex product = 1;
    for (VarId v = 0; v < vars_.size(); ++v) {
        strides_[v] = product;
        const auto domain = static_cast<StateIndex>(vars_[v].domain_size);
        DCFT_EXPECTS(product <=
                         std::numeric_limits<StateIndex>::max() / domain,
                     "state space too large for a 64-bit index");
        product *= domain;
    }
    num_states_ = product;
    frozen_ = true;
}

const Variable& StateSpace::variable(VarId v) const {
    DCFT_EXPECTS(v < vars_.size(), "variable id out of range");
    return vars_[v];
}

VarId StateSpace::find(std::string_view name) const {
    for (VarId v = 0; v < vars_.size(); ++v)
        if (vars_[v].name == name) return v;
    throw ContractError("StateSpace::find: no variable named '" +
                        std::string(name) + "'");
}

bool StateSpace::has_variable(std::string_view name) const {
    for (const auto& var : vars_)
        if (var.name == name) return true;
    return false;
}

StateIndex StateSpace::num_states() const {
    DCFT_EXPECTS(frozen_, "StateSpace must be frozen");
    return num_states_;
}

Value StateSpace::get(StateIndex s, VarId v) const {
    DCFT_EXPECTS(frozen_, "StateSpace must be frozen");
    DCFT_EXPECTS(v < vars_.size(), "variable id out of range");
    return static_cast<Value>(
        (s / strides_[v]) % static_cast<StateIndex>(vars_[v].domain_size));
}

StateIndex StateSpace::set(StateIndex s, VarId v, Value value) const {
    DCFT_EXPECTS(frozen_, "StateSpace must be frozen");
    DCFT_EXPECTS(v < vars_.size(), "variable id out of range");
    DCFT_EXPECTS(value >= 0 && value < vars_[v].domain_size,
                 "value out of domain for variable " + vars_[v].name);
    const Value old = get(s, v);
    return s + (static_cast<StateIndex>(value) - static_cast<StateIndex>(old)) *
                   strides_[v];
}

StateIndex StateSpace::encode(std::span<const Value> values) const {
    DCFT_EXPECTS(frozen_, "StateSpace must be frozen");
    DCFT_EXPECTS(values.size() == vars_.size(),
                 "encode: one value per variable required");
    StateIndex s = 0;
    for (VarId v = 0; v < vars_.size(); ++v) {
        DCFT_EXPECTS(values[v] >= 0 && values[v] < vars_[v].domain_size,
                     "encode: value out of domain for " + vars_[v].name);
        s += static_cast<StateIndex>(values[v]) * strides_[v];
    }
    return s;
}

std::vector<Value> StateSpace::decode(StateIndex s) const {
    DCFT_EXPECTS(frozen_, "StateSpace must be frozen");
    std::vector<Value> values(vars_.size());
    for (VarId v = 0; v < vars_.size(); ++v) values[v] = get(s, v);
    return values;
}

StateIndex StateSpace::project(StateIndex s, const VarSet& vars) const {
    DCFT_EXPECTS(frozen_, "StateSpace must be frozen");
    DCFT_EXPECTS(vars.universe_size() == vars_.size(),
                 "project: VarSet from a different space");
    StateIndex out = 0;
    StateIndex stride = 1;
    for (VarId v = 0; v < vars_.size(); ++v) {
        if (!vars.contains(v)) continue;
        out += static_cast<StateIndex>(get(s, v)) * stride;
        stride *= static_cast<StateIndex>(vars_[v].domain_size);
    }
    return out;
}

std::string StateSpace::format(StateIndex s) const {
    std::string out = "{";
    for (VarId v = 0; v < vars_.size(); ++v) {
        if (v > 0) out += ", ";
        out += vars_[v].name;
        out += '=';
        const Value value = get(s, v);
        if (!vars_[v].value_names.empty())
            out += vars_[v].value_names[static_cast<std::size_t>(value)];
        else
            out += std::to_string(value);
    }
    out += '}';
    return out;
}

VarSet StateSpace::full_varset() const {
    VarSet out(num_vars());
    for (VarId v = 0; v < num_vars(); ++v) out.add(v);
    return out;
}

VarSet StateSpace::varset(
    std::initializer_list<std::string_view> names) const {
    VarSet out(num_vars());
    for (auto name : names) out.add(find(name));
    return out;
}

std::shared_ptr<const StateSpace> make_space(std::vector<Variable> vars) {
    auto space = std::make_shared<StateSpace>();
    for (auto& var : vars) {
        if (var.value_names.empty())
            space->add_variable(std::move(var.name), var.domain_size);
        else
            space->add_variable(std::move(var.name),
                                std::move(var.value_names));
    }
    space->freeze();
    return space;
}

}  // namespace dcft
