#include "gc/composition.hpp"

#include "common/check.hpp"

namespace dcft {

Program parallel(const Program& p, const Program& q) {
    DCFT_EXPECTS(p.space_ptr() == q.space_ptr(),
                 "parallel: programs must share a state space");
    Program out(p.space_ptr(), p.vars().unioned(q.vars()),
                "(" + p.name() + " || " + q.name() + ")");
    for (const auto& ac : p.actions()) out.add_action(ac);
    for (const auto& ac : q.actions()) out.add_action(ac);
    return out;
}

Program restrict_program(const Predicate& z, const Program& p) {
    Program out(p.space_ptr(), p.vars(),
                "(" + z.name() + " /\\ " + p.name() + ")");
    for (const auto& ac : p.actions()) out.add_action(ac.restricted(z));
    return out;
}

Program sequence(const Program& p, const Predicate& z, const Program& q) {
    Program out = parallel(p, restrict_program(z, q));
    return out.renamed("(" + p.name() + " ;_" + z.name() + " " + q.name() +
                       ")");
}

Program with_faults(const Program& p, const FaultClass& f) {
    DCFT_EXPECTS(p.space_ptr().get() == &f.space(),
                 "with_faults: program and faults must share a state space");
    Program out(p.space_ptr(), p.vars(),
                "(" + p.name() + " [] " + f.name() + ")");
    for (const auto& ac : p.actions()) out.add_action(ac);
    for (const auto& ac : f.actions()) out.add_action(ac);
    return out;
}

}  // namespace dcft
