// Finite-domain variables and packed program states.
//
// The paper (Section 2.1) defines a program over variables with predefined
// nonempty domains; a state assigns each variable a value from its domain.
// We represent a state as a single mixed-radix index (StateIndex) into the
// product of the variable domains. This makes the whole state space
// enumerable, states hashable and O(1)-copyable, and single-variable
// updates cheap — the representation the explicit-state verifier relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dcft {

/// Value of a variable. Values are always in [0, domain_size).
using Value = std::int64_t;

/// A packed program state: a mixed-radix index into the product of the
/// variable domains of a StateSpace.
using StateIndex = std::uint64_t;

/// Identifier of a variable within a StateSpace (its declaration order).
using VarId = std::size_t;

/// A finite-domain program variable.
///
/// `value_names`, when non-empty, gives a printable name to each value;
/// it is used only for formatting and does not affect semantics.
struct Variable {
    std::string name;
    Value domain_size = 0;
    std::vector<std::string> value_names;  ///< optional, size == domain_size
};

/// A set of variables of one StateSpace, used for projections (Section 2.2.1
/// of the paper: the projection of a state of p' on p keeps only p's
/// variables).
class VarSet {
public:
    VarSet() = default;
    explicit VarSet(std::size_t universe_size) : bits_(universe_size, false) {}

    void add(VarId v);
    bool contains(VarId v) const;
    std::size_t universe_size() const { return bits_.size(); }
    std::size_t count() const;
    /// Variables in the set, in increasing VarId order.
    std::vector<VarId> members() const;

    /// Set union; both sets must share a universe size.
    VarSet unioned(const VarSet& other) const;
    /// Complement within the universe.
    VarSet complement() const;

private:
    std::vector<bool> bits_;
};

/// The product space of a fixed set of finite-domain variables.
///
/// Immutable once `freeze()` is called (adding variables after freezing, or
/// using encode/decode before freezing, is a contract violation). Programs
/// hold a shared_ptr<const StateSpace>, so a space outlives every program,
/// predicate, and transition system built over it.
class StateSpace {
public:
    StateSpace();

    /// Copies take a *fresh* uid: a copy is a distinct object whose
    /// identity must not alias the original in identity-keyed caches
    /// (verify/exploration_cache.hpp). Moves carry the uid along — the
    /// moved-from object is dead, so its identity transfers.
    StateSpace(const StateSpace& other);
    StateSpace& operator=(const StateSpace& other);
    StateSpace(StateSpace&&) noexcept = default;
    StateSpace& operator=(StateSpace&&) noexcept = default;

    /// Process-unique, monotonically increasing identity of this object.
    /// Never reused — unlike the address of a destroyed space, which the
    /// allocator may hand to an unrelated new space (the ABA hazard the
    /// exploration cache's stale-hit regression test pins).
    std::uint64_t uid() const { return uid_; }

    /// Declares a variable with values {0, ..., domain_size-1}.
    VarId add_variable(std::string name, Value domain_size);

    /// Declares a variable whose values are named (domain size = #names).
    VarId add_variable(std::string name, std::vector<std::string> value_names);

    /// Finishes construction; computes strides. Must be called exactly once.
    void freeze();
    bool frozen() const { return frozen_; }

    std::size_t num_vars() const { return vars_.size(); }
    const Variable& variable(VarId v) const;

    /// VarId of the variable with the given name; throws if absent.
    VarId find(std::string_view name) const;
    bool has_variable(std::string_view name) const;

    /// Total number of states (product of domain sizes). Requires frozen.
    StateIndex num_states() const;

    /// Value of variable v in state s.
    Value get(StateIndex s, VarId v) const;

    /// State equal to s except that variable v holds `value`.
    StateIndex set(StateIndex s, VarId v, Value value) const;

    /// Packs a full assignment (one value per variable, declaration order).
    StateIndex encode(std::span<const Value> values) const;

    /// Unpacks a state into one value per variable.
    std::vector<Value> decode(StateIndex s) const;

    /// Mixed-radix index of the projection of s onto `vars` (the projected
    /// sub-space orders variables by increasing VarId). Two states agree on
    /// `vars` iff their projections are equal.
    StateIndex project(StateIndex s, const VarSet& vars) const;

    /// Human-readable rendering, e.g. "{x=2, ok=true}".
    std::string format(StateIndex s) const;

    /// An empty VarSet sized to this space.
    VarSet empty_varset() const { return VarSet(num_vars()); }
    /// A VarSet containing every variable of this space.
    VarSet full_varset() const;
    /// A VarSet from variable names (each must exist).
    VarSet varset(std::initializer_list<std::string_view> names) const;

private:
    static std::uint64_t next_uid();

    std::uint64_t uid_ = 0;
    std::vector<Variable> vars_;
    std::vector<StateIndex> strides_;  ///< strides_[v] = prod of domains < v
    StateIndex num_states_ = 1;
    bool frozen_ = false;
};

/// Convenience: builds and freezes a space in one expression.
std::shared_ptr<const StateSpace> make_space(std::vector<Variable> vars);

}  // namespace dcft
