// State predicates (Section 2.1 of the paper).
//
// A state predicate is a boolean expression over the variables of a
// program; the paper uses predicates and the sets of states they
// characterize interchangeably. Predicate wraps an evaluation function plus
// a printable name, and provides the boolean algebra (&&, ||, !, implies)
// the paper's constructions use.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "gc/state_space.hpp"

namespace dcft {

/// A state predicate over a StateSpace.
///
/// Value-semantic and cheap to copy (shared immutable implementation).
/// Predicates are pure: evaluation must not depend on anything but the
/// state. A default-constructed Predicate is `top()` (true everywhere).
class Predicate {
public:
    using Fn = std::function<bool(const StateSpace&, StateIndex)>;

    /// The predicate `true`.
    Predicate();

    /// Named predicate from an evaluation function.
    Predicate(std::string name, Fn fn);

    /// The constant predicates.
    static Predicate top();
    static Predicate bottom();

    /// var == value, var resolved now against `space`.
    static Predicate var_eq(const StateSpace& space, std::string_view var,
                            Value value);
    /// var != value.
    static Predicate var_ne(const StateSpace& space, std::string_view var,
                            Value value);

    bool eval(const StateSpace& space, StateIndex s) const;
    bool operator()(const StateSpace& space, StateIndex s) const {
        return eval(space, s);
    }

    const std::string& name() const;

    /// Returns a copy carrying a different display name.
    Predicate renamed(std::string name) const;

    friend Predicate operator&&(const Predicate& a, const Predicate& b);
    friend Predicate operator||(const Predicate& a, const Predicate& b);
    friend Predicate operator!(const Predicate& a);

private:
    struct Impl;
    std::shared_ptr<const Impl> impl_;
};

/// a => b (pointwise).
Predicate implies(const Predicate& a, const Predicate& b);

/// True iff a => b holds at every state of the space (exhaustive check).
bool implies_everywhere(const StateSpace& space, const Predicate& a,
                        const Predicate& b);

/// True iff a and b hold at exactly the same states (exhaustive check).
bool equivalent(const StateSpace& space, const Predicate& a,
                const Predicate& b);

/// Number of states satisfying p (exhaustive count).
StateIndex count_satisfying(const StateSpace& space, const Predicate& p);

}  // namespace dcft
