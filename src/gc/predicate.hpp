// State predicates (Section 2.1 of the paper).
//
// A state predicate is a boolean expression over the variables of a
// program; the paper uses predicates and the sets of states they
// characterize interchangeably. Predicate wraps an evaluation function plus
// a printable name, and provides the boolean algebra (&&, ||, !, implies)
// the paper's constructions use.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "gc/state_space.hpp"

namespace dcft {

/// A state predicate over a StateSpace.
///
/// Value-semantic and cheap to copy (shared immutable implementation).
/// Predicates are pure: evaluation must not depend on anything but the
/// state. A default-constructed Predicate is `top()` (true everywhere).
///
/// A predicate may additionally be *set-backed*: built from (or composed
/// out of) an explicit bit vector over the packed state indices. The bulk
/// paths of the verifier (materialization, implication checks, counting)
/// detect backed predicates and run word-level set algebra instead of
/// per-state std::function calls; the boolean operators on two backed
/// predicates produce a backed result eagerly in O(|space|/64).
class Predicate {
public:
    using Fn = std::function<bool(const StateSpace&, StateIndex)>;

    /// Structural shape of a predicate, retained alongside the evaluation
    /// function wherever it is known. The action-kernel compiler
    /// (verify/action_kernel.hpp) lowers structured predicates to a small
    /// bytecode evaluated without std::function dispatch; kOpaque nodes
    /// (arbitrary lambdas) fall back to calling `eval`. Structure never
    /// affects semantics — `eval` is always the source of truth, and the
    /// differential tests pin bytecode == eval on every state.
    enum class NodeKind : std::uint8_t {
        kTrue,        ///< constant true
        kFalse,       ///< constant false
        kVarEqConst,  ///< var(node_var) == node_value
        kVarNeConst,  ///< var(node_var) != node_value
        kVarEqVar,    ///< var(node_var) == var(node_var2)
        kVarNeVar,    ///< var(node_var) != var(node_var2)
        kAnd,         ///< conjunction of node_operands()
        kOr,          ///< disjunction of node_operands()
        kNot,         ///< negation of node_operands()[0]
        kBacked,      ///< set-backed: backing_bits()->test(s)
        kOpaque,      ///< arbitrary function; evaluate via eval()
    };

    /// The predicate `true`.
    Predicate();

    /// Named predicate from an evaluation function (kOpaque).
    Predicate(std::string name, Fn fn);

    /// Predicate backed by an explicit bit vector: holds at state s iff
    /// bits->test(s). `bits` must cover the packed index range of every
    /// space the predicate is evaluated against.
    static Predicate from_bits(std::string name,
                               std::shared_ptr<const BitVec> bits);

    /// The constant predicates.
    static Predicate top();
    static Predicate bottom();

    /// var == value, var resolved now against `space`.
    static Predicate var_eq(const StateSpace& space, std::string_view var,
                            Value value);
    /// var != value.
    static Predicate var_ne(const StateSpace& space, std::string_view var,
                            Value value);
    /// var == value / var != value by VarId (structured, compilable).
    static Predicate var_eq(const StateSpace& space, VarId var, Value value);
    static Predicate var_ne(const StateSpace& space, VarId var, Value value);
    /// var(a) == var(b) / var(a) != var(b) — the guard shape of
    /// neighbour-comparing protocols (token rings, spanning trees).
    static Predicate vars_eq(const StateSpace& space, VarId a, VarId b);
    static Predicate vars_ne(const StateSpace& space, VarId a, VarId b);

    bool eval(const StateSpace& space, StateIndex s) const;
    bool operator()(const StateSpace& space, StateIndex s) const {
        return eval(space, s);
    }

    const std::string& name() const;

    /// The backing bit vector when this predicate is set-backed (built by
    /// from_bits, or composed from backed operands); null otherwise.
    const std::shared_ptr<const BitVec>& backing_bits() const;

    // -- structural introspection (for the action-kernel compiler) --------
    NodeKind node_kind() const;
    /// First variable of a kVar* node.
    VarId node_var() const;
    /// Second variable of a kVarEqVar / kVarNeVar node.
    VarId node_var2() const;
    /// Constant of a kVarEqConst / kVarNeConst node.
    Value node_value() const;
    /// Operand predicates of kAnd / kOr / kNot nodes (empty otherwise).
    std::span<const Predicate> node_operands() const;

    /// Returns a copy carrying a different display name.
    Predicate renamed(std::string name) const;

    friend Predicate operator&&(const Predicate& a, const Predicate& b);
    friend Predicate operator||(const Predicate& a, const Predicate& b);
    friend Predicate operator!(const Predicate& a);

private:
    struct Impl;

    /// Stamps structural metadata onto a freshly built (sole-owner) impl.
    void set_node(NodeKind kind, std::vector<Predicate> kids);

    std::shared_ptr<const Impl> impl_;
};

/// a => b (pointwise).
Predicate implies(const Predicate& a, const Predicate& b);

/// Evaluates p at every state of the space into a bit vector — each
/// predicate evaluated exactly once per state, chunked across up to
/// n_threads workers (0 = default_verifier_threads(); results are
/// identical for every thread count). Backed predicates are copied in
/// O(|space|/64) without re-evaluation.
BitVec eval_bits(const StateSpace& space, const Predicate& p,
                 unsigned n_threads = 1);

/// True iff a => b holds at every state of the space (exhaustive check;
/// word-level when both predicates are set-backed).
bool implies_everywhere(const StateSpace& space, const Predicate& a,
                        const Predicate& b);

/// True iff a and b hold at exactly the same states (exhaustive check;
/// word-level when both predicates are set-backed).
bool equivalent(const StateSpace& space, const Predicate& a,
                const Predicate& b);

/// Number of states satisfying p (popcount when p is set-backed).
StateIndex count_satisfying(const StateSpace& space, const Predicate& p);

}  // namespace dcft
