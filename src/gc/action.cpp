#include "gc/action.hpp"

#include "common/check.hpp"

namespace dcft {

struct Action::Impl {
    std::string name;
    Predicate guard;
    NondetEffect effect;
    std::shared_ptr<const Impl> base;  // provenance chain
};

namespace {

Action::NondetEffect lift(Action::DetEffect det) {
    return [det = std::move(det)](const StateSpace& sp, StateIndex s,
                                  std::vector<StateIndex>& out) {
        out.push_back(det(sp, s));
    };
}

}  // namespace

Action::Action(std::string name, Predicate guard, DetEffect effect) {
    DCFT_EXPECTS(effect != nullptr, "Action requires a statement");
    impl_ = std::make_shared<Impl>(Impl{std::move(name), std::move(guard),
                                        lift(std::move(effect)), nullptr});
}

Action Action::nondet(std::string name, Predicate guard, NondetEffect effect) {
    DCFT_EXPECTS(effect != nullptr, "Action requires a statement");
    return Action(std::make_shared<Impl>(Impl{
        std::move(name), std::move(guard), std::move(effect), nullptr}));
}

Action Action::assign(
    const StateSpace& space, std::string name, Predicate guard,
    std::string_view var,
    std::function<Value(const StateSpace&, StateIndex)> value_of) {
    DCFT_EXPECTS(value_of != nullptr, "assign requires a value function");
    const VarId id = space.find(var);
    return Action(std::move(name), std::move(guard),
                  [id, value_of = std::move(value_of)](const StateSpace& sp,
                                                       StateIndex s) {
                      return sp.set(s, id, value_of(sp, s));
                  });
}

Action Action::assign_const(const StateSpace& space, std::string name,
                            Predicate guard, std::string_view var,
                            Value value) {
    const VarId id = space.find(var);
    DCFT_EXPECTS(value >= 0 && value < space.variable(id).domain_size,
                 "assign_const: value out of domain");
    return Action(std::move(name), std::move(guard),
                  [id, value](const StateSpace& sp, StateIndex s) {
                      return sp.set(s, id, value);
                  });
}

Action Action::skip(std::string name, Predicate guard) {
    return Action(std::move(name), std::move(guard),
                  [](const StateSpace&, StateIndex s) { return s; });
}

const std::string& Action::name() const { return impl_->name; }
const Predicate& Action::guard() const { return impl_->guard; }

bool Action::enabled(const StateSpace& space, StateIndex s) const {
    return impl_->guard.eval(space, s);
}

void Action::successors(const StateSpace& space, StateIndex s,
                        std::vector<StateIndex>& out) const {
    if (!enabled(space, s)) return;
    const std::size_t before = out.size();
    impl_->effect(space, s, out);
    DCFT_ASSERT(out.size() > before,
                "enabled action '" + impl_->name + "' produced no successor");
}

StateIndex Action::apply(const StateSpace& space, StateIndex s) const {
    DCFT_EXPECTS(enabled(space, s), "Action::apply on a disabled action");
    std::vector<StateIndex> succ;
    impl_->effect(space, s, succ);
    DCFT_EXPECTS(succ.size() == 1,
                 "Action::apply on a nondeterministic action");
    return succ[0];
}

Action Action::restricted(const Predicate& z) const {
    auto impl = std::make_shared<Impl>(*impl_);
    impl->name = "(" + z.name() + " /\\ " + impl_->name + ")";
    impl->guard = z && impl_->guard;
    impl->base = impl_;
    return Action(std::move(impl));
}

Action Action::encapsulated(std::string name, const Predicate& extra_guard,
                            ExtraEffect extra_effect) const {
    DCFT_EXPECTS(extra_effect != nullptr,
                 "encapsulated requires an extra statement");
    auto base = impl_;
    auto impl = std::make_shared<Impl>();
    impl->name = std::move(name);
    impl->guard = base->guard && extra_guard;
    impl->effect = [base, extra = std::move(extra_effect)](
                       const StateSpace& sp, StateIndex s,
                       std::vector<StateIndex>& out) {
        std::vector<StateIndex> mid;
        base->effect(sp, s, mid);
        for (StateIndex m : mid) out.push_back(extra(sp, s, m));
    };
    impl->base = base;
    return Action(std::move(impl));
}

Action Action::renamed(std::string name) const {
    auto impl = std::make_shared<Impl>(*impl_);
    impl->name = std::move(name);
    return Action(std::move(impl));
}

bool Action::has_base() const { return impl_->base != nullptr; }

Action Action::base() const {
    DCFT_EXPECTS(has_base(), "Action::base on an action without provenance");
    return Action(impl_->base);
}

Action Action::root_base() const {
    auto cur = impl_;
    while (cur->base) cur = cur->base;
    return Action(std::move(cur));
}

const void* Action::id() const { return impl_.get(); }

}  // namespace dcft
