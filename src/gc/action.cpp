#include "gc/action.hpp"

#include "common/check.hpp"

namespace dcft {

struct Action::Impl {
    std::string name;
    Predicate guard;
    NondetEffect effect;
    std::shared_ptr<const Impl> base;  // provenance chain
    /// Structural shape of `effect` (kGeneric when unknown). For
    /// structured kinds, `effect` is generated from these fields, so the
    /// two can never disagree.
    EffectForm form;
};

namespace {

Action::NondetEffect lift(Action::DetEffect det) {
    return [det = std::move(det)](const StateSpace& sp, StateIndex s,
                                  std::vector<StateIndex>& out) {
        out.push_back(det(sp, s));
    };
}

}  // namespace

Action::Action(std::string name, Predicate guard, DetEffect effect) {
    DCFT_EXPECTS(effect != nullptr, "Action requires a statement");
    impl_ = std::make_shared<Impl>(Impl{std::move(name), std::move(guard),
                                        lift(std::move(effect)), nullptr});
}

Action Action::nondet(std::string name, Predicate guard, NondetEffect effect) {
    DCFT_EXPECTS(effect != nullptr, "Action requires a statement");
    return Action(std::make_shared<Impl>(Impl{
        std::move(name), std::move(guard), std::move(effect), nullptr}));
}

Action Action::assign(
    const StateSpace& space, std::string name, Predicate guard,
    std::string_view var,
    std::function<Value(const StateSpace&, StateIndex)> value_of) {
    DCFT_EXPECTS(value_of != nullptr, "assign requires a value function");
    const VarId id = space.find(var);
    return Action(std::move(name), std::move(guard),
                  [id, value_of = std::move(value_of)](const StateSpace& sp,
                                                       StateIndex s) {
                      return sp.set(s, id, value_of(sp, s));
                  });
}

Action Action::assign_const(const StateSpace& space, std::string name,
                            Predicate guard, std::string_view var,
                            Value value) {
    const VarId id = space.find(var);
    DCFT_EXPECTS(value >= 0 && value < space.variable(id).domain_size,
                 "assign_const: value out of domain");
    EffectForm form;
    form.kind = EffectForm::Kind::kAssignConst;
    form.var = id;
    form.value = value;
    return Action(std::make_shared<Impl>(Impl{
        std::move(name), std::move(guard),
        lift([id, value](const StateSpace& sp, StateIndex s) {
            return sp.set(s, id, value);
        }),
        nullptr, std::move(form)}));
}

Action Action::assign_var(const StateSpace& space, std::string name,
                          Predicate guard, VarId var, VarId src) {
    DCFT_EXPECTS(var < space.num_vars() && src < space.num_vars(),
                 "assign_var: variable out of range");
    DCFT_EXPECTS(space.variable(src).domain_size <=
                     space.variable(var).domain_size,
                 "assign_var: source domain exceeds target domain");
    EffectForm form;
    form.kind = EffectForm::Kind::kAssignVar;
    form.var = var;
    form.var2 = src;
    return Action(std::make_shared<Impl>(Impl{
        std::move(name), std::move(guard),
        lift([var, src](const StateSpace& sp, StateIndex s) {
            return sp.set(s, var, sp.get(s, src));
        }),
        nullptr, std::move(form)}));
}

Action Action::assign_add_mod(const StateSpace& space, std::string name,
                              Predicate guard, VarId var, VarId src,
                              Value addend, Value modulus) {
    DCFT_EXPECTS(var < space.num_vars() && src < space.num_vars(),
                 "assign_add_mod: variable out of range");
    DCFT_EXPECTS(modulus > 0 && modulus <= space.variable(var).domain_size,
                 "assign_add_mod: modulus out of target domain");
    DCFT_EXPECTS(addend >= 0, "assign_add_mod: addend must be non-negative");
    EffectForm form;
    form.kind = EffectForm::Kind::kAssignAddMod;
    form.var = var;
    form.var2 = src;
    form.value = addend;
    form.modulus = modulus;
    return Action(std::make_shared<Impl>(Impl{
        std::move(name), std::move(guard),
        lift([var, src, addend, modulus](const StateSpace& sp, StateIndex s) {
            return sp.set(s, var, (sp.get(s, src) + addend) % modulus);
        }),
        nullptr, std::move(form)}));
}

Action Action::assign_choice(const StateSpace& space, std::string name,
                             Predicate guard, VarId var,
                             std::vector<Value> choices) {
    DCFT_EXPECTS(var < space.num_vars(), "assign_choice: variable out of range");
    DCFT_EXPECTS(!choices.empty(), "assign_choice: requires at least one value");
    for (Value c : choices)
        DCFT_EXPECTS(c >= 0 && c < space.variable(var).domain_size,
                     "assign_choice: value out of domain");
    EffectForm form;
    form.kind = EffectForm::Kind::kAssignChoice;
    form.var = var;
    form.choices = choices;
    return Action(std::make_shared<Impl>(Impl{
        std::move(name), std::move(guard),
        [var, choices = std::move(choices)](const StateSpace& sp, StateIndex s,
                                            std::vector<StateIndex>& out) {
            for (Value c : choices) out.push_back(sp.set(s, var, c));
        },
        nullptr, std::move(form)}));
}

Action Action::corrupt_any(const StateSpace& space, std::string name,
                           Predicate guard, std::vector<VarId> vars) {
    DCFT_EXPECTS(!vars.empty(), "corrupt_any: requires at least one variable");
    bool some_choice = false;
    for (VarId v : vars) {
        DCFT_EXPECTS(v < space.num_vars(), "corrupt_any: variable out of range");
        some_choice = some_choice || space.variable(v).domain_size > 1;
    }
    DCFT_EXPECTS(some_choice,
                 "corrupt_any: every variable has a singleton domain");
    EffectForm form;
    form.kind = EffectForm::Kind::kCorruptAny;
    form.vars = vars;
    return Action(std::make_shared<Impl>(Impl{
        std::move(name), std::move(guard),
        [vars = std::move(vars)](const StateSpace& sp, StateIndex s,
                                 std::vector<StateIndex>& out) {
            for (VarId v : vars) {
                const Value cur = sp.get(s, v);
                const Value dom = sp.variable(v).domain_size;
                for (Value c = 0; c < dom; ++c)
                    if (c != cur) out.push_back(sp.set(s, v, c));
            }
        },
        nullptr, std::move(form)}));
}

Action Action::skip(std::string name, Predicate guard) {
    EffectForm form;
    form.kind = EffectForm::Kind::kSkip;
    return Action(std::make_shared<Impl>(Impl{
        std::move(name), std::move(guard),
        lift([](const StateSpace&, StateIndex s) { return s; }),
        nullptr, std::move(form)}));
}

const std::string& Action::name() const { return impl_->name; }
const Predicate& Action::guard() const { return impl_->guard; }

const Action::EffectForm& Action::effect_form() const { return impl_->form; }

bool Action::enabled(const StateSpace& space, StateIndex s) const {
    return impl_->guard.eval(space, s);
}

void Action::successors(const StateSpace& space, StateIndex s,
                        std::vector<StateIndex>& out) const {
    if (!enabled(space, s)) return;
    const std::size_t before = out.size();
    impl_->effect(space, s, out);
    DCFT_ASSERT(out.size() > before,
                "enabled action '" + impl_->name + "' produced no successor");
}

void Action::apply_effect(const StateSpace& space, StateIndex s,
                          std::vector<StateIndex>& out) const {
    const std::size_t before = out.size();
    impl_->effect(space, s, out);
    DCFT_ASSERT(out.size() > before,
                "enabled action '" + impl_->name + "' produced no successor");
}

StateIndex Action::apply(const StateSpace& space, StateIndex s) const {
    DCFT_EXPECTS(enabled(space, s), "Action::apply on a disabled action");
    std::vector<StateIndex> succ;
    impl_->effect(space, s, succ);
    DCFT_EXPECTS(succ.size() == 1,
                 "Action::apply on a nondeterministic action");
    return succ[0];
}

Action Action::restricted(const Predicate& z) const {
    auto impl = std::make_shared<Impl>(*impl_);
    impl->name = "(" + z.name() + " /\\ " + impl_->name + ")";
    impl->guard = z && impl_->guard;
    impl->base = impl_;
    return Action(std::move(impl));
}

Action Action::encapsulated(std::string name, const Predicate& extra_guard,
                            ExtraEffect extra_effect) const {
    DCFT_EXPECTS(extra_effect != nullptr,
                 "encapsulated requires an extra statement");
    auto base = impl_;
    auto impl = std::make_shared<Impl>();
    impl->name = std::move(name);
    impl->guard = base->guard && extra_guard;
    impl->effect = [base, extra = std::move(extra_effect)](
                       const StateSpace& sp, StateIndex s,
                       std::vector<StateIndex>& out) {
        std::vector<StateIndex> mid;
        base->effect(sp, s, mid);
        for (StateIndex m : mid) out.push_back(extra(sp, s, m));
    };
    impl->base = base;
    return Action(std::move(impl));
}

Action Action::renamed(std::string name) const {
    auto impl = std::make_shared<Impl>(*impl_);
    impl->name = std::move(name);
    return Action(std::move(impl));
}

bool Action::has_base() const { return impl_->base != nullptr; }

Action Action::base() const {
    DCFT_EXPECTS(has_base(), "Action::base on an action without provenance");
    return Action(impl_->base);
}

Action Action::root_base() const {
    auto cur = impl_;
    while (cur->base) cur = cur->base;
    return Action(std::move(cur));
}

const void* Action::id() const { return impl_.get(); }

}  // namespace dcft
