#include "gc/predicate.hpp"

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "obs/telemetry.hpp"

namespace dcft {

struct Predicate::Impl {
    std::string name;
    Fn fn;
    /// Non-null iff the predicate is set-backed; then for every valid s,
    /// fn(space, s) == bits->test(s).
    std::shared_ptr<const BitVec> bits;
    /// Structural metadata (see Predicate::NodeKind). `fn` remains the
    /// semantic source of truth; structure is a compilation hint only.
    NodeKind kind = NodeKind::kOpaque;
    VarId var = 0;
    VarId var2 = 0;
    Value value = 0;
    std::vector<Predicate> kids;
};

namespace {

/// Evaluation function of a set-backed predicate.
Predicate::Fn bits_fn(std::shared_ptr<const BitVec> bits) {
    return [bits = std::move(bits)](const StateSpace&, StateIndex s) {
        DCFT_EXPECTS(s < bits->size_bits(),
                     "set-backed Predicate: state out of range");
        return bits->test(s);
    };
}

/// Both operands set-backed over the same universe? Then word-level
/// composition applies.
const BitVec* backed_pair(const Predicate& a, const Predicate& b) {
    const auto& ba = a.backing_bits();
    const auto& bb = b.backing_bits();
    if (ba && bb && ba->size_bits() == bb->size_bits()) return ba.get();
    return nullptr;
}

}  // namespace

Predicate::Predicate()
    : impl_(std::make_shared<Impl>(
          Impl{"true", [](const StateSpace&, StateIndex) { return true; },
               nullptr, NodeKind::kTrue, 0, 0, 0, {}})) {}

Predicate::Predicate(std::string name, Fn fn) {
    DCFT_EXPECTS(fn != nullptr, "Predicate requires an evaluation function");
    impl_ = std::make_shared<Impl>(
        Impl{std::move(name), std::move(fn), nullptr, NodeKind::kOpaque, 0, 0,
             0, {}});
}

Predicate Predicate::from_bits(std::string name,
                               std::shared_ptr<const BitVec> bits) {
    DCFT_EXPECTS(bits != nullptr, "Predicate::from_bits requires bits");
    Predicate out;
    out.impl_ = std::make_shared<Impl>(
        Impl{std::move(name), bits_fn(bits), std::move(bits),
             NodeKind::kBacked, 0, 0, 0, {}});
    return out;
}

Predicate Predicate::top() { return Predicate(); }

Predicate Predicate::bottom() {
    Predicate out("false",
                  [](const StateSpace&, StateIndex) { return false; });
    const_cast<Impl*>(out.impl_.get())->kind = NodeKind::kFalse;
    return out;
}

Predicate Predicate::var_eq(const StateSpace& space, std::string_view var,
                            Value value) {
    return var_eq(space, space.find(var), value);
}

Predicate Predicate::var_ne(const StateSpace& space, std::string_view var,
                            Value value) {
    return var_ne(space, space.find(var), value);
}

Predicate Predicate::var_eq(const StateSpace& space, VarId var, Value value) {
    DCFT_EXPECTS(value >= 0 && value < space.variable(var).domain_size,
                 "var_eq: value out of domain");
    Predicate out(space.variable(var).name + "==" + std::to_string(value),
                  [var, value](const StateSpace& sp, StateIndex s) {
                      return sp.get(s, var) == value;
                  });
    Impl* impl = const_cast<Impl*>(out.impl_.get());
    impl->kind = NodeKind::kVarEqConst;
    impl->var = var;
    impl->value = value;
    return out;
}

Predicate Predicate::var_ne(const StateSpace& space, VarId var, Value value) {
    DCFT_EXPECTS(value >= 0 && value < space.variable(var).domain_size,
                 "var_ne: value out of domain");
    Predicate out(space.variable(var).name + "!=" + std::to_string(value),
                  [var, value](const StateSpace& sp, StateIndex s) {
                      return sp.get(s, var) != value;
                  });
    Impl* impl = const_cast<Impl*>(out.impl_.get());
    impl->kind = NodeKind::kVarNeConst;
    impl->var = var;
    impl->value = value;
    return out;
}

Predicate Predicate::vars_eq(const StateSpace& space, VarId a, VarId b) {
    DCFT_EXPECTS(a < space.num_vars() && b < space.num_vars(),
                 "vars_eq: variable out of range");
    Predicate out(space.variable(a).name + "==" + space.variable(b).name,
                  [a, b](const StateSpace& sp, StateIndex s) {
                      return sp.get(s, a) == sp.get(s, b);
                  });
    Impl* impl = const_cast<Impl*>(out.impl_.get());
    impl->kind = NodeKind::kVarEqVar;
    impl->var = a;
    impl->var2 = b;
    return out;
}

Predicate Predicate::vars_ne(const StateSpace& space, VarId a, VarId b) {
    DCFT_EXPECTS(a < space.num_vars() && b < space.num_vars(),
                 "vars_ne: variable out of range");
    Predicate out(space.variable(a).name + "!=" + space.variable(b).name,
                  [a, b](const StateSpace& sp, StateIndex s) {
                      return sp.get(s, a) != sp.get(s, b);
                  });
    Impl* impl = const_cast<Impl*>(out.impl_.get());
    impl->kind = NodeKind::kVarNeVar;
    impl->var = a;
    impl->var2 = b;
    return out;
}

bool Predicate::eval(const StateSpace& space, StateIndex s) const {
    return impl_->fn(space, s);
}

const std::string& Predicate::name() const { return impl_->name; }

const std::shared_ptr<const BitVec>& Predicate::backing_bits() const {
    return impl_->bits;
}

Predicate Predicate::renamed(std::string name) const {
    Predicate out = *this;
    out.impl_ = std::make_shared<Impl>(
        Impl{std::move(name), impl_->fn, impl_->bits, impl_->kind,
             impl_->var, impl_->var2, impl_->value, impl_->kids});
    return out;
}

void Predicate::set_node(NodeKind kind, std::vector<Predicate> kids) {
    // Only ever called on a predicate just built inside this translation
    // unit, before it escapes: impl_ has a single owner, so mutating
    // through const_cast is safe.
    Impl* impl = const_cast<Impl*>(impl_.get());
    impl->kind = kind;
    impl->kids = std::move(kids);
}

Predicate::NodeKind Predicate::node_kind() const { return impl_->kind; }
VarId Predicate::node_var() const { return impl_->var; }
VarId Predicate::node_var2() const { return impl_->var2; }
Value Predicate::node_value() const { return impl_->value; }
std::span<const Predicate> Predicate::node_operands() const {
    return impl_->kids;
}

Predicate operator&&(const Predicate& a, const Predicate& b) {
    std::string name = "(" + a.name() + " && " + b.name() + ")";
    if (backed_pair(a, b) != nullptr) {
        auto bits = std::make_shared<BitVec>(*a.backing_bits());
        *bits &= *b.backing_bits();
        return Predicate::from_bits(std::move(name), std::move(bits));
    }
    Predicate out(std::move(name),
                  [a, b](const StateSpace& sp, StateIndex s) {
                      return a.eval(sp, s) && b.eval(sp, s);
                  });
    out.set_node(Predicate::NodeKind::kAnd, {a, b});
    return out;
}

Predicate operator||(const Predicate& a, const Predicate& b) {
    std::string name = "(" + a.name() + " || " + b.name() + ")";
    if (backed_pair(a, b) != nullptr) {
        auto bits = std::make_shared<BitVec>(*a.backing_bits());
        *bits |= *b.backing_bits();
        return Predicate::from_bits(std::move(name), std::move(bits));
    }
    Predicate out(std::move(name),
                  [a, b](const StateSpace& sp, StateIndex s) {
                      return a.eval(sp, s) || b.eval(sp, s);
                  });
    out.set_node(Predicate::NodeKind::kOr, {a, b});
    return out;
}

Predicate operator!(const Predicate& a) {
    std::string name = "!" + a.name();
    if (a.backing_bits() != nullptr) {
        auto bits = std::make_shared<BitVec>(a.backing_bits()->complemented());
        return Predicate::from_bits(std::move(name), std::move(bits));
    }
    Predicate out(std::move(name),
                  [a](const StateSpace& sp, StateIndex s) {
                      return !a.eval(sp, s);
                  });
    out.set_node(Predicate::NodeKind::kNot, {a});
    return out;
}

Predicate implies(const Predicate& a, const Predicate& b) {
    std::string name = "(" + a.name() + " => " + b.name() + ")";
    if (backed_pair(a, b) != nullptr) {
        auto bits = std::make_shared<BitVec>(a.backing_bits()->complemented());
        *bits |= *b.backing_bits();
        return Predicate::from_bits(std::move(name), std::move(bits));
    }
    return Predicate(std::move(name),
                     [a, b](const StateSpace& sp, StateIndex s) {
                         return !a.eval(sp, s) || b.eval(sp, s);
                     });
}

BitVec eval_bits(const StateSpace& space, const Predicate& p,
                 unsigned n_threads) {
    const StateIndex n = space.num_states();
    // Backed fast path: the answer already exists as words.
    if (const auto& bits = p.backing_bits();
        bits != nullptr && bits->size_bits() == n) {
        obs::count("verify/predicate_eval/backed_hits");
        return *bits;
    }
    const obs::ScopedSpan span("verify/predicate_eval");
    obs::count("verify/predicate_eval/bulk_scans");
    obs::count("verify/predicate_eval/states_scanned", n);
    BitVec out(n);
    const unsigned threads = resolve_verifier_threads(n_threads);
    // Chunks are aligned to 64 states so no two workers share a word.
    parallel_chunks(n, threads, BitVec::kWordBits,
                    [&](unsigned, std::uint64_t begin, std::uint64_t end) {
                        for (StateIndex s = begin; s < end; ++s)
                            if (p.eval(space, s)) out.set(s);
                    });
    return out;
}

bool implies_everywhere(const StateSpace& space, const Predicate& a,
                        const Predicate& b) {
    const StateIndex n = space.num_states();
    const auto& ba = a.backing_bits();
    const auto& bb = b.backing_bits();
    if (ba && bb && ba->size_bits() == n && bb->size_bits() == n)
        return ba->is_subset_of(*bb);
    for (StateIndex s = 0; s < n; ++s)
        if (a.eval(space, s) && !b.eval(space, s)) return false;
    return true;
}

bool equivalent(const StateSpace& space, const Predicate& a,
                const Predicate& b) {
    const StateIndex n = space.num_states();
    const auto& ba = a.backing_bits();
    const auto& bb = b.backing_bits();
    if (ba && bb && ba->size_bits() == n && bb->size_bits() == n)
        return *ba == *bb;
    for (StateIndex s = 0; s < n; ++s)
        if (a.eval(space, s) != b.eval(space, s)) return false;
    return true;
}

StateIndex count_satisfying(const StateSpace& space, const Predicate& p) {
    if (const auto& bits = p.backing_bits();
        bits != nullptr && bits->size_bits() == space.num_states())
        return bits->popcount();
    StateIndex n = 0;
    for (StateIndex s = 0; s < space.num_states(); ++s)
        if (p.eval(space, s)) ++n;
    return n;
}

}  // namespace dcft
