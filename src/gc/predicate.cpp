#include "gc/predicate.hpp"

#include "common/check.hpp"

namespace dcft {

struct Predicate::Impl {
    std::string name;
    Fn fn;
};

Predicate::Predicate()
    : impl_(std::make_shared<Impl>(
          Impl{"true", [](const StateSpace&, StateIndex) { return true; }})) {}

Predicate::Predicate(std::string name, Fn fn) {
    DCFT_EXPECTS(fn != nullptr, "Predicate requires an evaluation function");
    impl_ = std::make_shared<Impl>(Impl{std::move(name), std::move(fn)});
}

Predicate Predicate::top() { return Predicate(); }

Predicate Predicate::bottom() {
    return Predicate("false",
                     [](const StateSpace&, StateIndex) { return false; });
}

Predicate Predicate::var_eq(const StateSpace& space, std::string_view var,
                            Value value) {
    const VarId id = space.find(var);
    DCFT_EXPECTS(value >= 0 && value < space.variable(id).domain_size,
                 "var_eq: value out of domain");
    return Predicate(std::string(var) + "==" + std::to_string(value),
                     [id, value](const StateSpace& sp, StateIndex s) {
                         return sp.get(s, id) == value;
                     });
}

Predicate Predicate::var_ne(const StateSpace& space, std::string_view var,
                            Value value) {
    return (!var_eq(space, var, value))
        .renamed(std::string(var) + "!=" + std::to_string(value));
}

bool Predicate::eval(const StateSpace& space, StateIndex s) const {
    return impl_->fn(space, s);
}

const std::string& Predicate::name() const { return impl_->name; }

Predicate Predicate::renamed(std::string name) const {
    Predicate out = *this;
    out.impl_ = std::make_shared<Impl>(Impl{std::move(name), impl_->fn});
    return out;
}

Predicate operator&&(const Predicate& a, const Predicate& b) {
    return Predicate("(" + a.name() + " && " + b.name() + ")",
                     [a, b](const StateSpace& sp, StateIndex s) {
                         return a.eval(sp, s) && b.eval(sp, s);
                     });
}

Predicate operator||(const Predicate& a, const Predicate& b) {
    return Predicate("(" + a.name() + " || " + b.name() + ")",
                     [a, b](const StateSpace& sp, StateIndex s) {
                         return a.eval(sp, s) || b.eval(sp, s);
                     });
}

Predicate operator!(const Predicate& a) {
    return Predicate("!" + a.name(),
                     [a](const StateSpace& sp, StateIndex s) {
                         return !a.eval(sp, s);
                     });
}

Predicate implies(const Predicate& a, const Predicate& b) {
    return Predicate("(" + a.name() + " => " + b.name() + ")",
                     [a, b](const StateSpace& sp, StateIndex s) {
                         return !a.eval(sp, s) || b.eval(sp, s);
                     });
}

bool implies_everywhere(const StateSpace& space, const Predicate& a,
                        const Predicate& b) {
    for (StateIndex s = 0; s < space.num_states(); ++s)
        if (a.eval(space, s) && !b.eval(space, s)) return false;
    return true;
}

bool equivalent(const StateSpace& space, const Predicate& a,
                const Predicate& b) {
    for (StateIndex s = 0; s < space.num_states(); ++s)
        if (a.eval(space, s) != b.eval(space, s)) return false;
    return true;
}

StateIndex count_satisfying(const StateSpace& space, const Predicate& p) {
    StateIndex n = 0;
    for (StateIndex s = 0; s < space.num_states(); ++s)
        if (p.eval(space, s)) ++n;
    return n;
}

}  // namespace dcft
