#include "gc/channel.hpp"

#include "common/check.hpp"

namespace dcft {

Channel::Channel(StateSpace& builder, std::string name, int capacity,
                 Value value_domain)
    : name_(std::move(name)), capacity_(capacity),
      value_domain_(value_domain) {
    DCFT_EXPECTS(capacity >= 1, "channel capacity must be >= 1");
    DCFT_EXPECTS(value_domain >= 1, "channel value domain must be >= 1");
    offset_.resize(static_cast<std::size_t>(capacity) + 2);
    offset_[0] = 0;
    StateIndex power = 1;  // d^L
    for (int length = 0; length <= capacity; ++length) {
        offset_[static_cast<std::size_t>(length) + 1] =
            offset_[static_cast<std::size_t>(length)] + power;
        power *= static_cast<StateIndex>(value_domain);
    }
    const StateIndex domain =
        offset_[static_cast<std::size_t>(capacity) + 1];
    var_ = builder.add_variable(name_, static_cast<Value>(domain));
}

StateIndex Channel::encode_raw(const std::vector<Value>& queue) const {
    DCFT_ASSERT(static_cast<int>(queue.size()) <= capacity_,
                "channel overflow");
    StateIndex raw = offset_[queue.size()];
    StateIndex power = 1;
    for (Value v : queue) {
        DCFT_ASSERT(v >= 0 && v < value_domain_, "channel value out of range");
        raw += static_cast<StateIndex>(v) * power;
        power *= static_cast<StateIndex>(value_domain_);
    }
    return raw;
}

std::vector<Value> Channel::decode_raw(StateIndex raw) const {
    int length = 0;
    while (raw >= offset_[static_cast<std::size_t>(length) + 1]) ++length;
    StateIndex payload = raw - offset_[static_cast<std::size_t>(length)];
    std::vector<Value> queue(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i) {
        queue[static_cast<std::size_t>(i)] = static_cast<Value>(
            payload % static_cast<StateIndex>(value_domain_));
        payload /= static_cast<StateIndex>(value_domain_);
    }
    return queue;
}

StateIndex Channel::raw(const StateSpace& space, StateIndex s) const {
    return static_cast<StateIndex>(space.get(s, var_));
}

int Channel::size(const StateSpace& space, StateIndex s) const {
    return static_cast<int>(decode_raw(raw(space, s)).size());
}

bool Channel::empty(const StateSpace& space, StateIndex s) const {
    return raw(space, s) == 0;  // offset(0) == 0, unique empty encoding
}

bool Channel::full(const StateSpace& space, StateIndex s) const {
    return size(space, s) == capacity_;
}

Value Channel::front(const StateSpace& space, StateIndex s) const {
    const auto queue = decode_raw(raw(space, s));
    DCFT_EXPECTS(!queue.empty(), "Channel::front on empty channel");
    return queue.front();
}

StateIndex Channel::push(const StateSpace& space, StateIndex s,
                         Value v) const {
    auto queue = decode_raw(raw(space, s));
    DCFT_EXPECTS(static_cast<int>(queue.size()) < capacity_,
                 "Channel::push on full channel");
    queue.push_back(v);
    return space.set(s, var_, static_cast<Value>(encode_raw(queue)));
}

StateIndex Channel::pop(const StateSpace& space, StateIndex s) const {
    auto queue = decode_raw(raw(space, s));
    DCFT_EXPECTS(!queue.empty(), "Channel::pop on empty channel");
    queue.erase(queue.begin());
    return space.set(s, var_, static_cast<Value>(encode_raw(queue)));
}

Predicate Channel::is_empty() const {
    const VarId v = var_;
    return Predicate(name_ + ".empty",
                     [v](const StateSpace& sp, StateIndex s) {
                         return sp.get(s, v) == 0;
                     });
}

Predicate Channel::is_full() const {
    Channel self = *this;
    return Predicate(name_ + ".full",
                     [self](const StateSpace& sp, StateIndex s) {
                         return self.full(sp, s);
                     });
}

Predicate Channel::nonempty() const {
    return (!is_empty()).renamed(name_ + ".nonempty");
}

Action Channel::send(std::string name, const Predicate& guard,
                     std::function<Value(const StateSpace&, StateIndex)>
                         value_of) const {
    DCFT_EXPECTS(value_of != nullptr, "send requires a value function");
    Channel self = *this;
    return Action(std::move(name), guard && !is_full(),
                  [self, value_of = std::move(value_of)](
                      const StateSpace& sp, StateIndex s) {
                      return self.push(sp, s, value_of(sp, s));
                  });
}

Action Channel::receive(std::string name, const Predicate& guard,
                        std::function<StateIndex(const StateSpace&,
                                                 StateIndex, Value)>
                            on_receive) const {
    DCFT_EXPECTS(on_receive != nullptr, "receive requires a handler");
    Channel self = *this;
    return Action(std::move(name), guard && nonempty(),
                  [self, on_receive = std::move(on_receive)](
                      const StateSpace& sp, StateIndex s) {
                      const Value v = self.front(sp, s);
                      return on_receive(sp, self.pop(sp, s), v);
                  });
}

Action Channel::lose(std::string name) const {
    Channel self = *this;
    return Action(std::move(name), nonempty(),
                  [self](const StateSpace& sp, StateIndex s) {
                      return self.pop(sp, s);
                  });
}

Action Channel::duplicate(std::string name) const {
    Channel self = *this;
    Predicate can(name_ + ".nonempty&&!full",
                  [self](const StateSpace& sp, StateIndex s) {
                      return !self.empty(sp, s) && !self.full(sp, s);
                  });
    return Action(std::move(name), std::move(can),
                  [self](const StateSpace& sp, StateIndex s) {
                      return self.push(sp, s, self.front(sp, s));
                  });
}

Action Channel::corrupt(std::string name) const {
    Channel self = *this;
    DCFT_EXPECTS(value_domain_ >= 2,
                 "corrupt requires >= 2 channel values");
    return Action::nondet(
        std::move(name), nonempty(),
        [self](const StateSpace& sp, StateIndex s,
               std::vector<StateIndex>& out) {
            auto queue = self.decode_raw(self.raw(sp, s));
            const Value old = queue.front();
            for (Value v = 0; v < self.value_domain(); ++v) {
                if (v == old) continue;
                queue.front() = v;
                out.push_back(sp.set(
                    s, self.var(),
                    static_cast<Value>(self.encode_raw(queue))));
            }
        });
}

}  // namespace dcft
