// Divmod-free mixed-radix state arithmetic.
//
// StateSpace::get/set decode a packed StateIndex with one integer divide
// and one modulo per call; on the hot exploration paths (transition-system
// build, ranking fixpoints, simulation) those divides dominate. A
// CompiledSpace precomputes, per variable, the stride plus Lemire–Kaser
// magic multipliers for both the stride and the domain size, so get/set/
// unpack become multiply/shift (plus a predictable branch for the d==1 /
// power-of-two / top-variable special cases). set() is a stride-delta add
// on top of one decode; set_digit() — the assign-const fast path when the
// current digit is already known — is a single stride-delta add.
//
// The fast path requires every operand of the Lemire scheme to fit in 32
// bits, i.e. num_states() <= 2^32. Larger spaces transparently fall back
// to plain divmod (still inline, still branch-free of std::function).
// Semantics are pinned to StateSpace by the differential tests: for every
// valid (s, v), CompiledSpace agrees bit-for-bit with StateSpace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "gc/state_space.hpp"

namespace dcft {

/// Precomputed divmod-free view of a frozen StateSpace.
///
/// Holds a pointer to the space; the space must outlive the CompiledSpace
/// (the usual ownership pattern: programs and transition systems hold a
/// shared_ptr<const StateSpace>, and compiled artifacts live inside them).
class CompiledSpace {
public:
    explicit CompiledSpace(const StateSpace& space);

    const StateSpace& space() const { return *space_; }
    StateIndex num_states() const { return num_states_; }
    std::size_t num_vars() const { return codes_.size(); }
    /// Whether the multiply/shift fast path is active (num_states <= 2^32).
    bool fast() const { return fast_; }

    /// Value of variable v in state s. Multiply/shift when fast().
    Value get(StateIndex s, VarId v) const {
        const VarCode& c = codes_[v];
        if (fast_) return mod_dom(div_stride(s, c), c);
        return static_cast<Value>(
            (s / c.stride) % static_cast<std::uint64_t>(c.dom));
    }

    /// State equal to s except that variable v holds `value`.
    /// One decode plus a stride-delta add.
    StateIndex set(StateIndex s, VarId v, Value value) const {
        return set_digit(s, v, get(s, v), value);
    }

    /// set() when the current digit of v in s is already known — a single
    /// stride-delta add. Precondition: cur == get(s, v).
    StateIndex set_digit(StateIndex s, VarId v, Value cur, Value value) const {
        const VarCode& c = codes_[v];
        // Two's-complement wraparound makes the signed delta exact.
        return s + static_cast<StateIndex>(
                       static_cast<std::int64_t>(value - cur) *
                       static_cast<std::int64_t>(c.stride));
    }

    /// Unpacks s into one digit per variable (declaration order) using
    /// successive divmod by the domain sizes — one magic multiply pair per
    /// variable. `out.size()` must equal num_vars().
    void unpack(StateIndex s, std::span<Value> out) const {
        DCFT_EXPECTS(out.size() == codes_.size(),
                     "CompiledSpace::unpack: wrong span size");
        std::uint64_t rest = s;
        for (std::size_t v = 0; v < codes_.size(); ++v) {
            const VarCode& c = codes_[v];
            if (fast_) {
                out[v] = mod_dom(rest, c);
                if (!c.dom_identity) rest = mulhi(c.dom_magic, rest);
            } else {
                out[v] = static_cast<Value>(
                    rest % static_cast<std::uint64_t>(c.dom));
                rest /= static_cast<std::uint64_t>(c.dom);
            }
        }
    }

    /// Stride of variable v (product of the domains below it).
    StateIndex stride(VarId v) const { return codes_[v].stride; }
    /// Domain size of variable v.
    Value domain(VarId v) const { return codes_[v].dom; }

private:
    struct VarCode {
        StateIndex stride = 1;     ///< product of lower domains
        Value dom = 1;             ///< domain size
        std::uint64_t stride_magic = 0;  ///< Lemire magic for / stride
        std::uint64_t dom_magic = 0;     ///< Lemire magic for % dom
        std::uint64_t dom_mask = 0;      ///< dom-1 when dom is a power of two
        bool stride_identity = false;    ///< stride == 1
        bool mod_identity = false;  ///< quotient always < dom (top variable)
        bool dom_pow2 = false;      ///< dom is a power of two
        bool dom_identity = false;  ///< dom == 1
    };

    static std::uint64_t mulhi(std::uint64_t a, std::uint64_t b) {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(a) * b) >> 64);
    }

    /// s / stride via magic multiply. Requires fast().
    static std::uint64_t div_stride(StateIndex s, const VarCode& c) {
        if (c.stride_identity) return s;
        return mulhi(c.stride_magic, s);
    }

    /// q % dom via mask / identity / magic multiply. Requires fast().
    static Value mod_dom(std::uint64_t q, const VarCode& c) {
        if (c.mod_identity || c.dom_identity)
            return c.dom_identity ? 0 : static_cast<Value>(q);
        if (c.dom_pow2) return static_cast<Value>(q & c.dom_mask);
        const std::uint64_t low = c.dom_magic * q;
        return static_cast<Value>(
            mulhi(low, static_cast<std::uint64_t>(c.dom)));
    }

    const StateSpace* space_;
    std::vector<VarCode> codes_;
    StateIndex num_states_ = 1;
    bool fast_ = false;
};

/// Builds a shared CompiledSpace that also keeps the StateSpace alive
/// (aliasing shared_ptr over a holder of both).
std::shared_ptr<const CompiledSpace> compile_space(
    std::shared_ptr<const StateSpace> space);

}  // namespace dcft
