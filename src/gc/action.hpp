// Guarded-command actions (Section 2.1 of the paper).
//
// An action is `name :: guard --> statement`; executing the statement
// atomically updates zero or more variables. We allow the statement to be
// nondeterministic (a set of successor states) because the paper's fault
// actions — e.g. a Byzantine process "executing arbitrarily
// nondeterministic actions" — need it; program actions are usually
// deterministic.
//
// Actions carry provenance: `base()` records the action of an underlying
// program that this action encapsulates or restricts. Provenance is what
// lets the verifier check the paper's *encapsulates* relation and identify,
// per Theorem 3.4, which detector corresponds to which base action.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gc/predicate.hpp"
#include "gc/state_space.hpp"

namespace dcft {

/// One guarded-command action.
///
/// Value-semantic (shared immutable implementation). The successor set of
/// an enabled action must be nonempty and must not depend on anything but
/// the state.
class Action {
public:
    /// Deterministic statement: maps the current state to the next state.
    using DetEffect = std::function<StateIndex(const StateSpace&, StateIndex)>;

    /// Nondeterministic statement: appends every possible next state.
    using NondetEffect = std::function<void(const StateSpace&, StateIndex,
                                            std::vector<StateIndex>&)>;

    /// Extra statement st' of an encapsulating action g/\g' --> st||st'.
    /// Receives the state *before* st (the paper: st' may read the initial
    /// values of variables used by st) and the state after st, and returns
    /// the final state. Must not change variables st changed.
    using ExtraEffect = std::function<StateIndex(
        const StateSpace&, StateIndex before, StateIndex after)>;

    /// Structural shape of a statement, retained alongside the effect
    /// function wherever it is known. The action-kernel compiler
    /// (verify/action_kernel.hpp) lowers structured effects to divmod-free
    /// stride arithmetic on packed indices; kGeneric effects (arbitrary
    /// lambdas) fall back to calling the std::function. Structure never
    /// affects semantics: for structured kinds the interpreted effect is
    /// itself generated from these fields, so compiled and interpreted
    /// paths produce identical successor sequences.
    struct EffectForm {
        enum class Kind : std::uint8_t {
            kGeneric,       ///< arbitrary effect; call the function
            kSkip,          ///< s' = s
            kAssignConst,   ///< var := value
            kAssignVar,     ///< var := var2
            kAssignAddMod,  ///< var := (var2 + value) mod modulus
            kAssignChoice,  ///< var := c for each c in choices (nondet)
            kCorruptAny,    ///< each v in vars := each c != cur (nondet)
        };
        Kind kind = Kind::kGeneric;
        VarId var = 0;             ///< assigned variable (kAssign*)
        VarId var2 = 0;            ///< source variable (kAssignVar/AddMod)
        Value value = 0;           ///< constant / addend
        Value modulus = 0;         ///< modulus of kAssignAddMod
        std::vector<Value> choices;  ///< kAssignChoice targets, in order
        std::vector<VarId> vars;     ///< kCorruptAny victims, in order
    };

    /// Deterministic action.
    Action(std::string name, Predicate guard, DetEffect effect);

    /// Nondeterministic action.
    static Action nondet(std::string name, Predicate guard,
                         NondetEffect effect);

    /// `name :: guard --> var := value_of(state)`.
    static Action assign(const StateSpace& space, std::string name,
                         Predicate guard, std::string_view var,
                         std::function<Value(const StateSpace&, StateIndex)>
                             value_of);

    /// `name :: guard --> var := constant`.
    static Action assign_const(const StateSpace& space, std::string name,
                               Predicate guard, std::string_view var,
                               Value value);

    /// `name :: guard --> var := src` (structured, compilable).
    static Action assign_var(const StateSpace& space, std::string name,
                             Predicate guard, VarId var, VarId src);

    /// `name :: guard --> var := (src + addend) mod modulus` — the
    /// increment shape of token-passing protocols. `var == src` is the
    /// common self-increment case.
    static Action assign_add_mod(const StateSpace& space, std::string name,
                                 Predicate guard, VarId var, VarId src,
                                 Value addend, Value modulus);

    /// Nondeterministic `name :: guard --> var := c` for each c in
    /// `choices`, in the given order (structured, compilable).
    static Action assign_choice(const StateSpace& space, std::string name,
                                Predicate guard, VarId var,
                                std::vector<Value> choices);

    /// Nondeterministic corruption: for each v in `vars` (in order), for
    /// each value c != current value of v (ascending), emits the state
    /// with v := c. The successor shape of the paper's transient faults.
    static Action corrupt_any(const StateSpace& space, std::string name,
                              Predicate guard, std::vector<VarId> vars);

    /// Skip action (self-loop); useful for stutter modelling in tests.
    static Action skip(std::string name, Predicate guard);

    const std::string& name() const;
    const Predicate& guard() const;

    /// Structural shape of the statement (kGeneric when unknown).
    const EffectForm& effect_form() const;

    bool enabled(const StateSpace& space, StateIndex s) const;

    /// Appends the successors of s under this action. Appends nothing when
    /// the action is disabled at s. Postcondition: an enabled action
    /// appends at least one successor.
    void successors(const StateSpace& space, StateIndex s,
                    std::vector<StateIndex>& out) const;

    /// Convenience for the common deterministic case: the unique successor.
    /// Precondition: enabled(s) and the action is deterministic at s.
    StateIndex apply(const StateSpace& space, StateIndex s) const;

    /// The raw statement: appends the successors of s WITHOUT checking the
    /// guard. Precondition: enabled(space, s). Used by callers that have
    /// already consulted a bulk enabled-bitset (verify/action_kernel.hpp).
    void apply_effect(const StateSpace& space, StateIndex s,
                      std::vector<StateIndex>& out) const;

    /// The paper's /\-composition for actions: Z /\ (g --> st) is
    /// (Z /\ g --> st). The result records this action as its base.
    Action restricted(const Predicate& z) const;

    /// The paper's encapsulation shape: from base action g --> st, builds
    /// g /\ g' --> st || st'. The result records `*this` as its base.
    Action encapsulated(std::string name, const Predicate& extra_guard,
                        ExtraEffect extra_effect) const;

    /// Returns a copy with a different name (provenance preserved).
    Action renamed(std::string name) const;

    /// Whether this action was built by restricted()/encapsulated().
    bool has_base() const;

    /// The base action this one restricts/encapsulates (one level).
    /// Precondition: has_base().
    Action base() const;

    /// The deepest base in the provenance chain (this action if none).
    Action root_base() const;

    /// Identity of the shared implementation; two Action values denote the
    /// same action iff their ids are equal. Used to relate components back
    /// to base-program actions (Theorems 3.4/3.6).
    const void* id() const;

private:
    struct Impl;
    explicit Action(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}
    std::shared_ptr<const Impl> impl_;
};

}  // namespace dcft
