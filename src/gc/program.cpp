#include "gc/program.hpp"

#include "common/check.hpp"

namespace dcft {

Program::Program(std::shared_ptr<const StateSpace> space, std::string name)
    : space_(std::move(space)), name_(std::move(name)) {
    DCFT_EXPECTS(space_ != nullptr, "Program requires a state space");
    DCFT_EXPECTS(space_->frozen(), "Program requires a frozen state space");
    vars_ = space_->full_varset();
}

Program::Program(std::shared_ptr<const StateSpace> space, VarSet vars,
                 std::string name)
    : space_(std::move(space)), vars_(std::move(vars)),
      name_(std::move(name)) {
    DCFT_EXPECTS(space_ != nullptr, "Program requires a state space");
    DCFT_EXPECTS(space_->frozen(), "Program requires a frozen state space");
    DCFT_EXPECTS(vars_.universe_size() == space_->num_vars(),
                 "Program vars must come from its own space");
}

void Program::add_action(Action action) {
    actions_.push_back(std::move(action));
}

const Action& Program::action(std::size_t i) const {
    DCFT_EXPECTS(i < actions_.size(), "action index out of range");
    return actions_[i];
}

const Action& Program::action_named(std::string_view name) const {
    const Action* found = nullptr;
    for (const auto& ac : actions_) {
        if (ac.name() == name) {
            DCFT_EXPECTS(found == nullptr,
                         "ambiguous action name: " + std::string(name));
            found = &ac;
        }
    }
    DCFT_EXPECTS(found != nullptr, "no action named " + std::string(name) +
                                       " in program " + name_);
    return *found;
}

bool Program::writes(VarId v) const {
    std::vector<StateIndex> succ;
    for (StateIndex s = 0; s < space_->num_states(); ++s) {
        succ.clear();
        successors(s, succ);
        for (StateIndex t : succ)
            if (space_->get(t, v) != space_->get(s, v)) return true;
    }
    return false;
}

void Program::successors(StateIndex s, std::vector<StateIndex>& out) const {
    for (const auto& ac : actions_) ac.successors(*space_, s, out);
}

bool Program::is_terminal(StateIndex s) const {
    for (const auto& ac : actions_)
        if (ac.enabled(*space_, s)) return false;
    return true;
}

Program Program::renamed(std::string name) const {
    Program out = *this;
    out.name_ = std::move(name);
    return out;
}

FaultClass::FaultClass(std::shared_ptr<const StateSpace> space,
                       std::string name)
    : space_(std::move(space)), name_(std::move(name)) {
    DCFT_EXPECTS(space_ != nullptr, "FaultClass requires a state space");
    DCFT_EXPECTS(space_->frozen(), "FaultClass requires a frozen state space");
}

void FaultClass::add_action(Action action) {
    actions_.push_back(std::move(action));
}

void FaultClass::successors(StateIndex s,
                            std::vector<StateIndex>& out) const {
    for (const auto& ac : actions_) ac.successors(*space_, s, out);
}

}  // namespace dcft
