#include "gc/compiled.hpp"

#include <limits>

namespace dcft {

namespace {

/// Lemire–Kaser magic multiplier for division by d (2 <= d <= 2^32):
/// floor(2^64 / d) + 1. With M = magic(d), for any n < 2^32:
///   n / d == mulhi(M, n)
///   n % d == mulhi(M * n mod 2^64, d)
std::uint64_t magic(std::uint64_t d) {
    return std::numeric_limits<std::uint64_t>::max() / d + 1;
}

}  // namespace

CompiledSpace::CompiledSpace(const StateSpace& space) : space_(&space) {
    DCFT_EXPECTS(space.frozen(), "CompiledSpace requires a frozen space");
    num_states_ = space.num_states();
    // Lemire correctness bound: numerator and divisor below 2^32. The
    // numerator is a packed state (< num_states); divisors are strides and
    // domain sizes (<= num_states). 2^32 states on the boundary still work
    // because every divisor that reaches 2^32 exactly hits a special case
    // (power of two, or identity).
    fast_ = num_states_ <= (StateIndex{1} << 32);
    codes_.resize(space.num_vars());
    StateIndex stride = 1;
    for (VarId v = 0; v < space.num_vars(); ++v) {
        VarCode& c = codes_[v];
        const Value dom = space.variable(v).domain_size;
        DCFT_ASSERT(dom >= 1, "CompiledSpace: empty domain");
        c.stride = stride;
        c.dom = dom;
        c.stride_identity = stride == 1;
        c.dom_identity = dom == 1;
        c.dom_pow2 = dom >= 1 && (dom & (dom - 1)) == 0;
        c.dom_mask = static_cast<std::uint64_t>(dom) - 1;
        // The quotient s / stride is always < dom when this is the top of
        // the radix chain (stride * dom covers the whole space).
        c.mod_identity =
            stride * static_cast<StateIndex>(dom) == num_states_;
        if (!c.stride_identity)
            c.stride_magic = magic(static_cast<std::uint64_t>(stride));
        if (!c.dom_identity)
            c.dom_magic = magic(static_cast<std::uint64_t>(dom));
        stride *= static_cast<StateIndex>(dom);
    }
    DCFT_ASSERT(stride == num_states_, "CompiledSpace: stride mismatch");
}

std::shared_ptr<const CompiledSpace> compile_space(
    std::shared_ptr<const StateSpace> space) {
    DCFT_EXPECTS(space != nullptr, "compile_space: null space");
    struct Holder {
        std::shared_ptr<const StateSpace> keepalive;
        CompiledSpace cs;
        Holder(std::shared_ptr<const StateSpace> sp)
            : keepalive(std::move(sp)), cs(*keepalive) {}
    };
    auto holder = std::make_shared<Holder>(std::move(space));
    // Aliasing shared_ptr: points at the CompiledSpace, owns the holder
    // (and through it the StateSpace).
    return std::shared_ptr<const CompiledSpace>(holder, &holder->cs);
}

}  // namespace dcft
