// The paper's program compositions (Section 2.1.1).
//
//   parallel(p, q)        — p || q : union of actions.
//   restrict(Z, p)        — Z /\ p : every action g --> st becomes
//                           Z /\ g --> st.
//   sequence(p, Z, q)     — p ;_Z q  =  p || (Z /\ q): q runs only once Z
//                           holds. This is how a detector gates the action
//                           it protects (Sections 3.3 and 6).
//
// All compositions require the operands to share one StateSpace; the
// result's variable set is the union of the operands'.
#pragma once

#include "gc/program.hpp"

namespace dcft {

/// p || q — parallel composition (union of the actions).
Program parallel(const Program& p, const Program& q);

/// Z /\ p — restriction of p by state predicate Z.
Program restrict_program(const Predicate& z, const Program& p);

/// p ;_Z q — sequential composition with respect to Z: p || (Z /\ q).
Program sequence(const Program& p, const Predicate& z, const Program& q);

/// Union of a program's and a fault class's actions as a plain program;
/// used where the paper writes p [] F. Note: tolerance *checking* treats
/// fault actions specially (no fairness, finitely many occurrences) — use
/// the verifier's TransitionSystem for that; this helper exists for
/// simulation and exploration.
Program with_faults(const Program& p, const FaultClass& f);

}  // namespace dcft
