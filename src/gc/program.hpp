// Programs and fault classes (Sections 2.1 and 2.3 of the paper).
//
// A program is a set of variables and a finite set of actions. In dcft a
// Program holds a shared StateSpace plus its actions; a program may use
// only a subset of the space's variables (`vars()`), which is what makes
// the paper's projections (p' onto p) and the *encapsulates* relation
// expressible when a transformed program p' adds variables to p.
//
// A fault class (Section 2.3) is "a set of actions over the variables of
// p" — structurally identical to a program, but its actions are exempt
// from fairness and may occur only finitely often in a computation. We
// give it its own type so APIs cannot confuse the two roles.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gc/action.hpp"
#include "gc/state_space.hpp"

namespace dcft {

/// A guarded-command program over a shared StateSpace.
class Program {
public:
    /// Program using every variable of the space.
    explicit Program(std::shared_ptr<const StateSpace> space,
                     std::string name = "");

    /// Program whose own variables are `vars` (a subset of the space).
    Program(std::shared_ptr<const StateSpace> space, VarSet vars,
            std::string name);

    void add_action(Action action);

    const std::string& name() const { return name_; }
    const StateSpace& space() const { return *space_; }
    std::shared_ptr<const StateSpace> space_ptr() const { return space_; }

    std::span<const Action> actions() const { return actions_; }
    std::size_t num_actions() const { return actions_.size(); }
    const Action& action(std::size_t i) const;

    /// The action with the given name; throws if absent or ambiguous.
    const Action& action_named(std::string_view name) const;

    /// The variables of this program (used for projection in refinement
    /// and encapsulation checks).
    const VarSet& vars() const { return vars_; }

    /// True if any action of this program can change variable v from some
    /// state (semantic, exhaustive over the space).
    bool writes(VarId v) const;

    /// All successors of s under the actions of this program.
    void successors(StateIndex s, std::vector<StateIndex>& out) const;

    /// True iff no action of this program is enabled at s — the final
    /// states of the paper's maximal finite computations.
    bool is_terminal(StateIndex s) const;

    /// Returns a copy with a different name.
    Program renamed(std::string name) const;

private:
    std::shared_ptr<const StateSpace> space_;
    VarSet vars_;
    std::string name_;
    std::vector<Action> actions_;
};

/// A class of fault actions for a program (Section 2.3). Fault actions are
/// not subject to fairness and occur finitely often (Assumption 2).
class FaultClass {
public:
    explicit FaultClass(std::shared_ptr<const StateSpace> space,
                        std::string name = "F");

    void add_action(Action action);

    const std::string& name() const { return name_; }
    const StateSpace& space() const { return *space_; }
    std::span<const Action> actions() const { return actions_; }
    bool empty() const { return actions_.empty(); }

    /// All successors of s under the fault actions.
    void successors(StateIndex s, std::vector<StateIndex>& out) const;

private:
    std::shared_ptr<const StateSpace> space_;
    std::string name_;
    std::vector<Action> actions_;
};

}  // namespace dcft
