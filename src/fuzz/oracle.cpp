#include "fuzz/oracle.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "runtime/fault_injector.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/simulator.hpp"
#include "runtime/trace_checker.hpp"
#include "verify/closure.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/graph_store.hpp"
#include "verify/masking_distance.hpp"
#include "verify/reachability.hpp"
#include "verify/refinement.hpp"
#include "verify/state_set.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft::fuzz {

namespace {

/// Sets an environment variable for the current scope and restores the
/// previous value (or unsets) on destruction.
class EnvGuard {
public:
    EnvGuard(const char* name, const char* value) : name_(name) {
        if (const char* prev = std::getenv(name)) {
            had_prev_ = true;
            prev_ = prev;
        }
        ::setenv(name, value, 1);
    }
    ~EnvGuard() {
        if (had_prev_)
            ::setenv(name_, prev_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    EnvGuard(const EnvGuard&) = delete;
    EnvGuard& operator=(const EnvGuard&) = delete;

private:
    const char* name_;
    bool had_prev_ = false;
    std::string prev_;
};

std::string fmt_node(const TransitionSystem& ts, NodeId n) {
    std::ostringstream os;
    os << "node " << n << " (" << ts.space().format(ts.state_of(n)) << ")";
    return os.str();
}

/// Index of the program action named `name`, or npos.
std::size_t program_action_index(const Program& p, const std::string& name) {
    for (std::size_t i = 0; i < p.num_actions(); ++i)
        if (p.action(i).name() == name) return i;
    return ~std::size_t{0};
}

/// Whether `action` can step prev -> cur.
bool action_connects(const StateSpace& space, const Action& action,
                     StateIndex prev, StateIndex cur) {
    if (!action.enabled(space, prev)) return false;
    std::vector<StateIndex> succ;
    action.successors(space, prev, succ);
    return std::find(succ.begin(), succ.end(), cur) != succ.end();
}

/// Replays one witness trace over the raw kernel: every consecutive pair
/// must be connected by the named action (program or fault), and every
/// formatted state must match. Appends at most one divergence.
void validate_witness(const BuiltSystem& sys,
                      const std::vector<WitnessStep>& trace,
                      const std::string& where,
                      std::vector<Divergence>& out) {
    const StateSpace& space = *sys.space;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const WitnessStep& step = trace[i];
        if (step.state_repr != space.format(step.state)) {
            out.push_back({"witness/replay",
                           where + ": step " + std::to_string(i) +
                               " repr mismatch: '" + step.state_repr +
                               "' vs '" + space.format(step.state) + "'"});
            return;
        }
        if (i == 0) {
            if (!step.action.empty()) {
                out.push_back({"witness/replay",
                               where + ": root step carries action '" +
                                   step.action + "'"});
                return;
            }
            continue;
        }
        const StateIndex prev = trace[i - 1].state;
        const StateIndex cur = step.state;
        bool connected = false;
        if (step.fault) {
            for (const Action& a : sys.faults.actions()) {
                if (a.name() != step.action) continue;
                if (action_connects(space, a, prev, cur)) connected = true;
                break;
            }
        } else {
            const std::size_t idx =
                program_action_index(sys.program, step.action);
            if (idx != ~std::size_t{0})
                connected = action_connects(space, sys.program.action(idx),
                                            prev, cur);
        }
        if (!connected) {
            out.push_back(
                {"witness/replay",
                 where + ": step " + std::to_string(i) + " (" +
                     (step.fault ? "fault " : "") + "'" + step.action +
                     "') does not connect " + space.format(prev) + " -> " +
                     space.format(cur)});
            return;
        }
    }
}

/// Converts a witness trace to a recorded RunResult so the offline trace
/// checker can consume it.
RunResult witness_to_run(const BuiltSystem& sys,
                         const std::vector<WitnessStep>& trace) {
    RunResult run;
    run.initial = trace.front().state;
    run.final_state = trace.back().state;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        const WitnessStep& step = trace[i];
        TraceStep ts;
        ts.to = step.state;
        if (step.fault) {
            ts.action = TraceStep::kFaultStep;
            ++run.fault_steps;
        } else {
            ts.action = program_action_index(sys.program, step.action);
            ++run.program_steps;
        }
        run.trace.push_back(ts);
    }
    run.steps = run.trace.size();
    return run;
}

/// Checks one simulated run against the explored graph: every step must
/// be a recorded edge, and a deadlocked run must end on a terminal node.
void check_run_against_graph(const BuiltSystem& sys,
                             const TransitionSystem& ts, const RunResult& run,
                             const std::string& where,
                             std::vector<Divergence>& out) {
    if (!ts.has_state(run.initial)) {
        out.push_back({"sim/trace-edge",
                       where + ": initial state " +
                           sys.space->format(run.initial) +
                           " is not a node of the explored graph"});
        return;
    }
    NodeId node = ts.node_of(run.initial);
    for (std::size_t i = 0; i < run.trace.size(); ++i) {
        const TraceStep& step = run.trace[i];
        if (!ts.has_state(step.to)) {
            out.push_back({"sim/trace-edge",
                           where + ": step " + std::to_string(i) +
                               " reaches unexplored state " +
                               sys.space->format(step.to)});
            return;
        }
        const NodeId to = ts.node_of(step.to);
        bool found = false;
        if (step.is_fault()) {
            for (const auto& e : ts.fault_edges(node))
                if (e.to == to) {
                    found = true;
                    break;
                }
        } else {
            for (const auto& e : ts.program_edges(node))
                if (e.action == static_cast<std::uint32_t>(step.action) &&
                    e.to == to) {
                    found = true;
                    break;
                }
        }
        if (!found) {
            out.push_back({"sim/trace-edge",
                           where + ": step " + std::to_string(i) + " (" +
                               (step.is_fault()
                                    ? std::string("fault")
                                    : "action " + std::to_string(step.action)) +
                               ") " + fmt_node(ts, node) + " -> " +
                               fmt_node(ts, to) +
                               " is not a recorded edge"});
            return;
        }
        node = to;
    }
    if (run.deadlocked && !ts.terminal(node)) {
        out.push_back({"sim/deadlock",
                       where + ": simulator deadlocked on non-terminal " +
                           fmt_node(ts, node)});
    }
}

}  // namespace

std::optional<std::string> first_graph_difference(
    const reference::RefTransitionSystem& ref, const TransitionSystem& ts) {
    if (ref.num_nodes() != ts.num_nodes())
        return "node count: ref " + std::to_string(ref.num_nodes()) +
               " vs csr " + std::to_string(ts.num_nodes());
    if (ref.states() !=
        [&] {
            std::vector<StateIndex> s(ts.num_nodes());
            for (NodeId n = 0; n < ts.num_nodes(); ++n) s[n] = ts.state_of(n);
            return s;
        }())
        return std::string("node -> state mapping differs");
    if (ref.initial_nodes() != ts.initial_nodes())
        return std::string("initial node sets differ");
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        const auto& rp = ref.program_edges(n);
        const auto tp = ts.program_edges(n);
        if (rp.size() != tp.size())
            return "program edge count at node " + std::to_string(n) +
                   ": ref " + std::to_string(rp.size()) + " vs csr " +
                   std::to_string(tp.size());
        for (std::size_t i = 0; i < rp.size(); ++i)
            if (rp[i].action != tp[i].action || rp[i].to != tp[i].to)
                return "program edge " + std::to_string(i) + " at node " +
                       std::to_string(n) + " differs";
        const auto& rf = ref.fault_edges(n);
        const auto tf = ts.fault_edges(n);
        if (rf.size() != tf.size())
            return "fault edge count at node " + std::to_string(n) +
                   ": ref " + std::to_string(rf.size()) + " vs csr " +
                   std::to_string(tf.size());
        for (std::size_t i = 0; i < rf.size(); ++i)
            if (rf[i].action != tf[i].action || rf[i].to != tf[i].to)
                return "fault edge " + std::to_string(i) + " at node " +
                       std::to_string(n) + " differs";
        if (ref.terminal(n) != ts.terminal(n))
            return "terminality at node " + std::to_string(n) + " differs";
        if (ref.witness_path(n) != ts.witness_path(n))
            return "witness path to node " + std::to_string(n) + " differs";
    }
    return std::nullopt;
}

std::optional<std::string> first_ts_difference(const TransitionSystem& a,
                                               const TransitionSystem& b) {
    if (a.num_nodes() != b.num_nodes())
        return "node count: " + std::to_string(a.num_nodes()) + " vs " +
               std::to_string(b.num_nodes());
    if (a.initial_nodes() != b.initial_nodes())
        return std::string("initial node sets differ");
    for (NodeId n = 0; n < a.num_nodes(); ++n) {
        if (a.state_of(n) != b.state_of(n))
            return "state of node " + std::to_string(n) + " differs";
        const auto pa = a.program_edges(n), pb = b.program_edges(n);
        if (!std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()))
            return "program edges at node " + std::to_string(n) + " differ";
        const auto fa = a.fault_edges(n), fb = b.fault_edges(n);
        if (!std::equal(fa.begin(), fa.end(), fb.begin(), fb.end()))
            return "fault edges at node " + std::to_string(n) + " differ";
        if (a.witness_path(n) != b.witness_path(n))
            return "witness path to node " + std::to_string(n) + " differs";
    }
    return std::nullopt;
}

std::vector<Divergence> run_oracles(const ProgramSpec& spec,
                                    const OracleOptions& options) {
    std::vector<Divergence> out;
    const BuiltSystem sys = build(spec);
    const FaultClass* faults = sys.faults_ptr();

    // -- graph oracles -----------------------------------------------------
    const reference::RefTransitionSystem ref(sys.program, faults, sys.init);
    const TransitionSystem ts1(sys.program, faults, sys.init, 1);
    if (auto d = first_graph_difference(ref, ts1))
        out.push_back({"graph/ref-vs-csr", *d});

    const TransitionSystem tsN(sys.program, faults, sys.init,
                               std::max(options.threads, 2u));
    if (auto d = first_ts_difference(ts1, tsN))
        out.push_back({"graph/threads-1-vs-N", *d});

    {
        const EnvGuard no_compile("DCFT_NO_COMPILE", "1");
        const TransitionSystem interpreted(sys.program, faults, sys.init, 1);
        if (auto d = first_ts_difference(ts1, interpreted))
            out.push_back({"graph/compiled-vs-interpreted", *d});
    }

    // -- batch-kernel oracles ----------------------------------------------
    {
        // The batch layer (fused guard+successor sweeps, block-batched
        // frontier expansion) sits above the compiled kernels; DCFT_NO_BATCH
        // pins the scalar per-state path. Graphs, node numbering, edge
        // order, and witness paths must be bit-identical, serial and
        // chunked alike.
        const EnvGuard no_batch("DCFT_NO_BATCH", "1");
        const TransitionSystem scalar1(sys.program, faults, sys.init, 1);
        if (auto d = first_ts_difference(ts1, scalar1))
            out.push_back({"batch/batched-vs-scalar", *d});
        const TransitionSystem scalarN(sys.program, faults, sys.init,
                                       std::max(options.threads, 2u));
        if (auto d = first_ts_difference(tsN, scalarN))
            out.push_back({"batch/batched-vs-scalar", "(threads=N) " + *d});
        // Verdict + witness level: the early-exit exploration expands its
        // frontier through the batch kernel too (the cache is cleared so
        // the scalar run cannot reuse a batched graph).
        if (!exploration_cache_disabled()) ExplorationCache::global().clear();
        const CheckResult scalar_unreach =
            check_unreachable(sys.program, faults, sys.init, sys.bad, 1);
        if (!exploration_cache_disabled()) ExplorationCache::global().clear();
        const NodeId bn = ts1.first_bad_node(sys.bad);
        const bool reachable = bn != TransitionSystem::kNoNode;
        if (scalar_unreach.ok == reachable)
            out.push_back({"batch/batched-vs-scalar",
                           std::string("scalar early-exit ok=") +
                               (scalar_unreach.ok ? "true" : "false") +
                               " but batched full graph says reachable=" +
                               (reachable ? "true" : "false")});
        else if (reachable && scalar_unreach.witness != ts1.witness_trace(bn))
            out.push_back({"batch/batched-vs-scalar",
                           "scalar early-exit witness differs from batched "
                           "full-graph trace to node " + std::to_string(bn)});
    }

    // -- cache oracle ------------------------------------------------------
    if (!exploration_cache_disabled()) {
        ExplorationCache& cache = ExplorationCache::global();
        cache.clear();
        const auto first =
            cache.get_or_build(sys.program, faults, sys.init, options.threads);
        const auto second =
            cache.get_or_build(sys.program, faults, sys.init, options.threads);
        if (first.get() != second.get())
            out.push_back({"cache/hit-shares-build",
                           "second lookup of an identical key rebuilt the "
                           "graph instead of sharing it"});
        if (auto d = first_ts_difference(ts1, *first))
            out.push_back({"cache/cached-vs-fresh", *d});
        cache.clear();
    }

    // -- store round-trip oracles ------------------------------------------
    {
        // Persistent graph store, both layers. Direct: save the canonical
        // graph and mmap-adopt it back — first_ts_difference requires
        // bit-identity over nodes, edge lists, initial sets, and witness
        // parents. Integrated: with DCFT_GRAPH_STORE set and the
        // exploration cache cleared, get_or_build must serve the adopted
        // snapshot and that graph must also equal the fresh build.
        char dir_template[] = "/tmp/dcft-fuzz-store-XXXXXX";
        if (::mkdtemp(dir_template) != nullptr) {
            const std::string dir = dir_template;
            {
                GraphStore store(dir, 0);
                const BitVec init_bits = eval_bits(*sys.space, sys.init);
                const GraphKey key =
                    graph_key(sys.program, faults, init_bits);
                std::string error;
                if (!store.save(key, ts1, &error)) {
                    out.push_back(
                        {"store/roundtrip", "save failed: " + error});
                } else {
                    const auto loaded =
                        store.load(key, sys.program, faults, &error);
                    if (loaded == nullptr)
                        out.push_back(
                            {"store/roundtrip", "load failed: " + error});
                    else if (auto d = first_ts_difference(ts1, *loaded))
                        out.push_back({"store/roundtrip", *d});
                }
            }
            if (!exploration_cache_disabled()) {
                const EnvGuard store_env("DCFT_GRAPH_STORE", dir.c_str());
                ExplorationCache& cache = ExplorationCache::global();
                cache.clear();
                const auto adopted = cache.get_or_build(
                    sys.program, faults, sys.init, options.threads);
                if (auto d = first_ts_difference(ts1, *adopted))
                    out.push_back({"store/cached-vs-fresh", *d});
                cache.clear();
            }
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
    }

    // -- interner oracle ---------------------------------------------------
    {
        // A tiny DCFT_DIRECT_MAP_MAX forces the sparse sharded interner at
        // every size; the graph must stay bit-identical, serial and
        // chunked alike.
        const EnvGuard tiny_map("DCFT_DIRECT_MAP_MAX", "64");
        const TransitionSystem sparse1(sys.program, faults, sys.init, 1);
        if (auto d = first_ts_difference(ts1, sparse1))
            out.push_back({"interner/sparse-vs-direct", *d});
        const TransitionSystem sparseN(sys.program, faults, sys.init,
                                       std::max(options.threads, 2u));
        if (auto d = first_ts_difference(ts1, sparseN))
            out.push_back({"interner/sparse-vs-direct",
                           "(threads=N) " + *d});
    }

    // -- early-exit oracles ------------------------------------------------
    {
        // check_unreachable (stop-predicate exploration) vs the canonical
        // scan of the full graph: same verdict, same message, same witness
        // trace — with the exploration cache in play and bypassed.
        if (!exploration_cache_disabled()) ExplorationCache::global().clear();
        const NodeId bn = ts1.first_bad_node(sys.bad);
        const bool reachable = bn != TransitionSystem::kNoNode;
        const CheckResult a =
            check_unreachable(sys.program, faults, sys.init, sys.bad, 1);
        if (a.ok == reachable) {
            out.push_back({"earlyexit/unreachable-vs-full",
                           std::string("early-exit ok=") +
                               (a.ok ? "true" : "false") +
                               " but full-graph first_bad_node says "
                               "reachable=" +
                               (reachable ? "true" : "false")});
        } else if (reachable) {
            const std::string expect_reason =
                "reachable: state " +
                sys.space->format(ts1.state_of(bn)) + " satisfies " +
                sys.bad.name() + "; witness: " + ts1.format_witness(bn);
            if (a.reason != expect_reason)
                out.push_back({"earlyexit/unreachable-vs-full",
                               "reason differs: early-exit '" + a.reason +
                                   "' vs full '" + expect_reason + "'"});
            if (a.witness != ts1.witness_trace(bn))
                out.push_back({"earlyexit/unreachable-vs-full",
                               "witness trace differs from full-graph "
                               "trace to node " + std::to_string(bn)});
            validate_witness(sys, a.witness, "earlyexit/unreachable", out);
        }
        {
            // Cache-bypass equivalence at a different thread count.
            const EnvGuard no_cache("DCFT_NO_EXPLORE_CACHE", "1");
            const CheckResult c = check_unreachable(
                sys.program, faults, sys.init, sys.bad, options.threads);
            if (a.ok != c.ok || a.reason != c.reason ||
                a.witness != c.witness)
                out.push_back({"earlyexit/unreachable-vs-full",
                               "cache-bypassed run diverges from cached "
                               "run (ok/reason/witness)"});
        }
        if (!exploration_cache_disabled()) ExplorationCache::global().clear();
    }

    // -- verdict oracles ---------------------------------------------------
    {
        const CheckResult a = check_closed(sys.program, sys.invariant);
        const CheckResult b =
            reference::ref_check_closed(sys.program, sys.invariant);
        if (a.ok != b.ok)
            out.push_back({"verdict/closed",
                           std::string("optimized ok=") +
                               (a.ok ? "true" : "false") + " vs reference ok=" +
                               (b.ok ? "true" : "false") +
                               (b.ok ? "" : " (" + b.reason + ")")});
    }
    {
        const StateSet a = reachable_states(sys.program, faults, sys.init,
                                            options.threads);
        const StateSet b =
            reference::ref_reachable_states(sys.program, faults, sys.init);
        if (!(a == b))
            out.push_back({"verdict/reachable",
                           "reachable sets differ: optimized " +
                               std::to_string(a.count()) + " states vs "
                               "reference " + std::to_string(b.count())});
    }
    {
        const CheckResult a =
            converges(sys.program, faults, sys.init, sys.invariant);
        const CheckResult b = reference::ref_converges(sys.program, faults,
                                                       sys.init, sys.invariant);
        if (a.ok != b.ok)
            out.push_back({"verdict/converges",
                           std::string("optimized ok=") +
                               (a.ok ? "true" : "false") + " vs reference ok=" +
                               (b.ok ? "true" : "false")});
    }
    {
        const CheckResult a = refines_spec(sys.program, sys.problem, sys.init);
        const CheckResult b = reference::ref_refines_spec(
            sys.program, sys.problem, sys.init, nullptr);
        if (a.ok != b.ok)
            out.push_back({"verdict/refines",
                           std::string("optimized ok=") +
                               (a.ok ? "true" : "false") + " vs reference ok=" +
                               (b.ok ? "true" : "false")});
        if (faults != nullptr) {
            const CheckResult af = refines_spec(sys.program, sys.problem,
                                                sys.init, {faults});
            const CheckResult bf = reference::ref_refines_spec(
                sys.program, sys.problem, sys.init, faults);
            if (af.ok != bf.ok)
                out.push_back({"verdict/refines-with-faults",
                               std::string("optimized ok=") +
                                   (af.ok ? "true" : "false") +
                                   " vs reference ok=" +
                                   (bf.ok ? "true" : "false")});
        }
    }
    const ToleranceReport graded = check_tolerance(
        sys.program, sys.faults, sys.problem, sys.invariant, sys.grade);
    {
        const ToleranceReport refr = reference::ref_check_tolerance(
            sys.program, sys.faults, sys.problem, sys.invariant, sys.grade);
        if (graded.in_absence.ok != refr.in_absence.ok ||
            graded.in_presence.ok != refr.in_presence.ok ||
            graded.invariant_size != refr.invariant_size ||
            graded.span_size != refr.span_size) {
            std::ostringstream os;
            os << "optimized (absence=" << graded.in_absence.ok
               << ", presence=" << graded.in_presence.ok << ", |S|="
               << graded.invariant_size << ", |T|=" << graded.span_size
               << ") vs reference (absence=" << refr.in_absence.ok
               << ", presence=" << refr.in_presence.ok << ", |S|="
               << refr.invariant_size << ", |T|=" << refr.span_size << ")";
            out.push_back({"verdict/tolerance", os.str()});
        }
    }

    // -- witness replay oracles --------------------------------------------
    const ToleranceReport failsafe = check_failsafe(sys.program, sys.faults,
                                                    sys.problem, sys.invariant);
    validate_witness(sys, graded.in_absence.witness,
                     "tolerance/in_absence", out);
    validate_witness(sys, graded.in_presence.witness,
                     "tolerance/in_presence", out);
    validate_witness(sys, graded.deepest_trace, "tolerance/deepest", out);
    validate_witness(sys, failsafe.in_presence.witness,
                     "failsafe/in_presence", out);
    validate_witness(sys, failsafe.deepest_trace, "failsafe/deepest", out);

    // -- early-exit tolerance oracle ---------------------------------------
    {
        // Fail-safe with ToleranceOptions::early_exit vs the default full
        // pipeline: identical verdicts, and on failure the identical
        // in-presence counterexample (closure of the span on its own graph
        // is trivially true, so the first full-pipeline failure is exactly
        // the least bad node the stop predicate fires on). Fuzz specs use
        // never(bad) safety, so the early path is always applicable.
        if (!exploration_cache_disabled()) ExplorationCache::global().clear();
        ToleranceOptions early;
        early.early_exit = true;
        const ToleranceReport fast = check_tolerance(
            sys.program, sys.faults, sys.problem, sys.invariant,
            Tolerance::FailSafe, early);
        if (fast.in_absence.ok != failsafe.in_absence.ok ||
            fast.in_presence.ok != failsafe.in_presence.ok) {
            std::ostringstream os;
            os << "early-exit (absence=" << fast.in_absence.ok
               << ", presence=" << fast.in_presence.ok << ") vs full (absence="
               << failsafe.in_absence.ok << ", presence="
               << failsafe.in_presence.ok << ")";
            out.push_back({"earlyexit/tolerance-failsafe", os.str()});
        } else if (!failsafe.in_presence.ok) {
            if (fast.in_presence.reason != failsafe.in_presence.reason)
                out.push_back({"earlyexit/tolerance-failsafe",
                               "in-presence reason differs: early-exit '" +
                                   fast.in_presence.reason + "' vs full '" +
                                   failsafe.in_presence.reason + "'"});
            if (fast.in_presence.witness != failsafe.in_presence.witness)
                out.push_back({"earlyexit/tolerance-failsafe",
                               "in-presence witness trace differs"});
            if (fast.span_complete)
                out.push_back({"earlyexit/tolerance-failsafe",
                               "failing early-exit query reported a "
                               "complete span"});
            if (fast.span_size > failsafe.span_size)
                out.push_back({"earlyexit/tolerance-failsafe",
                               "early-exit span exceeds the full span: " +
                                   std::to_string(fast.span_size) + " vs " +
                                   std::to_string(failsafe.span_size)});
            validate_witness(sys, fast.in_presence.witness,
                             "earlyexit/tolerance-failsafe", out);
        } else if (!fast.span_complete ||
                   fast.span_size != failsafe.span_size) {
            out.push_back({"earlyexit/tolerance-failsafe",
                           "passing query must materialize the full span ("
                           "complete=" +
                               std::string(fast.span_complete ? "true"
                                                              : "false") +
                               ", size " + std::to_string(fast.span_size) +
                               " vs " + std::to_string(failsafe.span_size) +
                               ")"});
        }
        if (!exploration_cache_disabled()) ExplorationCache::global().clear();
    }

    // -- graded oracle -----------------------------------------------------
    {
        // Masking-distance game vs the explicit checker: the game quantifies
        // the same safety property over the same fault span, so d == inf
        // exactly when the fail-safe in-presence obligation holds. On a
        // finite distance the min-fault witness must replay over the raw
        // kernel and carry exactly `distance` fault steps.
        const MaskingDistanceResult game = masking_distance(
            sys.program, sys.faults, sys.problem, sys.invariant);
        if (game.masking != failsafe.in_presence.ok) {
            std::ostringstream os;
            os << "game says "
               << (game.masking ? "masking (distance inf)"
                                : "distance " + std::to_string(game.distance))
               << " but check_failsafe in-presence ok="
               << (failsafe.in_presence.ok ? "true" : "false") << " ("
               << failsafe.in_presence.reason << ")";
            out.push_back({"graded/game-vs-explicit", os.str()});
        } else if (!game.masking) {
            if (game.witness_faults() != game.distance)
                out.push_back({"graded/game-vs-explicit",
                               "witness carries " +
                                   std::to_string(game.witness_faults()) +
                                   " fault steps but the distance is " +
                                   std::to_string(game.distance)});
            if (game.witness.empty())
                out.push_back({"graded/game-vs-explicit",
                               "finite distance without a witness trace"});
            validate_witness(sys, game.witness, "graded/game-vs-explicit",
                             out);
        }
        if (!exploration_cache_disabled()) ExplorationCache::global().clear();
    }

    // -- trace-checker oracles ---------------------------------------------
    if (failsafe.in_presence.ok && !failsafe.deepest_trace.empty()) {
        // The exploration witness of a passing fail-safe query must itself
        // be safe when replayed through the offline trace checker.
        const RunResult run = witness_to_run(sys, failsafe.deepest_trace);
        const TraceReport report =
            check_trace_safety(*sys.space, run, sys.safety);
        if (!report.ok())
            out.push_back({"trace/safety-vs-verdict",
                           "deepest exploration trace of a verified "
                           "fail-safe span violates safety at step " +
                               std::to_string(report.violations.front().step) +
                               ": " + report.violations.front().what});
    }

    // -- simulation oracles ------------------------------------------------
    if (options.include_sim && ts1.num_nodes() > 0 && options.sim_runs > 0) {
        RandomScheduler scheduler;
        const auto& roots = ts1.initial_nodes();
        for (std::size_t r = 0; r < options.sim_runs; ++r) {
            const NodeId root = roots[(r * 7919) % roots.size()];
            Simulator sim(sys.program, scheduler,
                          spec.seed ^ (0x51F7ULL + r));
            FaultInjector injector(sys.faults, 0.2, 4);
            if (faults != nullptr) sim.set_fault_injector(&injector);
            RunOptions run_options;
            run_options.max_steps = options.sim_steps;
            run_options.record_trace = true;
            const RunResult run = sim.run(ts1.state_of(root), run_options);
            check_run_against_graph(sys, ts1, run,
                                    "run " + std::to_string(r), out);
        }
    }
    if (options.include_sim && failsafe.in_presence.ok &&
        failsafe.invariant_size > 0 && options.sim_runs > 0) {
        // Fault-injected runs from invariant states stay inside the span;
        // a verified fail-safe span means the offline safety check on any
        // such recorded trace must be clean.
        std::vector<StateIndex> starts;
        const StateSet inv = materialize(*sys.space, sys.invariant);
        inv.for_each([&](StateIndex s) {
            if (starts.size() < options.sim_runs) starts.push_back(s);
        });
        RandomScheduler scheduler;
        for (std::size_t r = 0; r < starts.size(); ++r) {
            Simulator sim(sys.program, scheduler,
                          spec.seed ^ (0xFA57ULL + r));
            FaultInjector injector(sys.faults, 0.2, 4);
            if (faults != nullptr) sim.set_fault_injector(&injector);
            RunOptions run_options;
            run_options.max_steps = options.sim_steps;
            run_options.record_trace = true;
            const RunResult run = sim.run(starts[r], run_options);
            const TraceReport report =
                check_trace_safety(*sys.space, run, sys.safety);
            if (!report.ok()) {
                out.push_back(
                    {"trace/safety-vs-verdict",
                     "verified fail-safe span, but simulated run " +
                         std::to_string(r) + " from " +
                         sys.space->format(starts[r]) +
                         " violates safety at step " +
                         std::to_string(report.violations.front().step) +
                         ": " + report.violations.front().what});
                break;
            }
        }
    }

    // Leave no residue for the next campaign iteration.
    if (!exploration_cache_disabled()) ExplorationCache::global().clear();
    return out;
}

}  // namespace dcft::fuzz
