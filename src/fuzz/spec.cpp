#include "fuzz/spec.hpp"

#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"

namespace dcft::fuzz {

namespace {

bool uses_channel(const EffectNode& e) {
    using K = EffectNode::Kind;
    switch (e.kind) {
        case K::kChanSendConst:
        case K::kChanRecvToVar:
        case K::kChanLose:
        case K::kChanDuplicate:
        case K::kChanCorrupt:
            return true;
        default:
            return false;
    }
}

bool is_channel_fault(const EffectNode& e) {
    using K = EffectNode::Kind;
    return e.kind == K::kChanLose || e.kind == K::kChanDuplicate ||
           e.kind == K::kChanCorrupt;
}

bool fail(std::string* error, std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
}

bool validate_pred(const ProgramSpec& spec, const PredNode& n,
                   const std::string& where, std::string* error) {
    using K = PredNode::Kind;
    const std::size_t nv = spec.vars.size();
    switch (n.kind) {
        case K::kTrue:
        case K::kFalse:
            break;
        case K::kVarEqConst:
        case K::kVarNeConst:
            if (n.var >= nv)
                return fail(error, where + ": predicate variable out of range");
            if (n.value < 0 || n.value >= spec.vars[n.var].domain)
                return fail(error, where + ": predicate constant out of domain");
            break;
        case K::kVarEqVar:
        case K::kVarNeVar:
            if (n.var >= nv || n.var2 >= nv)
                return fail(error, where + ": predicate variable out of range");
            break;
        case K::kAnd:
        case K::kOr:
            if (n.kids.empty())
                return fail(error, where + ": and/or needs at least one kid");
            break;
        case K::kNot:
            if (n.kids.size() != 1)
                return fail(error, where + ": not needs exactly one kid");
            break;
    }
    for (const PredNode& kid : n.kids)
        if (!validate_pred(spec, kid, where, error)) return false;
    return true;
}

bool validate_action(const ProgramSpec& spec, const ActionDecl& a,
                     const std::string& where, std::string* error) {
    if (a.name.empty()) return fail(error, where + ": empty action name");
    if (!validate_pred(spec, a.guard, where + "/" + a.name + "/guard", error))
        return false;

    const EffectNode& e = a.effect;
    const std::string at = where + "/" + a.name;
    const std::size_t nv = spec.vars.size();
    using K = EffectNode::Kind;

    if (uses_channel(e)) {
        if (e.chan >= spec.channels.size())
            return fail(error, at + ": channel index out of range");
        if (is_channel_fault(e) && a.guard.kind != PredNode::Kind::kTrue)
            return fail(error, at + ": channel-fault guard must be true");
    }
    switch (e.kind) {
        case K::kSkip:
            break;
        case K::kAssignConst:
            if (e.var >= nv)
                return fail(error, at + ": assigned variable out of range");
            if (e.value < 0 || e.value >= spec.vars[e.var].domain)
                return fail(error, at + ": assigned constant out of domain");
            break;
        case K::kAssignVar:
            if (e.var >= nv || e.var2 >= nv)
                return fail(error, at + ": variable out of range");
            if (spec.vars[e.var2].domain > spec.vars[e.var].domain)
                return fail(error,
                            at + ": assign_var source domain exceeds target");
            break;
        case K::kAssignAddMod:
            if (e.var >= nv || e.var2 >= nv)
                return fail(error, at + ": variable out of range");
            if (e.modulus < 1 || e.modulus > spec.vars[e.var].domain)
                return fail(error, at + ": modulus out of [1, dom(var)]");
            if (e.value < 0)
                return fail(error, at + ": negative addend");
            break;
        case K::kAssignChoice:
            if (e.var >= nv)
                return fail(error, at + ": variable out of range");
            if (e.choices.empty())
                return fail(error, at + ": empty choice list");
            for (Value c : e.choices)
                if (c < 0 || c >= spec.vars[e.var].domain)
                    return fail(error, at + ": choice out of domain");
            break;
        case K::kCorruptAny:
            if (e.vars.empty())
                return fail(error, at + ": empty corruption victim list");
            for (std::size_t v : e.vars) {
                if (v >= nv)
                    return fail(error, at + ": victim variable out of range");
                if (spec.vars[v].domain < 2)
                    return fail(error, at + ": victim domain must be >= 2");
            }
            break;
        case K::kChanSendConst:
            if (e.value < 0 || e.value >= spec.channels[e.chan].value_domain)
                return fail(error, at + ": sent value out of channel domain");
            break;
        case K::kChanRecvToVar:
            if (e.var >= nv)
                return fail(error, at + ": receive target out of range");
            break;
        case K::kChanLose:
        case K::kChanDuplicate:
            break;
        case K::kChanCorrupt:
            if (spec.channels[e.chan].value_domain < 2)
                return fail(error,
                            at + ": corrupt needs channel value domain >= 2");
            break;
    }
    return true;
}

/// Packed domain of one channel: 1 + d + d^2 + ... + d^capacity.
std::uint64_t channel_domain(const ChannelDecl& c) {
    std::uint64_t dom = 0;
    std::uint64_t pow = 1;
    for (int l = 0; l <= c.capacity; ++l) {
        dom += pow;
        pow *= static_cast<std::uint64_t>(c.value_domain);
    }
    return dom;
}

Action build_action(const BuiltSystem& sys, const ActionDecl& a) {
    const StateSpace& space = *sys.space;
    const Predicate guard = build_predicate(space, a.guard);
    const EffectNode& e = a.effect;
    using K = EffectNode::Kind;
    switch (e.kind) {
        case K::kSkip:
            return Action::skip(a.name, guard);
        case K::kAssignConst:
            return Action::assign_const(space, a.name, guard,
                                        sys.space->variable(e.var).name,
                                        e.value);
        case K::kAssignVar:
            return Action::assign_var(space, a.name, guard, e.var, e.var2);
        case K::kAssignAddMod:
            return Action::assign_add_mod(space, a.name, guard, e.var, e.var2,
                                          e.value, e.modulus);
        case K::kAssignChoice:
            return Action::assign_choice(space, a.name, guard, e.var,
                                         e.choices);
        case K::kCorruptAny:
            return Action::corrupt_any(space, a.name, guard, e.vars);
        case K::kChanSendConst: {
            const Value v = e.value;
            return sys.channels[e.chan].send(
                a.name, guard,
                [v](const StateSpace&, StateIndex) { return v; });
        }
        case K::kChanRecvToVar: {
            const VarId var = e.var;
            const Value dom = space.variable(var).domain_size;
            return sys.channels[e.chan].receive(
                a.name, guard,
                [var, dom](const StateSpace& sp, StateIndex s, Value v) {
                    return sp.set(s, var, v % dom);
                });
        }
        case K::kChanLose:
            return sys.channels[e.chan].lose(a.name);
        case K::kChanDuplicate:
            return sys.channels[e.chan].duplicate(a.name);
        case K::kChanCorrupt:
            return sys.channels[e.chan].corrupt(a.name);
    }
    DCFT_ASSERT(false, "unreachable effect kind");
    return Action::skip(a.name, guard);
}

}  // namespace

bool validate(const ProgramSpec& spec, std::string* error) {
    if (spec.name.empty()) return fail(error, "empty spec name");
    if (spec.grade < 0 || spec.grade > 2)
        return fail(error, "grade must be 0 (failsafe), 1 (nonmasking) or "
                           "2 (masking)");
    if (spec.vars.empty())
        return fail(error, "spec needs at least one plain variable");
    for (const VarDecl& v : spec.vars) {
        if (v.name.empty()) return fail(error, "empty variable name");
        if (v.domain < 2)
            return fail(error, "variable " + v.name + ": domain must be >= 2");
    }
    for (const ChannelDecl& c : spec.channels) {
        if (c.name.empty()) return fail(error, "empty channel name");
        if (c.capacity < 1)
            return fail(error, "channel " + c.name + ": capacity must be >= 1");
        if (c.value_domain < 1)
            return fail(error,
                        "channel " + c.name + ": value domain must be >= 1");
    }
    std::unordered_set<std::string> names;
    for (const VarDecl& v : spec.vars)
        if (!names.insert(v.name).second)
            return fail(error, "duplicate variable name " + v.name);
    for (const ChannelDecl& c : spec.channels)
        if (!names.insert(c.name).second)
            return fail(error, "duplicate channel/variable name " + c.name);

    std::unordered_set<std::string> action_names;
    for (const ActionDecl& a : spec.actions) {
        if (!validate_action(spec, a, "actions", error)) return false;
        if (!action_names.insert(a.name).second)
            return fail(error, "duplicate action name " + a.name);
    }
    for (const ActionDecl& a : spec.fault_actions) {
        if (!validate_action(spec, a, "fault_actions", error)) return false;
        if (!action_names.insert(a.name).second)
            return fail(error, "duplicate action name " + a.name);
    }

    const std::string preds[] = {"init", "invariant", "bad"};
    const PredNode* nodes[] = {&spec.init, &spec.invariant, &spec.bad};
    for (std::size_t i = 0; i < 3; ++i)
        if (!validate_pred(spec, *nodes[i], preds[i], error)) return false;
    if (spec.has_leads) {
        if (!validate_pred(spec, spec.leads_from, "leads_from", error))
            return false;
        if (!validate_pred(spec, spec.leads_to, "leads_to", error))
            return false;
    }
    return true;
}

std::uint64_t num_states(const ProgramSpec& spec) {
    std::uint64_t n = 1;
    for (const VarDecl& v : spec.vars)
        n *= static_cast<std::uint64_t>(v.domain);
    for (const ChannelDecl& c : spec.channels) n *= channel_domain(c);
    return n;
}

Predicate build_predicate(const StateSpace& space, const PredNode& node) {
    using K = PredNode::Kind;
    switch (node.kind) {
        case K::kTrue:
            return Predicate::top();
        case K::kFalse:
            return Predicate::bottom();
        case K::kVarEqConst:
            return Predicate::var_eq(space, node.var, node.value);
        case K::kVarNeConst:
            return Predicate::var_ne(space, node.var, node.value);
        case K::kVarEqVar:
            return Predicate::vars_eq(space, node.var, node.var2);
        case K::kVarNeVar:
            return Predicate::vars_ne(space, node.var, node.var2);
        case K::kAnd: {
            Predicate p = build_predicate(space, node.kids.front());
            for (std::size_t i = 1; i < node.kids.size(); ++i)
                p = p && build_predicate(space, node.kids[i]);
            return p;
        }
        case K::kOr: {
            Predicate p = build_predicate(space, node.kids.front());
            for (std::size_t i = 1; i < node.kids.size(); ++i)
                p = p || build_predicate(space, node.kids[i]);
            return p;
        }
        case K::kNot:
            return !build_predicate(space, node.kids.front());
    }
    DCFT_ASSERT(false, "unreachable predicate kind");
    return Predicate::top();
}

BuiltSystem build(const ProgramSpec& spec) {
    std::string error;
    DCFT_ASSERT(validate(spec, &error), "build() on invalid spec: " + error);

    StateSpace builder;
    for (const VarDecl& v : spec.vars) builder.add_variable(v.name, v.domain);
    std::vector<Channel> channels;
    channels.reserve(spec.channels.size());
    for (const ChannelDecl& c : spec.channels)
        channels.emplace_back(builder, c.name, c.capacity, c.value_domain);
    builder.freeze();
    auto space = std::make_shared<const StateSpace>(std::move(builder));

    BuiltSystem sys{space,
                    std::move(channels),
                    Program(space, spec.name),
                    FaultClass(space, spec.name + ".faults"),
                    build_predicate(*space, spec.init).renamed("init"),
                    build_predicate(*space, spec.invariant).renamed("S"),
                    build_predicate(*space, spec.bad).renamed("bad"),
                    SafetySpec(),
                    ProblemSpec(),
                    grade_of(spec.grade)};

    for (const ActionDecl& a : spec.actions)
        sys.program.add_action(build_action(sys, a));
    for (const ActionDecl& a : spec.fault_actions)
        sys.faults.add_action(build_action(sys, a));

    sys.safety = SafetySpec::never(sys.bad);
    LivenessSpec liveness;
    if (spec.has_leads)
        liveness.add(LeadsTo{
            build_predicate(*space, spec.leads_from).renamed("P"),
            build_predicate(*space, spec.leads_to).renamed("Q")});
    sys.problem = ProblemSpec(spec.name + ".spec", sys.safety,
                              std::move(liveness));
    return sys;
}

std::string describe(const ProgramSpec& spec) {
    std::ostringstream os;
    os << spec.vars.size() << " vars";
    if (!spec.channels.empty())
        os << ", " << spec.channels.size() << " channel"
           << (spec.channels.size() == 1 ? "" : "s");
    os << ", " << spec.actions.size() << "+" << spec.fault_actions.size()
       << " actions, " << num_states(spec) << " states, grade "
       << to_string(grade_of(spec.grade)) << ", seed " << spec.seed;
    return os.str();
}

Tolerance grade_of(int grade) {
    switch (grade) {
        case 1:
            return Tolerance::Nonmasking;
        case 2:
            return Tolerance::Masking;
        default:
            return Tolerance::FailSafe;
    }
}

}  // namespace dcft::fuzz
