// Serializable program specifications for the differential fuzzer.
//
// The fuzzer cannot generate Program/Predicate/Action values directly:
// those are opaque (std::function effects, shared immutable impls) and
// therefore neither comparable, nor mutable for shrinking, nor storable in
// a regression corpus. Instead the fuzzer works on ProgramSpec — a plain
// data AST covering the *structured* subset of the guarded-command kernel
// (every Predicate::NodeKind, every Action::EffectForm kind, plus the
// bounded-channel actions and the classic channel faults). A spec is:
//
//   * buildable — build() lowers it to a real StateSpace / Program /
//     FaultClass / ProblemSpec, deterministically;
//   * serializable — fuzz/spec_json.hpp round-trips it byte-identically,
//     which is what makes minimized reproducers pinnable as corpus files;
//   * mutable — the delta-debugging shrinker (fuzz/shrinker.hpp) edits the
//     AST (drop actions, shrink domains, simplify predicates) and re-checks
//     validity with validate() before re-running the oracles.
//
// Variable identities: plain variables get VarId = their index in `vars`;
// channel j's backing variable is VarId vars.size() + j (channels are
// declared after the plain variables, in order). Predicates range over
// plain variables only — channel contents are observed through the
// channel's own predicates (emptiness guards baked into channel actions).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gc/channel.hpp"
#include "gc/program.hpp"
#include "spec/problem_spec.hpp"

namespace dcft::fuzz {

/// One finite-domain variable of a generated program.
struct VarDecl {
    std::string name;
    Value domain = 2;  ///< >= 2 so corruption always has a target value

    friend bool operator==(const VarDecl&, const VarDecl&) = default;
};

/// One bounded FIFO channel (packs into one extra backing variable).
struct ChannelDecl {
    std::string name;
    int capacity = 1;
    Value value_domain = 2;

    friend bool operator==(const ChannelDecl&, const ChannelDecl&) = default;
};

/// A predicate expression over the plain variables of a spec. Mirrors
/// Predicate::NodeKind minus kBacked/kOpaque (which are not serializable).
struct PredNode {
    enum class Kind : std::uint8_t {
        kTrue,
        kFalse,
        kVarEqConst,  ///< var(var) == value
        kVarNeConst,  ///< var(var) != value
        kVarEqVar,    ///< var(var) == var(var2)
        kVarNeVar,    ///< var(var) != var(var2)
        kAnd,         ///< conjunction of kids (>= 1)
        kOr,          ///< disjunction of kids (>= 1)
        kNot,         ///< negation of kids[0]
    };
    Kind kind = Kind::kTrue;
    std::size_t var = 0;
    std::size_t var2 = 0;
    Value value = 0;
    std::vector<PredNode> kids;

    friend bool operator==(const PredNode&, const PredNode&) = default;
};

/// A statement shape. Mirrors Action::EffectForm plus the channel action
/// and channel fault factories of gc/channel.hpp.
struct EffectNode {
    enum class Kind : std::uint8_t {
        kSkip,           ///< no-op (self loop)
        kAssignConst,    ///< var := value
        kAssignVar,      ///< var := var2   (needs dom(var2) <= dom(var))
        kAssignAddMod,   ///< var := (var2 + value) mod modulus
        kAssignChoice,   ///< var := c for each c in choices (nondet)
        kCorruptAny,     ///< each v in vars := any other value (nondet)
        kChanSendConst,  ///< channels[chan].send(value)
        kChanRecvToVar,  ///< var := received value mod dom(var)
        kChanLose,       ///< channel fault: drop head (guard must be true)
        kChanDuplicate,  ///< channel fault: duplicate head (guard true)
        kChanCorrupt,    ///< channel fault: corrupt head (guard true,
                         ///< needs value_domain >= 2)
    };
    Kind kind = Kind::kSkip;
    std::size_t var = 0;
    std::size_t var2 = 0;
    Value value = 0;
    Value modulus = 1;
    std::vector<Value> choices;
    std::vector<std::size_t> vars;
    std::size_t chan = 0;

    friend bool operator==(const EffectNode&, const EffectNode&) = default;
};

/// One guarded-command action of a spec.
struct ActionDecl {
    std::string name;
    PredNode guard;
    EffectNode effect;

    friend bool operator==(const ActionDecl&, const ActionDecl&) = default;
};

/// A complete differential-fuzzing instance: program + fault class +
/// initial/invariant/bad predicates + an optional leads-to obligation +
/// the tolerance grade to query. Plain data; compare, copy, serialize,
/// mutate freely.
struct ProgramSpec {
    std::string name = "fuzz";
    std::uint64_t seed = 0;
    int grade = 0;  ///< 0 = failsafe, 1 = nonmasking, 2 = masking

    std::vector<VarDecl> vars;
    std::vector<ChannelDecl> channels;
    std::vector<ActionDecl> actions;
    std::vector<ActionDecl> fault_actions;

    PredNode init;
    PredNode invariant;
    PredNode bad;

    bool has_leads = false;
    PredNode leads_from;
    PredNode leads_to;

    friend bool operator==(const ProgramSpec&, const ProgramSpec&) = default;
};

/// Checks every structural invariant build() relies on (index ranges,
/// domain bounds, factory preconditions such as dom(src) <= dom(var) for
/// kAssignVar, nonempty choice lists, unique action names, channel-fault
/// guards being kTrue). Returns true iff the spec is buildable; on failure
/// stores a message in *error when non-null. Never throws.
bool validate(const ProgramSpec& spec, std::string* error = nullptr);

/// Total number of states of the spec's space: the product of the plain
/// variable domains and each channel's packed domain.
std::uint64_t num_states(const ProgramSpec& spec);

/// A spec lowered to real kernel objects. All members are built over the
/// one shared `space`.
struct BuiltSystem {
    std::shared_ptr<const StateSpace> space;
    std::vector<Channel> channels;
    Program program;
    FaultClass faults;  ///< possibly empty (no fault actions)
    Predicate init;
    Predicate invariant;
    Predicate bad;
    SafetySpec safety;    ///< never(bad)
    ProblemSpec problem;  ///< safety + the optional leads-to obligation
    Tolerance grade = Tolerance::FailSafe;

    /// The fault class as the nullable pointer the verifier APIs take
    /// (nullptr when the spec has no fault actions).
    const FaultClass* faults_ptr() const {
        return faults.empty() ? nullptr : &faults;
    }
};

/// Lowers a *validated* spec (precondition: validate(spec)) to kernel
/// objects. Deterministic: equal specs build semantically identical
/// systems (fresh space identity, same behavior).
BuiltSystem build(const ProgramSpec& spec);

/// Builds the Predicate of one node against a built space. `spec_vars` is
/// the number of plain variables (for range assertions in debug builds).
Predicate build_predicate(const StateSpace& space, const PredNode& node);

/// One-line human-readable summary ("3 vars, 1 channel, 5+2 actions,
/// 384 states, grade masking, seed 42") for logs and finding reports.
std::string describe(const ProgramSpec& spec);

/// Grade int -> Tolerance (0 failsafe / 1 nonmasking / 2 masking).
Tolerance grade_of(int grade);

}  // namespace dcft::fuzz
