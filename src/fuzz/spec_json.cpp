#include "fuzz/spec_json.hpp"

#include <utility>

#include "obs/json.hpp"

namespace dcft::fuzz {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

// ---------------------------------------------------------------------------
// Kind <-> string tables (stable: corpus files depend on these names).

const char* pred_kind_name(PredNode::Kind k) {
    using K = PredNode::Kind;
    switch (k) {
        case K::kTrue: return "true";
        case K::kFalse: return "false";
        case K::kVarEqConst: return "var_eq_const";
        case K::kVarNeConst: return "var_ne_const";
        case K::kVarEqVar: return "var_eq_var";
        case K::kVarNeVar: return "var_ne_var";
        case K::kAnd: return "and";
        case K::kOr: return "or";
        case K::kNot: return "not";
    }
    return "true";
}

const char* effect_kind_name(EffectNode::Kind k) {
    using K = EffectNode::Kind;
    switch (k) {
        case K::kSkip: return "skip";
        case K::kAssignConst: return "assign_const";
        case K::kAssignVar: return "assign_var";
        case K::kAssignAddMod: return "assign_add_mod";
        case K::kAssignChoice: return "assign_choice";
        case K::kCorruptAny: return "corrupt_any";
        case K::kChanSendConst: return "chan_send_const";
        case K::kChanRecvToVar: return "chan_recv_to_var";
        case K::kChanLose: return "chan_lose";
        case K::kChanDuplicate: return "chan_duplicate";
        case K::kChanCorrupt: return "chan_corrupt";
    }
    return "skip";
}

const char* grade_name(int grade) {
    switch (grade) {
        case 1: return "nonmasking";
        case 2: return "masking";
        default: return "failsafe";
    }
}

bool pred_kind_of(const std::string& s, PredNode::Kind& out) {
    using K = PredNode::Kind;
    static const std::pair<const char*, K> table[] = {
        {"true", K::kTrue},
        {"false", K::kFalse},
        {"var_eq_const", K::kVarEqConst},
        {"var_ne_const", K::kVarNeConst},
        {"var_eq_var", K::kVarEqVar},
        {"var_ne_var", K::kVarNeVar},
        {"and", K::kAnd},
        {"or", K::kOr},
        {"not", K::kNot},
    };
    for (const auto& [name, kind] : table)
        if (s == name) {
            out = kind;
            return true;
        }
    return false;
}

bool effect_kind_of(const std::string& s, EffectNode::Kind& out) {
    using K = EffectNode::Kind;
    static const std::pair<const char*, K> table[] = {
        {"skip", K::kSkip},
        {"assign_const", K::kAssignConst},
        {"assign_var", K::kAssignVar},
        {"assign_add_mod", K::kAssignAddMod},
        {"assign_choice", K::kAssignChoice},
        {"corrupt_any", K::kCorruptAny},
        {"chan_send_const", K::kChanSendConst},
        {"chan_recv_to_var", K::kChanRecvToVar},
        {"chan_lose", K::kChanLose},
        {"chan_duplicate", K::kChanDuplicate},
        {"chan_corrupt", K::kChanCorrupt},
    };
    for (const auto& [name, kind] : table)
        if (s == name) {
            out = kind;
            return true;
        }
    return false;
}

bool grade_of_name(const std::string& s, int& out) {
    if (s == "failsafe") out = 0;
    else if (s == "nonmasking") out = 1;
    else if (s == "masking") out = 2;
    else return false;
    return true;
}

// ---------------------------------------------------------------------------
// Emission.

void write_pred(JsonWriter& w, const PredNode& n) {
    using K = PredNode::Kind;
    w.begin_object();
    w.kv("kind", pred_kind_name(n.kind));
    switch (n.kind) {
        case K::kVarEqConst:
        case K::kVarNeConst:
            w.kv("var", static_cast<std::uint64_t>(n.var));
            w.kv("value", static_cast<std::int64_t>(n.value));
            break;
        case K::kVarEqVar:
        case K::kVarNeVar:
            w.kv("var", static_cast<std::uint64_t>(n.var));
            w.kv("var2", static_cast<std::uint64_t>(n.var2));
            break;
        case K::kAnd:
        case K::kOr:
        case K::kNot:
            w.key("kids").begin_array();
            for (const PredNode& kid : n.kids) write_pred(w, kid);
            w.end_array();
            break;
        default:
            break;
    }
    w.end_object();
}

void write_effect(JsonWriter& w, const EffectNode& e) {
    using K = EffectNode::Kind;
    w.begin_object();
    w.kv("kind", effect_kind_name(e.kind));
    switch (e.kind) {
        case K::kSkip:
            break;
        case K::kAssignConst:
            w.kv("var", static_cast<std::uint64_t>(e.var));
            w.kv("value", static_cast<std::int64_t>(e.value));
            break;
        case K::kAssignVar:
            w.kv("var", static_cast<std::uint64_t>(e.var));
            w.kv("var2", static_cast<std::uint64_t>(e.var2));
            break;
        case K::kAssignAddMod:
            w.kv("var", static_cast<std::uint64_t>(e.var));
            w.kv("var2", static_cast<std::uint64_t>(e.var2));
            w.kv("value", static_cast<std::int64_t>(e.value));
            w.kv("modulus", static_cast<std::int64_t>(e.modulus));
            break;
        case K::kAssignChoice:
            w.kv("var", static_cast<std::uint64_t>(e.var));
            w.key("choices").begin_array();
            for (Value c : e.choices) w.value(static_cast<std::int64_t>(c));
            w.end_array();
            break;
        case K::kCorruptAny:
            w.key("vars").begin_array();
            for (std::size_t v : e.vars)
                w.value(static_cast<std::uint64_t>(v));
            w.end_array();
            break;
        case K::kChanSendConst:
            w.kv("chan", static_cast<std::uint64_t>(e.chan));
            w.kv("value", static_cast<std::int64_t>(e.value));
            break;
        case K::kChanRecvToVar:
            w.kv("chan", static_cast<std::uint64_t>(e.chan));
            w.kv("var", static_cast<std::uint64_t>(e.var));
            break;
        case K::kChanLose:
        case K::kChanDuplicate:
        case K::kChanCorrupt:
            w.kv("chan", static_cast<std::uint64_t>(e.chan));
            break;
    }
    w.end_object();
}

void write_actions(JsonWriter& w, const std::vector<ActionDecl>& actions) {
    w.begin_array();
    for (const ActionDecl& a : actions) {
        w.begin_object();
        w.kv("name", a.name);
        w.key("guard");
        write_pred(w, a.guard);
        w.key("effect");
        write_effect(w, a.effect);
        w.end_object();
    }
    w.end_array();
}

// ---------------------------------------------------------------------------
// Parsing.

bool fail(std::string* error, std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
}

bool read_size(const JsonValue& obj, const char* key, std::size_t& out) {
    const JsonValue* v = obj.find(key, JsonValue::Kind::Number);
    if (v == nullptr) return false;
    out = static_cast<std::size_t>(v->as_number());
    return true;
}

bool read_value(const JsonValue& obj, const char* key, Value& out) {
    const JsonValue* v = obj.find(key, JsonValue::Kind::Number);
    if (v == nullptr) return false;
    out = static_cast<Value>(v->as_number());
    return true;
}

bool read_pred(const JsonValue& v, PredNode& out, std::string* error) {
    using K = PredNode::Kind;
    if (!v.is_object()) return fail(error, "predicate: expected object");
    const JsonValue* kind = v.find("kind", JsonValue::Kind::String);
    if (kind == nullptr || !pred_kind_of(kind->as_string(), out.kind))
        return fail(error, "predicate: missing or unknown kind");
    switch (out.kind) {
        case K::kVarEqConst:
        case K::kVarNeConst:
            if (!read_size(v, "var", out.var) ||
                !read_value(v, "value", out.value))
                return fail(error, "predicate: var/value missing");
            break;
        case K::kVarEqVar:
        case K::kVarNeVar:
            if (!read_size(v, "var", out.var) ||
                !read_size(v, "var2", out.var2))
                return fail(error, "predicate: var/var2 missing");
            break;
        case K::kAnd:
        case K::kOr:
        case K::kNot: {
            const JsonValue* kids = v.find("kids", JsonValue::Kind::Array);
            if (kids == nullptr)
                return fail(error, "predicate: kids missing");
            for (const JsonValue& kid : kids->as_array()) {
                PredNode child;
                if (!read_pred(kid, child, error)) return false;
                out.kids.push_back(std::move(child));
            }
            break;
        }
        default:
            break;
    }
    return true;
}

bool read_effect(const JsonValue& v, EffectNode& out, std::string* error) {
    using K = EffectNode::Kind;
    if (!v.is_object()) return fail(error, "effect: expected object");
    const JsonValue* kind = v.find("kind", JsonValue::Kind::String);
    if (kind == nullptr || !effect_kind_of(kind->as_string(), out.kind))
        return fail(error, "effect: missing or unknown kind");
    switch (out.kind) {
        case K::kSkip:
            break;
        case K::kAssignConst:
            if (!read_size(v, "var", out.var) ||
                !read_value(v, "value", out.value))
                return fail(error, "effect: var/value missing");
            break;
        case K::kAssignVar:
            if (!read_size(v, "var", out.var) ||
                !read_size(v, "var2", out.var2))
                return fail(error, "effect: var/var2 missing");
            break;
        case K::kAssignAddMod:
            if (!read_size(v, "var", out.var) ||
                !read_size(v, "var2", out.var2) ||
                !read_value(v, "value", out.value) ||
                !read_value(v, "modulus", out.modulus))
                return fail(error, "effect: add_mod fields missing");
            break;
        case K::kAssignChoice: {
            const JsonValue* choices =
                v.find("choices", JsonValue::Kind::Array);
            if (!read_size(v, "var", out.var) || choices == nullptr)
                return fail(error, "effect: var/choices missing");
            for (const JsonValue& c : choices->as_array()) {
                if (!c.is_number())
                    return fail(error, "effect: non-numeric choice");
                out.choices.push_back(static_cast<Value>(c.as_number()));
            }
            break;
        }
        case K::kCorruptAny: {
            const JsonValue* vars = v.find("vars", JsonValue::Kind::Array);
            if (vars == nullptr) return fail(error, "effect: vars missing");
            for (const JsonValue& item : vars->as_array()) {
                if (!item.is_number())
                    return fail(error, "effect: non-numeric victim");
                out.vars.push_back(
                    static_cast<std::size_t>(item.as_number()));
            }
            break;
        }
        case K::kChanSendConst:
            if (!read_size(v, "chan", out.chan) ||
                !read_value(v, "value", out.value))
                return fail(error, "effect: chan/value missing");
            break;
        case K::kChanRecvToVar:
            if (!read_size(v, "chan", out.chan) ||
                !read_size(v, "var", out.var))
                return fail(error, "effect: chan/var missing");
            break;
        case K::kChanLose:
        case K::kChanDuplicate:
        case K::kChanCorrupt:
            if (!read_size(v, "chan", out.chan))
                return fail(error, "effect: chan missing");
            break;
    }
    return true;
}

bool read_actions(const JsonValue& doc, const char* key,
                  std::vector<ActionDecl>& out, std::string* error) {
    const JsonValue* arr = doc.find(key, JsonValue::Kind::Array);
    if (arr == nullptr)
        return fail(error, std::string(key) + ": missing array");
    for (const JsonValue& item : arr->as_array()) {
        if (!item.is_object())
            return fail(error, std::string(key) + ": expected object entries");
        ActionDecl a;
        const JsonValue* name = item.find("name", JsonValue::Kind::String);
        const JsonValue* guard = item.find("guard");
        const JsonValue* effect = item.find("effect");
        if (name == nullptr || guard == nullptr || effect == nullptr)
            return fail(error,
                        std::string(key) + ": name/guard/effect missing");
        a.name = name->as_string();
        if (!read_pred(*guard, a.guard, error)) return false;
        if (!read_effect(*effect, a.effect, error)) return false;
        out.push_back(std::move(a));
    }
    return true;
}

}  // namespace

std::string to_json(const ProgramSpec& spec) {
    JsonWriter w;
    w.begin_object();
    w.kv("schema", "dcft.fuzz.program");
    w.kv("schema_version", std::uint64_t{1});
    w.kv("name", spec.name);
    w.kv("seed", spec.seed);
    w.kv("grade", grade_name(spec.grade));

    w.key("vars").begin_array();
    for (const VarDecl& v : spec.vars) {
        w.begin_object();
        w.kv("name", v.name);
        w.kv("domain", static_cast<std::int64_t>(v.domain));
        w.end_object();
    }
    w.end_array();

    w.key("channels").begin_array();
    for (const ChannelDecl& c : spec.channels) {
        w.begin_object();
        w.kv("name", c.name);
        w.kv("capacity", c.capacity);
        w.kv("value_domain", static_cast<std::int64_t>(c.value_domain));
        w.end_object();
    }
    w.end_array();

    w.key("actions");
    write_actions(w, spec.actions);
    w.key("fault_actions");
    write_actions(w, spec.fault_actions);

    w.key("init");
    write_pred(w, spec.init);
    w.key("invariant");
    write_pred(w, spec.invariant);
    w.key("bad");
    write_pred(w, spec.bad);

    w.key("leads");
    if (spec.has_leads) {
        w.begin_object();
        w.key("from");
        write_pred(w, spec.leads_from);
        w.key("to");
        write_pred(w, spec.leads_to);
        w.end_object();
    } else {
        w.null();
    }

    w.end_object();
    return w.str();
}

std::optional<ProgramSpec> from_json(const std::string& text,
                                     std::string* error) {
    const std::optional<JsonValue> doc = obs::parse_json(text, error);
    if (!doc.has_value()) return std::nullopt;
    if (!doc->is_object()) {
        fail(error, "spec: expected a top-level object");
        return std::nullopt;
    }
    const JsonValue* schema = doc->find("schema", JsonValue::Kind::String);
    if (schema == nullptr || schema->as_string() != "dcft.fuzz.program") {
        fail(error, "spec: schema must be \"dcft.fuzz.program\"");
        return std::nullopt;
    }
    const JsonValue* version =
        doc->find("schema_version", JsonValue::Kind::Number);
    if (version == nullptr || version->as_number() != 1.0) {
        fail(error, "spec: unsupported schema_version");
        return std::nullopt;
    }

    ProgramSpec spec;
    const JsonValue* name = doc->find("name", JsonValue::Kind::String);
    const JsonValue* seed = doc->find("seed", JsonValue::Kind::Number);
    const JsonValue* grade = doc->find("grade", JsonValue::Kind::String);
    if (name == nullptr || seed == nullptr || grade == nullptr) {
        fail(error, "spec: name/seed/grade missing");
        return std::nullopt;
    }
    spec.name = name->as_string();
    spec.seed = static_cast<std::uint64_t>(seed->as_number());
    if (!grade_of_name(grade->as_string(), spec.grade)) {
        fail(error, "spec: unknown grade " + grade->as_string());
        return std::nullopt;
    }

    const JsonValue* vars = doc->find("vars", JsonValue::Kind::Array);
    if (vars == nullptr) {
        fail(error, "spec: vars missing");
        return std::nullopt;
    }
    for (const JsonValue& item : vars->as_array()) {
        VarDecl v;
        const JsonValue* vname = item.find("name", JsonValue::Kind::String);
        if (vname == nullptr || !read_value(item, "domain", v.domain)) {
            fail(error, "spec: var name/domain missing");
            return std::nullopt;
        }
        v.name = vname->as_string();
        spec.vars.push_back(std::move(v));
    }

    const JsonValue* channels = doc->find("channels", JsonValue::Kind::Array);
    if (channels == nullptr) {
        fail(error, "spec: channels missing");
        return std::nullopt;
    }
    for (const JsonValue& item : channels->as_array()) {
        ChannelDecl c;
        const JsonValue* cname = item.find("name", JsonValue::Kind::String);
        const JsonValue* cap = item.find("capacity", JsonValue::Kind::Number);
        if (cname == nullptr || cap == nullptr ||
            !read_value(item, "value_domain", c.value_domain)) {
            fail(error, "spec: channel fields missing");
            return std::nullopt;
        }
        c.name = cname->as_string();
        c.capacity = static_cast<int>(cap->as_number());
        spec.channels.push_back(std::move(c));
    }

    if (!read_actions(*doc, "actions", spec.actions, error))
        return std::nullopt;
    if (!read_actions(*doc, "fault_actions", spec.fault_actions, error))
        return std::nullopt;

    const JsonValue* init = doc->find("init");
    const JsonValue* invariant = doc->find("invariant");
    const JsonValue* bad = doc->find("bad");
    if (init == nullptr || invariant == nullptr || bad == nullptr) {
        fail(error, "spec: init/invariant/bad missing");
        return std::nullopt;
    }
    if (!read_pred(*init, spec.init, error) ||
        !read_pred(*invariant, spec.invariant, error) ||
        !read_pred(*bad, spec.bad, error))
        return std::nullopt;

    const JsonValue* leads = doc->find("leads");
    if (leads == nullptr) {
        fail(error, "spec: leads missing (use null for none)");
        return std::nullopt;
    }
    if (!leads->is_null()) {
        const JsonValue* from = leads->find("from");
        const JsonValue* to = leads->find("to");
        if (from == nullptr || to == nullptr) {
            fail(error, "spec: leads.from/leads.to missing");
            return std::nullopt;
        }
        spec.has_leads = true;
        if (!read_pred(*from, spec.leads_from, error) ||
            !read_pred(*to, spec.leads_to, error))
            return std::nullopt;
    }
    return spec;
}

}  // namespace dcft::fuzz
