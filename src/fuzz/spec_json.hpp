// Corpus serialization of fuzz ProgramSpecs ("dcft.fuzz.program").
//
// Every minimized reproducer a campaign finds is written as one JSON file
// under tests/fuzz/corpus/, and the corpus-replay ctest target re-runs the
// oracles on every file — so each found bug stays pinned as a regression
// test after its fix. The format goes through obs::JsonWriter/parse_json
// like every other artifact of the repo, and the emission order is fixed,
// so to_json is deterministic and from_json(to_json(s)) == s with
// to_json(from_json(text)) byte-identical to a writer-produced `text`.
//
// Envelope:
//   { "schema": "dcft.fuzz.program", "schema_version": 1,
//     "name", "seed", "grade": "failsafe"|"nonmasking"|"masking",
//     "vars": [{"name","domain"}], "channels": [...], "actions": [...],
//     "fault_actions": [...], "init", "invariant", "bad",
//     "leads": null | {"from", "to"} }
#pragma once

#include <optional>
#include <string>

#include "fuzz/spec.hpp"

namespace dcft::fuzz {

/// Serializes `spec` (deterministic member order, 2-space indentation).
std::string to_json(const ProgramSpec& spec);

/// Parses a document produced by to_json (or hand-written to the same
/// schema). On failure returns nullopt and stores a message in *error
/// when non-null. The result is structurally parsed but NOT validated —
/// callers run validate() before build().
std::optional<ProgramSpec> from_json(const std::string& text,
                                     std::string* error = nullptr);

}  // namespace dcft::fuzz
