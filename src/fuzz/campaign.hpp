// Campaign driver: generate -> oracle -> shrink -> pin, in a loop.
//
// run_campaign() derives one independent program seed per iteration from
// the campaign seed (SplitMix64 mixing, so `--seed S --programs N` covers
// the same specs in any split of the range), runs the full oracle matrix,
// and on divergence minimizes the spec with the delta-debugging shrinker
// and serializes the reproducer into the corpus directory. Everything is
// deterministic: the same campaign seed yields the same programs, the same
// verdicts, and byte-identical minimized reproducer files.
//
// replay_corpus() is the regression half: it re-runs the oracles on every
// corpus file (sorted by path), so each previously found-and-fixed bug
// stays pinned — the fuzz_corpus_replay ctest target calls exactly this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/spec.hpp"

namespace dcft::fuzz {

/// One divergence found by a campaign, with its minimized reproducer.
struct Finding {
    std::uint64_t program_seed = 0;  ///< generate_spec seed of the original
    std::size_t index = 0;           ///< iteration index within the campaign
    std::vector<Divergence> divergences;  ///< oracle verdicts on the original
    ProgramSpec minimized;           ///< shrunken reproducer (== original
                                     ///< when shrinking is disabled)
    std::string file;                ///< corpus path ("" if not persisted)
};

struct CampaignConfig {
    std::uint64_t seed = 1;
    std::size_t programs = 100;
    GeneratorConfig generator;
    OracleOptions oracle;
    /// Directory minimized reproducers are written into ("" = don't write).
    std::string corpus_dir;
    /// Wall-clock budget in seconds (0 = unlimited). Checked between
    /// programs; a campaign never aborts mid-oracle.
    double time_budget_seconds = 0;
    bool shrink = true;
};

struct CampaignResult {
    std::size_t programs_run = 0;
    std::vector<Finding> findings;
    double elapsed_seconds = 0;
    bool time_exhausted = false;  ///< stopped on budget, not on count
};

/// The per-iteration generator seed (SplitMix64 of campaign seed + index).
std::uint64_t campaign_program_seed(std::uint64_t campaign_seed,
                                    std::size_t index);

/// Runs the campaign. Writes reproducers as
/// `<corpus_dir>/fuzz-<seed>-<index>.json` (directories created on
/// demand).
CampaignResult run_campaign(const CampaignConfig& config);

/// One corpus file failing to parse, validate, or pass the oracles.
struct ReplayFailure {
    std::string file;
    std::string detail;
};

struct ReplayResult {
    std::size_t files = 0;
    std::vector<ReplayFailure> failures;
    bool ok() const { return failures.empty(); }
};

/// Replays `path` — a spec JSON file, or a directory whose *.json files
/// are replayed in sorted order — through the oracle matrix.
ReplayResult replay_corpus(const std::string& path,
                           const OracleOptions& options = {});

}  // namespace dcft::fuzz
