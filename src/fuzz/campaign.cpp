#include "fuzz/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/shrinker.hpp"
#include "fuzz/spec_json.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace dcft::fuzz {

namespace {

namespace fs = std::filesystem;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

}  // namespace

std::uint64_t campaign_program_seed(std::uint64_t campaign_seed,
                                    std::size_t index) {
    // SplitMix64 of (campaign_seed + golden-ratio stride * index): the
    // same mixing the Rng seeder uses, so per-program streams are
    // statistically independent and stable across campaign splits.
    std::uint64_t z = campaign_seed + 0x9E3779B97F4A7C15ULL *
                                          (static_cast<std::uint64_t>(index) +
                                           1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

CampaignResult run_campaign(const CampaignConfig& config) {
    const auto start = std::chrono::steady_clock::now();
    CampaignResult result;
    for (std::size_t i = 0; i < config.programs; ++i) {
        if (config.time_budget_seconds > 0 &&
            seconds_since(start) >= config.time_budget_seconds) {
            result.time_exhausted = true;
            break;
        }
        const std::uint64_t seed = campaign_program_seed(config.seed, i);
        const ProgramSpec spec = generate_spec(seed, config.generator);
        obs::count("fuzz/programs");
        static const std::uint32_t trace_id = obs::trace_name("fuzz/program");
        const obs::TraceSpan program_tspan(trace_id, i);
        std::vector<Divergence> divergences =
            run_oracles(spec, config.oracle);
        ++result.programs_run;
        if (obs::progress_enabled())
            obs::progress_items("fuzz", result.programs_run,
                                config.programs);
        if (divergences.empty()) continue;

        obs::count("fuzz/divergent");
        Finding finding;
        finding.program_seed = seed;
        finding.index = i;
        finding.divergences = std::move(divergences);
        finding.minimized =
            config.shrink
                ? shrink(spec,
                         [&config](const ProgramSpec& candidate) {
                             return !run_oracles(candidate, config.oracle)
                                         .empty();
                         })
                : spec;

        if (!config.corpus_dir.empty()) {
            std::error_code ec;
            fs::create_directories(config.corpus_dir, ec);
            std::ostringstream name;
            name << "fuzz-" << config.seed << "-" << i << ".json";
            const fs::path path = fs::path(config.corpus_dir) / name.str();
            std::ofstream file(path);
            if (file) {
                file << to_json(finding.minimized) << "\n";
                finding.file = path.string();
            }
        }
        result.findings.push_back(std::move(finding));
    }
    result.elapsed_seconds = seconds_since(start);
    return result;
}

ReplayResult replay_corpus(const std::string& path,
                           const OracleOptions& options) {
    ReplayResult result;
    std::vector<fs::path> files;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const auto& entry : fs::directory_iterator(path, ec)) {
            if (!entry.is_regular_file()) continue;
            if (entry.path().extension() != ".json") continue;
            files.push_back(entry.path());
        }
        std::sort(files.begin(), files.end());
    } else if (fs::exists(path, ec)) {
        files.emplace_back(path);
    } else {
        result.failures.push_back({path, "no such file or directory"});
        return result;
    }

    for (const fs::path& file : files) {
        ++result.files;
        std::ifstream in(file);
        if (!in) {
            result.failures.push_back({file.string(), "unreadable"});
            continue;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string error;
        const std::optional<ProgramSpec> spec =
            from_json(text.str(), &error);
        if (!spec.has_value()) {
            result.failures.push_back(
                {file.string(), "parse error: " + error});
            continue;
        }
        if (!validate(*spec, &error)) {
            result.failures.push_back(
                {file.string(), "invalid spec: " + error});
            continue;
        }
        const std::vector<Divergence> divergences =
            run_oracles(*spec, options);
        for (const Divergence& d : divergences)
            result.failures.push_back(
                {file.string(), d.oracle + ": " + d.detail});
    }
    return result;
}

}  // namespace dcft::fuzz
