#include "fuzz/generator.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dcft::fuzz {

namespace {

/// Random predicate leaf over the plain variables.
PredNode gen_leaf(Rng& rng, const ProgramSpec& spec) {
    PredNode n;
    const std::size_t nv = spec.vars.size();
    // Weighted choice: var comparisons dominate; constants are rare (they
    // collapse the predicate and mostly test degenerate paths).
    const std::uint64_t roll = rng.below(10);
    if (roll == 0) {
        n.kind = PredNode::Kind::kTrue;
    } else if (roll == 1) {
        n.kind = PredNode::Kind::kFalse;
    } else if (roll < 5 || nv < 2) {
        n.kind = rng.chance(0.5) ? PredNode::Kind::kVarEqConst
                                 : PredNode::Kind::kVarNeConst;
        n.var = rng.below(nv);
        n.value = static_cast<Value>(rng.below(
            static_cast<std::uint64_t>(spec.vars[n.var].domain)));
    } else {
        n.kind = rng.chance(0.5) ? PredNode::Kind::kVarEqVar
                                 : PredNode::Kind::kVarNeVar;
        n.var = rng.below(nv);
        n.var2 = rng.below(nv);
        if (n.var2 == n.var) n.var2 = (n.var + 1) % nv;
    }
    return n;
}

/// Random predicate tree of the given maximum depth.
PredNode gen_pred(Rng& rng, const ProgramSpec& spec, int depth) {
    if (depth <= 0 || !rng.chance(0.45)) return gen_leaf(rng, spec);
    PredNode n;
    const std::uint64_t roll = rng.below(3);
    if (roll == 2) {
        n.kind = PredNode::Kind::kNot;
        n.kids.push_back(gen_pred(rng, spec, depth - 1));
    } else {
        n.kind = roll == 0 ? PredNode::Kind::kAnd : PredNode::Kind::kOr;
        n.kids.push_back(gen_pred(rng, spec, depth - 1));
        n.kids.push_back(gen_pred(rng, spec, depth - 1));
    }
    return n;
}

/// Random program-action effect (deterministic shapes dominate; channel
/// sends/receives appear when a channel exists).
EffectNode gen_program_effect(Rng& rng, const ProgramSpec& spec) {
    EffectNode e;
    const std::size_t nv = spec.vars.size();
    const bool chans = !spec.channels.empty();
    const std::uint64_t roll = rng.below(chans ? 12 : 9);
    if (roll == 0) {
        e.kind = EffectNode::Kind::kSkip;
    } else if (roll <= 3) {
        e.kind = EffectNode::Kind::kAssignConst;
        e.var = rng.below(nv);
        e.value = static_cast<Value>(rng.below(
            static_cast<std::uint64_t>(spec.vars[e.var].domain)));
    } else if (roll <= 5) {
        e.kind = EffectNode::Kind::kAssignAddMod;
        e.var = rng.below(nv);
        e.var2 = rng.chance(0.6) ? e.var : rng.below(nv);
        e.value = static_cast<Value>(1 + rng.below(3));
        e.modulus = static_cast<Value>(
            1 + rng.below(static_cast<std::uint64_t>(spec.vars[e.var].domain)));
    } else if (roll == 6) {
        // assign_var needs dom(src) <= dom(var): pick src first, then a
        // target whose domain is at least as large.
        std::size_t src = rng.below(nv);
        std::size_t var = rng.below(nv);
        if (spec.vars[src].domain > spec.vars[var].domain)
            std::swap(src, var);
        e.kind = EffectNode::Kind::kAssignVar;
        e.var = var;
        e.var2 = src;
    } else if (roll <= 8) {
        e.kind = EffectNode::Kind::kAssignChoice;
        e.var = rng.below(nv);
        const auto dom = static_cast<std::uint64_t>(spec.vars[e.var].domain);
        const std::uint64_t k = 1 + rng.below(std::min<std::uint64_t>(dom, 3));
        for (std::uint64_t i = 0; i < k; ++i)
            e.choices.push_back(static_cast<Value>(rng.below(dom)));
    } else if (roll <= 10) {
        e.kind = EffectNode::Kind::kChanSendConst;
        e.chan = rng.below(spec.channels.size());
        e.value = static_cast<Value>(rng.below(
            static_cast<std::uint64_t>(spec.channels[e.chan].value_domain)));
    } else {
        e.kind = EffectNode::Kind::kChanRecvToVar;
        e.chan = rng.below(spec.channels.size());
        e.var = rng.below(nv);
    }
    return e;
}

/// Random fault-action effect (the nondeterministic shapes of the paper's
/// fault classes: transient corruption, arbitrary choice, channel faults).
EffectNode gen_fault_effect(Rng& rng, const ProgramSpec& spec) {
    EffectNode e;
    const std::size_t nv = spec.vars.size();
    const bool chans = !spec.channels.empty();
    const std::uint64_t roll = rng.below(chans ? 6 : 4);
    if (roll <= 2) {
        e.kind = EffectNode::Kind::kCorruptAny;
        // Random nonempty victim subset (all generated domains are >= 2).
        for (std::size_t v = 0; v < nv; ++v)
            if (rng.chance(0.5)) e.vars.push_back(v);
        if (e.vars.empty()) e.vars.push_back(rng.below(nv));
    } else if (roll == 3) {
        e.kind = EffectNode::Kind::kAssignChoice;
        e.var = rng.below(nv);
        const auto dom = static_cast<std::uint64_t>(spec.vars[e.var].domain);
        const std::uint64_t k = 1 + rng.below(std::min<std::uint64_t>(dom, 3));
        for (std::uint64_t i = 0; i < k; ++i)
            e.choices.push_back(static_cast<Value>(rng.below(dom)));
    } else {
        e.chan = rng.below(spec.channels.size());
        const std::uint64_t which = rng.below(3);
        if (which == 0) {
            e.kind = EffectNode::Kind::kChanLose;
        } else if (which == 1) {
            e.kind = EffectNode::Kind::kChanDuplicate;
        } else if (spec.channels[e.chan].value_domain >= 2) {
            e.kind = EffectNode::Kind::kChanCorrupt;
        } else {
            e.kind = EffectNode::Kind::kChanLose;
        }
    }
    return e;
}

}  // namespace

ProgramSpec generate_spec(std::uint64_t seed, const GeneratorConfig& config) {
    Rng rng(seed);
    ProgramSpec spec;
    spec.seed = seed;
    spec.name = "fuzz-" + std::to_string(seed);
    spec.grade = static_cast<int>(rng.below(3));

    // Variables under the state-space budget.
    std::uint64_t budget = std::max<std::uint64_t>(config.max_states, 4);
    const std::size_t want_vars =
        1 + rng.below(std::max<std::size_t>(config.max_vars, 1));
    for (std::size_t i = 0; i < want_vars && budget >= 2; ++i) {
        const auto span = static_cast<std::uint64_t>(
            std::max<Value>(config.max_domain, 2) - 1);
        std::uint64_t dom = 2 + rng.below(span);
        dom = std::min(dom, budget);
        if (dom < 2) break;
        spec.vars.push_back(
            VarDecl{"v" + std::to_string(i), static_cast<Value>(dom)});
        budget /= dom;
    }
    if (spec.vars.empty()) spec.vars.push_back(VarDecl{"v0", 2});

    // Optionally one channel, if the remaining budget can pack it.
    if (rng.chance(config.channel_probability)) {
        const int capacity = 1 + static_cast<int>(rng.below(2));
        const Value value_domain = 2 + static_cast<Value>(rng.below(2));
        ChannelDecl c{"ch0", capacity, value_domain};
        ChannelDecl fallback{"ch0", 1, 2};  // packed domain 3
        for (const ChannelDecl& candidate : {c, fallback}) {
            std::uint64_t dom = 0, pow = 1;
            for (int l = 0; l <= candidate.capacity; ++l) {
                dom += pow;
                pow *= static_cast<std::uint64_t>(candidate.value_domain);
            }
            if (dom <= budget) {
                spec.channels.push_back(candidate);
                budget /= dom;
                break;
            }
        }
    }

    // Program actions.
    const std::size_t num_actions =
        1 + rng.below(std::max<std::size_t>(config.max_actions, 1));
    for (std::size_t i = 0; i < num_actions; ++i) {
        ActionDecl a;
        a.name = "a" + std::to_string(i);
        a.guard = gen_pred(rng, spec, 2);
        a.effect = gen_program_effect(rng, spec);
        spec.actions.push_back(std::move(a));
    }

    // Fault actions (possibly none: the no-fault verifier paths are a
    // differential surface of their own).
    const std::size_t num_faults = rng.below(config.max_fault_actions + 1);
    for (std::size_t i = 0; i < num_faults; ++i) {
        ActionDecl a;
        a.name = "f" + std::to_string(i);
        a.effect = gen_fault_effect(rng, spec);
        // Channel faults require a true guard (their factories carry the
        // emptiness guards internally); other faults get a random one.
        using K = EffectNode::Kind;
        const bool chan_fault = a.effect.kind == K::kChanLose ||
                                a.effect.kind == K::kChanDuplicate ||
                                a.effect.kind == K::kChanCorrupt;
        a.guard = chan_fault ? PredNode{} : gen_pred(rng, spec, 1);
        spec.fault_actions.push_back(std::move(a));
    }

    // Specification predicates. init is biased toward nonempty sets so
    // explorations usually have work to do; the occasional empty init
    // exercises the zero-node paths.
    spec.init = rng.chance(0.3) ? PredNode{} : gen_pred(rng, spec, 2);
    spec.invariant = gen_pred(rng, spec, 2);
    spec.bad = gen_pred(rng, spec, 1);
    if (rng.chance(0.5)) {
        spec.has_leads = true;
        spec.leads_from = gen_pred(rng, spec, 1);
        spec.leads_to = gen_pred(rng, spec, 1);
    }

    std::string error;
    DCFT_ASSERT(validate(spec, &error), "generated spec invalid: " + error);
    return spec;
}

}  // namespace dcft::fuzz
