// Delta-debugging minimization of divergent fuzz specs.
//
// When the oracle matrix reports a divergence, the raw generated program
// is rarely the smallest program that exhibits it. shrink() greedily
// applies structure-aware reductions — drop fault actions, drop program
// actions, drop channels (with their dependent actions), drop unreferenced
// variables, shrink domains (clamping constants), simplify predicate trees
// toward `true`, drop the leads-to obligation, thin choice/victim lists —
// re-validating each candidate and keeping it only when the caller's
// `still_diverges` predicate confirms the divergence survives. The
// candidate order is fixed and the loop is greedy-first-accept, so
// shrinking is deterministic: the same input spec and predicate always
// produce the byte-identical minimized reproducer (which is what makes
// corpus files stable across reruns).
#pragma once

#include <functional>
#include <vector>

#include "fuzz/spec.hpp"

namespace dcft::fuzz {

/// Returns true when the candidate still exhibits the divergence being
/// minimized (typically: !run_oracles(candidate).empty()).
using StillDiverges = std::function<bool(const ProgramSpec&)>;

/// All single-step reduction candidates of `spec`, in the fixed order the
/// shrinker tries them. Every candidate is structurally smaller (or
/// simpler) than `spec`; not all are valid — shrink() filters through
/// validate(). Exposed for the shrinker unit tests.
std::vector<ProgramSpec> shrink_candidates(const ProgramSpec& spec);

/// Greedy fixpoint minimization: repeatedly applies the first valid,
/// still-diverging candidate until none is accepted (or `max_accepts`
/// reductions have been applied, as a safety bound). The result is valid
/// and still diverges; if `spec` itself does not diverge the result is
/// `spec` unchanged.
ProgramSpec shrink(const ProgramSpec& spec, const StillDiverges& still_diverges,
                   std::size_t max_accepts = 256);

}  // namespace dcft::fuzz
