// The differential oracle matrix.
//
// run_oracles(spec) builds the spec once and cross-checks every pair of
// redundant execution paths the repo maintains. A clean result is the
// empty vector; each Divergence names the oracle that fired plus a
// human-readable first difference. The oracle pairs:
//
//   graph/ref-vs-csr            RefTransitionSystem (seed-naive BFS) vs
//                               the CSR TransitionSystem at 1 thread:
//                               states, initial nodes, program and fault
//                               edges, terminality, witness paths.
//   graph/threads-1-vs-N        CSR exploration at 1 thread vs N threads
//                               (the determinism contract).
//   graph/compiled-vs-interpreted
//                               exploration with compiled action kernels
//                               vs DCFT_NO_COMPILE=1 (std::function path).
//   cache/hit-shares-build      two ExplorationCache::get_or_build calls
//                               for the same key return the same object.
//   cache/cached-vs-fresh       the cached graph equals a cache-bypassing
//                               fresh exploration.
//   store/roundtrip             a dcft.graph snapshot of the canonical
//                               graph (GraphStore::save into a per-spec
//                               temp directory), mmap-adopted back, is
//                               bit-identical to the in-core build.
//   store/cached-vs-fresh       with DCFT_GRAPH_STORE pointed at that
//                               directory and the exploration cache
//                               cleared, get_or_build serves the adopted
//                               snapshot and it equals the fresh build.
//   interner/sparse-vs-direct   exploration under DCFT_DIRECT_MAP_MAX=64
//                               (sparse sharded interner forced at every
//                               size, serial and chunked) vs the default
//                               direct-mapped tier.
//   earlyexit/unreachable-vs-full
//                               check_unreachable (stop-predicate
//                               exploration) vs first_bad_node on the full
//                               graph: verdict, message, and witness trace
//                               must agree, with the exploration cache in
//                               play and bypassed (DCFT_NO_EXPLORE_CACHE).
//   earlyexit/tolerance-failsafe
//                               check_tolerance with
//                               ToleranceOptions::early_exit vs the
//                               default pipeline: same verdicts; on
//                               failure the identical in-presence
//                               reason/witness and a strictly partial
//                               span; on success the full span.
//   graded/game-vs-explicit    masking_distance (layered product game on
//                               the recorded CSR edges) vs check_failsafe:
//                               distance inf iff the in-presence safety
//                               obligation holds; a finite distance comes
//                               with a replayable witness carrying exactly
//                               `distance` fault steps.
//   verdict/closed|reachable|converges|refines|refines-with-faults|
//   verdict/tolerance           the optimized verdict pipeline vs the
//                               ref_* reference pipeline (ok flags, state
//                               sets, invariant/span sizes).
//   sim/trace-edge, sim/deadlock
//                               every step of a recorded simulation trace
//                               (random scheduler, fault injection) is an
//                               edge of the explored graph; a deadlocked
//                               run ends on a terminal node.
//   witness/replay              every witness trace the checkers emit
//                               (counterexamples and exploration
//                               witnesses) replays over the kernel:
//                               consecutive states are connected by the
//                               named program/fault action and the
//                               formatted state matches.
//   trace/safety-vs-verdict     when the fail-safe in-presence obligation
//                               verifies, check_trace_safety finds no
//                               violation on fault-injected simulation
//                               runs from invariant states, nor on the
//                               verifier's own deepest exploration trace
//                               replayed as a RunResult.
//
// Everything is deterministic in (spec, options): simulator seeds derive
// from spec.seed, and the global exploration cache is cleared afterwards
// so campaign iterations cannot observe each other.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fuzz/spec.hpp"
#include "verify/reference.hpp"
#include "verify/transition_system.hpp"

namespace dcft::fuzz {

/// One observed disagreement between two redundant paths.
struct Divergence {
    std::string oracle;  ///< which pair fired, e.g. "graph/ref-vs-csr"
    std::string detail;  ///< first difference, human-readable
};

/// Knobs for one oracle run.
struct OracleOptions {
    unsigned threads = 4;       ///< N of the threads-1-vs-N pair
    bool include_sim = true;    ///< run the simulation-based oracles
    std::size_t sim_runs = 3;   ///< simulated runs per entry point
    std::size_t sim_steps = 160;  ///< max steps per simulated run
};

/// Runs the whole oracle matrix on one spec. Precondition: validate(spec).
std::vector<Divergence> run_oracles(const ProgramSpec& spec,
                                    const OracleOptions& options = {});

/// First difference between the reference and optimized explorations
/// (node states, initial nodes, edges, terminality, witness paths), or
/// nullopt when identical. Exposed for the oracle unit tests.
std::optional<std::string> first_graph_difference(
    const reference::RefTransitionSystem& ref, const TransitionSystem& ts);

/// First difference between two optimized explorations (used by the
/// thread-count, compile-gate, and cache oracles).
std::optional<std::string> first_ts_difference(const TransitionSystem& a,
                                               const TransitionSystem& b);

}  // namespace dcft::fuzz
