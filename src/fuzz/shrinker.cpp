#include "fuzz/shrinker.hpp"

#include <algorithm>
#include <utility>

namespace dcft::fuzz {

namespace {

using K = PredNode::Kind;
using E = EffectNode::Kind;

bool effect_uses_channel(const EffectNode& e, std::size_t chan) {
    switch (e.kind) {
        case E::kChanSendConst:
        case E::kChanRecvToVar:
        case E::kChanLose:
        case E::kChanDuplicate:
        case E::kChanCorrupt:
            return e.chan == chan;
        default:
            return false;
    }
}

void mark_pred_vars(const PredNode& n, std::vector<bool>& used) {
    switch (n.kind) {
        case K::kVarEqConst:
        case K::kVarNeConst:
            if (n.var < used.size()) used[n.var] = true;
            break;
        case K::kVarEqVar:
        case K::kVarNeVar:
            if (n.var < used.size()) used[n.var] = true;
            if (n.var2 < used.size()) used[n.var2] = true;
            break;
        default:
            break;
    }
    for (const PredNode& kid : n.kids) mark_pred_vars(kid, used);
}

void mark_effect_vars(const EffectNode& e, std::vector<bool>& used) {
    switch (e.kind) {
        case E::kAssignConst:
        case E::kAssignChoice:
        case E::kChanRecvToVar:
            if (e.var < used.size()) used[e.var] = true;
            break;
        case E::kAssignVar:
        case E::kAssignAddMod:
            if (e.var < used.size()) used[e.var] = true;
            if (e.var2 < used.size()) used[e.var2] = true;
            break;
        case E::kCorruptAny:
            for (std::size_t v : e.vars)
                if (v < used.size()) used[v] = true;
            break;
        default:
            break;
    }
}

void remap_pred_var(PredNode& n, std::size_t removed) {
    if (n.var > removed) --n.var;
    if (n.var2 > removed) --n.var2;
    for (PredNode& kid : n.kids) remap_pred_var(kid, removed);
}

void remap_effect_var(EffectNode& e, std::size_t removed) {
    if (e.var > removed) --e.var;
    if (e.var2 > removed) --e.var2;
    for (std::size_t& v : e.vars)
        if (v > removed) --v;
}

void remap_spec_vars(ProgramSpec& s, std::size_t removed) {
    for (ActionDecl& a : s.actions) {
        remap_pred_var(a.guard, removed);
        remap_effect_var(a.effect, removed);
    }
    for (ActionDecl& a : s.fault_actions) {
        remap_pred_var(a.guard, removed);
        remap_effect_var(a.effect, removed);
    }
    remap_pred_var(s.init, removed);
    remap_pred_var(s.invariant, removed);
    remap_pred_var(s.bad, removed);
    remap_pred_var(s.leads_from, removed);
    remap_pred_var(s.leads_to, removed);
}

/// Clamps constants referencing variable `var` after its domain shrank to
/// `dom` (values are reduced mod dom, the smallest behavior-adjacent clamp
/// that keeps the node valid).
void clamp_pred(PredNode& n, std::size_t var, Value dom) {
    if ((n.kind == K::kVarEqConst || n.kind == K::kVarNeConst) &&
        n.var == var && n.value >= dom)
        n.value = n.value % dom;
    for (PredNode& kid : n.kids) clamp_pred(kid, var, dom);
}

void clamp_effect(EffectNode& e, std::size_t var, Value dom) {
    switch (e.kind) {
        case E::kAssignConst:
            if (e.var == var && e.value >= dom) e.value = e.value % dom;
            break;
        case E::kAssignAddMod:
            if (e.var == var && e.modulus > dom) e.modulus = dom;
            break;
        case E::kAssignChoice:
            if (e.var == var) {
                std::vector<Value> kept;
                for (Value c : e.choices)
                    if (c < dom) kept.push_back(c);
                e.choices = std::move(kept);  // may become empty -> invalid,
                                              // filtered by validate()
            }
            break;
        default:
            break;
    }
}

void clamp_spec(ProgramSpec& s, std::size_t var, Value dom) {
    for (ActionDecl& a : s.actions) {
        clamp_pred(a.guard, var, dom);
        clamp_effect(a.effect, var, dom);
    }
    for (ActionDecl& a : s.fault_actions) {
        clamp_pred(a.guard, var, dom);
        clamp_effect(a.effect, var, dom);
    }
    clamp_pred(s.init, var, dom);
    clamp_pred(s.invariant, var, dom);
    clamp_pred(s.bad, var, dom);
    clamp_pred(s.leads_from, var, dom);
    clamp_pred(s.leads_to, var, dom);
}

/// Structural simplifications of one predicate node, largest first:
/// `true`, then each kid of an and/or/not (hoisted), then each kid
/// replaced by its own simplifications.
void pred_simplifications(const PredNode& n, std::vector<PredNode>& out) {
    if (n.kind != K::kTrue) out.push_back(PredNode{});  // -> true
    if (n.kind == K::kAnd || n.kind == K::kOr || n.kind == K::kNot) {
        for (const PredNode& kid : n.kids) out.push_back(kid);
        for (std::size_t i = 0; i < n.kids.size(); ++i) {
            std::vector<PredNode> kid_simpler;
            pred_simplifications(n.kids[i], kid_simpler);
            for (PredNode& replacement : kid_simpler) {
                PredNode copy = n;
                copy.kids[i] = std::move(replacement);
                out.push_back(std::move(copy));
            }
        }
    }
}

/// Emits one candidate per simplification of the predicate at `site`.
template <typename Setter>
void add_pred_candidates(const ProgramSpec& spec, const PredNode& site,
                         const Setter& set, std::vector<ProgramSpec>& out) {
    std::vector<PredNode> simpler;
    pred_simplifications(site, simpler);
    for (PredNode& replacement : simpler) {
        ProgramSpec candidate = spec;
        set(candidate, std::move(replacement));
        out.push_back(std::move(candidate));
    }
}

}  // namespace

std::vector<ProgramSpec> shrink_candidates(const ProgramSpec& spec) {
    std::vector<ProgramSpec> out;

    // 1. Drop fault actions (cheapest wins first: whole behaviors vanish).
    for (std::size_t i = 0; i < spec.fault_actions.size(); ++i) {
        ProgramSpec c = spec;
        c.fault_actions.erase(c.fault_actions.begin() +
                              static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(c));
    }

    // 2. Drop program actions.
    for (std::size_t i = 0; i < spec.actions.size(); ++i) {
        ProgramSpec c = spec;
        c.actions.erase(c.actions.begin() + static_cast<std::ptrdiff_t>(i));
        out.push_back(std::move(c));
    }

    // 3. Drop the leads-to obligation.
    if (spec.has_leads) {
        ProgramSpec c = spec;
        c.has_leads = false;
        c.leads_from = PredNode{};
        c.leads_to = PredNode{};
        out.push_back(std::move(c));
    }

    // 4. Drop channels, along with every action that uses them.
    for (std::size_t ch = 0; ch < spec.channels.size(); ++ch) {
        ProgramSpec c = spec;
        c.channels.erase(c.channels.begin() + static_cast<std::ptrdiff_t>(ch));
        auto drop_users = [ch](std::vector<ActionDecl>& actions) {
            std::vector<ActionDecl> kept;
            for (ActionDecl& a : actions) {
                if (effect_uses_channel(a.effect, ch)) continue;
                if (a.effect.chan > ch) --a.effect.chan;
                kept.push_back(std::move(a));
            }
            actions = std::move(kept);
        };
        drop_users(c.actions);
        drop_users(c.fault_actions);
        out.push_back(std::move(c));
    }

    // 5. Drop unreferenced plain variables (remapping all indices).
    if (spec.vars.size() > 1) {
        std::vector<bool> used(spec.vars.size(), false);
        for (const ActionDecl& a : spec.actions) {
            mark_pred_vars(a.guard, used);
            mark_effect_vars(a.effect, used);
        }
        for (const ActionDecl& a : spec.fault_actions) {
            mark_pred_vars(a.guard, used);
            mark_effect_vars(a.effect, used);
        }
        mark_pred_vars(spec.init, used);
        mark_pred_vars(spec.invariant, used);
        mark_pred_vars(spec.bad, used);
        if (spec.has_leads) {
            mark_pred_vars(spec.leads_from, used);
            mark_pred_vars(spec.leads_to, used);
        }
        for (std::size_t v = 0; v < spec.vars.size(); ++v) {
            if (used[v]) continue;
            ProgramSpec c = spec;
            c.vars.erase(c.vars.begin() + static_cast<std::ptrdiff_t>(v));
            remap_spec_vars(c, v);
            out.push_back(std::move(c));
        }
    }

    // 6. Shrink variable domains (one step at a time, clamping constants).
    for (std::size_t v = 0; v < spec.vars.size(); ++v) {
        if (spec.vars[v].domain <= 2) continue;
        ProgramSpec c = spec;
        const Value dom = --c.vars[v].domain;
        clamp_spec(c, v, dom);
        out.push_back(std::move(c));
    }

    // 7. Shrink channel value domains and capacities.
    for (std::size_t ch = 0; ch < spec.channels.size(); ++ch) {
        if (spec.channels[ch].value_domain > 2) {
            ProgramSpec c = spec;
            const Value dom = --c.channels[ch].value_domain;
            auto clamp_sends = [ch, dom](std::vector<ActionDecl>& actions) {
                for (ActionDecl& a : actions)
                    if (a.effect.kind == E::kChanSendConst &&
                        a.effect.chan == ch && a.effect.value >= dom)
                        a.effect.value = a.effect.value % dom;
            };
            clamp_sends(c.actions);
            clamp_sends(c.fault_actions);
            out.push_back(std::move(c));
        }
        if (spec.channels[ch].capacity > 1) {
            ProgramSpec c = spec;
            --c.channels[ch].capacity;
            out.push_back(std::move(c));
        }
    }

    // 8. Thin choice lists and corruption victim lists.
    auto thin_lists = [&out, &spec](const std::vector<ActionDecl>& actions,
                                    bool fault_list) {
        for (std::size_t i = 0; i < actions.size(); ++i) {
            const EffectNode& e = actions[i].effect;
            if (e.kind == E::kAssignChoice && e.choices.size() > 1) {
                for (std::size_t j = 0; j < e.choices.size(); ++j) {
                    ProgramSpec c = spec;
                    auto& target = fault_list ? c.fault_actions : c.actions;
                    target[i].effect.choices.erase(
                        target[i].effect.choices.begin() +
                        static_cast<std::ptrdiff_t>(j));
                    out.push_back(std::move(c));
                }
            }
            if (e.kind == E::kCorruptAny && e.vars.size() > 1) {
                for (std::size_t j = 0; j < e.vars.size(); ++j) {
                    ProgramSpec c = spec;
                    auto& target = fault_list ? c.fault_actions : c.actions;
                    target[i].effect.vars.erase(
                        target[i].effect.vars.begin() +
                        static_cast<std::ptrdiff_t>(j));
                    out.push_back(std::move(c));
                }
            }
        }
    };
    thin_lists(spec.actions, false);
    thin_lists(spec.fault_actions, true);

    // 9. Simplify predicate trees toward `true`, site by site.
    for (std::size_t i = 0; i < spec.actions.size(); ++i)
        add_pred_candidates(spec, spec.actions[i].guard,
                            [i](ProgramSpec& c, PredNode p) {
                                c.actions[i].guard = std::move(p);
                            },
                            out);
    for (std::size_t i = 0; i < spec.fault_actions.size(); ++i)
        add_pred_candidates(spec, spec.fault_actions[i].guard,
                            [i](ProgramSpec& c, PredNode p) {
                                c.fault_actions[i].guard = std::move(p);
                            },
                            out);
    add_pred_candidates(spec, spec.init,
                        [](ProgramSpec& c, PredNode p) {
                            c.init = std::move(p);
                        },
                        out);
    add_pred_candidates(spec, spec.invariant,
                        [](ProgramSpec& c, PredNode p) {
                            c.invariant = std::move(p);
                        },
                        out);
    add_pred_candidates(spec, spec.bad,
                        [](ProgramSpec& c, PredNode p) {
                            c.bad = std::move(p);
                        },
                        out);
    if (spec.has_leads) {
        add_pred_candidates(spec, spec.leads_from,
                            [](ProgramSpec& c, PredNode p) {
                                c.leads_from = std::move(p);
                            },
                            out);
        add_pred_candidates(spec, spec.leads_to,
                            [](ProgramSpec& c, PredNode p) {
                                c.leads_to = std::move(p);
                            },
                            out);
    }

    // 10. Flatten the grade to the simplest query.
    if (spec.grade != 0) {
        ProgramSpec c = spec;
        c.grade = 0;
        out.push_back(std::move(c));
    }
    return out;
}

ProgramSpec shrink(const ProgramSpec& spec, const StillDiverges& still_diverges,
                   std::size_t max_accepts) {
    ProgramSpec current = spec;
    for (std::size_t accepts = 0; accepts < max_accepts; ++accepts) {
        bool reduced = false;
        for (ProgramSpec& candidate : shrink_candidates(current)) {
            if (!validate(candidate)) continue;
            if (!still_diverges(candidate)) continue;
            current = std::move(candidate);
            reduced = true;
            break;
        }
        if (!reduced) break;
    }
    return current;
}

}  // namespace dcft::fuzz
